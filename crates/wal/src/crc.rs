//! CRC-32 (IEEE 802.3), table-driven — the workspace takes no external
//! dependencies, so the checksum guarding WAL records and checkpoint
//! bodies is hand-rolled here. The polynomial (reflected `0xEDB88320`)
//! matches zlib's `crc32`, so files can be cross-checked with standard
//! tools.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `bytes` (zlib-compatible: init `!0`, final xor `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32, for checksumming a record without concatenating
/// its parts into one buffer.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32(!0)
    }

    /// Feeds more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 >> 8) ^ TABLE[((self.0 ^ u32::from(b)) & 0xFF) as usize];
        }
    }

    /// The final checksum.
    pub fn finish(self) -> u32 {
        !self.0
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"separable recursions compile to linear plans";
        for split in [0, 1, 7, data.len() / 2, data.len()] {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"generation 42".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
