//! Self-contained binary frames for tuples, deltas, and EDB snapshots.
//!
//! Interned [`Sym`] ids are meaningless outside the process that interned
//! them, so every frame carries its own **string table**: the symbol names
//! it mentions, each once. Values then reference table indices. Encoding
//! resolves symbols through the writer's [`Interner`]; decoding interns
//! the names into the reader's — the two processes never need to agree on
//! ids, only on names.
//!
//! All integers are little-endian. A frame is *total to decode*: any byte
//! string either decodes or returns a [`CodecError`] — never a panic and
//! never an attempt to allocate more than the input could possibly
//! describe. (WAL records are additionally CRC-guarded, but checkpoint
//! files handed to `sepra restore` come from users, so the codec defends
//! itself.)
//!
//! ```text
//! string table  := u32 count, count × (u32 len, len UTF-8 bytes)
//! value         := 0x00 u32 table-index        (symbol)
//!                | 0x01 i64                    (integer)
//! tuple         := arity × value               (arity from the section header)
//! section       := u32 npreds, npreds × (u32 name-index, u32 arity,
//!                                        u32 ntuples, ntuples × tuple)
//! delta frame   := string table, remove section, insert section
//! edb frame     := u64 generation, string table, u32 nrels,
//!                  nrels × (u32 name-index, u32 arity, u64 ntuples,
//!                           ntuples × tuple)
//! ```
//!
//! # Columnar EDB frames (`SEPRCOL2`)
//!
//! The row-major EDB frame above decodes tuple by tuple. The columnar
//! frame instead lays relations out as fixed-width column sections behind
//! an offset directory, so a reader can bulk-load whole columns from a
//! byte slice (or a memory-mapped file — every section is 8-byte aligned
//! and addressed by offset) without per-tuple decode:
//!
//! ```text
//! columnar frame := "SEPRCOL2",                            (offset  0)
//!                   u64 generation,                        (offset  8)
//!                   u64 string-table-offset,               (offset 16)
//!                   u32 nrels, u32 reserved (zero),        (offset 24)
//!                   nrels × (u32 name-index, u32 arity,    (offset 32)
//!                            u64 nrows, u64 col-offset),
//!                   column sections,
//!                   string table                           (at string-table-offset)
//! value word     := bit 63 set  → 63-bit integer (storage representation)
//!                 | bit 63 clear → string-table index in the low 32 bits,
//!                                  bits 32..63 zero
//! ```
//!
//! A relation's section is `arity × nrows` little-endian `u64` words,
//! column-major: column 0's `nrows` words, then column 1's, and so on.
//! The string table (same encoding as above) sits *last* so the
//! fixed-width sections keep their alignment; predicate names are
//! interned first and occupy the low indices. Both frame kinds are
//! distinguishable from the first eight bytes — a row-major frame starts
//! with its generation, which would have to exceed 3.6 × 10¹⁸ commits to
//! collide with the magic — so [`decode_snapshot_into`] sniffs and
//! dispatches, which is what keeps mixed-version replication rollouts
//! working: a new reader accepts either body, an old reader fails cleanly
//! on the container version (see [`crate::checkpoint`]).

use sepra_ast::{Interner, Sym};
use sepra_storage::{Database, EdbDelta, FxHashMap, Relation, Tuple, Value};

/// Errors decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the frame did.
    Truncated {
        /// What was being read when bytes ran out.
        what: &'static str,
    },
    /// An unknown value tag byte.
    BadTag(u8),
    /// A string-table index out of range.
    BadStringIndex {
        /// The out-of-range index.
        index: u32,
        /// The table size.
        table: usize,
    },
    /// A string-table entry was not UTF-8.
    BadUtf8,
    /// An integer value outside the storable range.
    IntOutOfRange(i64),
    /// Trailing bytes after a complete frame (a sign the caller framed the
    /// payload wrong, not that the data is corrupt).
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { what } => write!(f, "frame truncated while reading {what}"),
            CodecError::BadTag(t) => write!(f, "unknown value tag {t:#04x}"),
            CodecError::BadStringIndex { index, table } => {
                write!(f, "string index {index} out of range for table of {table}")
            }
            CodecError::BadUtf8 => write!(f, "string table entry is not valid UTF-8"),
            CodecError::IntOutOfRange(n) => {
                write!(f, "integer {n} is outside the representable range")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked reader over a byte slice.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { what });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self, what: &'static str) -> Result<i64, CodecError> {
        Ok(self.u64(what)? as i64)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// A claimed element count is a lie if the remaining input could not
    /// hold even `min_bytes_each` bytes per element; checking first keeps
    /// hostile counts from driving huge allocations.
    fn plausible(
        &self,
        count: usize,
        min_bytes_each: usize,
        what: &'static str,
    ) -> Result<(), CodecError> {
        if count.checked_mul(min_bytes_each).is_none_or(|need| need > self.remaining()) {
            return Err(CodecError::Truncated { what });
        }
        Ok(())
    }
}

fn push_u32(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(&n.to_le_bytes());
}

/// Builds a frame's string table while encoding: symbols are assigned
/// dense indices in first-use order.
struct StringTable<'a> {
    interner: &'a Interner,
    index: FxHashMap<Sym, u32>,
    names: Vec<&'a str>,
}

impl<'a> StringTable<'a> {
    fn new(interner: &'a Interner) -> Self {
        StringTable { interner, index: FxHashMap::default(), names: Vec::new() }
    }

    fn intern(&mut self, sym: Sym) -> u32 {
        if let Some(&i) = self.index.get(&sym) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(self.interner.resolve(sym));
        self.index.insert(sym, i);
        i
    }

    fn encode(&self, out: &mut Vec<u8>) {
        push_u32(out, self.names.len() as u32);
        for name in &self.names {
            push_u32(out, name.len() as u32);
            out.extend_from_slice(name.as_bytes());
        }
    }
}

fn decode_string_table(
    cur: &mut Cursor<'_>,
    interner: &mut Interner,
) -> Result<Vec<Sym>, CodecError> {
    let count = cur.u32("string table size")? as usize;
    cur.plausible(count, 4, "string table")?;
    let mut syms = Vec::with_capacity(count);
    for _ in 0..count {
        let len = cur.u32("string length")? as usize;
        let bytes = cur.take(len, "string bytes")?;
        let name = std::str::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)?;
        syms.push(interner.intern(name));
    }
    Ok(syms)
}

const TAG_SYM: u8 = 0;
const TAG_INT: u8 = 1;

fn encode_value(out: &mut Vec<u8>, value: Value, table: &mut StringTable<'_>) {
    if let Some(n) = value.as_int() {
        out.push(TAG_INT);
        push_u64(out, n as u64);
    } else {
        let sym = value.as_sym().expect("a value is a symbol or an integer");
        out.push(TAG_SYM);
        push_u32(out, table.intern(sym));
    }
}

fn decode_value(cur: &mut Cursor<'_>, syms: &[Sym]) -> Result<Value, CodecError> {
    match cur.u8("value tag")? {
        TAG_SYM => {
            let index = cur.u32("symbol index")?;
            let sym = syms
                .get(index as usize)
                .copied()
                .ok_or(CodecError::BadStringIndex { index, table: syms.len() })?;
            Ok(Value::sym(sym))
        }
        TAG_INT => {
            let n = cur.i64("integer value")?;
            Value::int(n).map_err(|_| CodecError::IntOutOfRange(n))
        }
        tag => Err(CodecError::BadTag(tag)),
    }
}

fn decode_tuple(cur: &mut Cursor<'_>, arity: usize, syms: &[Sym]) -> Result<Tuple, CodecError> {
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(cur, syms)?);
    }
    Ok(Tuple::from(values))
}

/// Encodes one section (the remove or insert half of a delta). Predicates
/// are sorted by name so the encoding is deterministic regardless of hash
/// map iteration order.
fn encode_section(
    out: &mut Vec<u8>,
    half: &FxHashMap<Sym, Vec<Tuple>>,
    table: &mut StringTable<'_>,
) {
    let mut preds: Vec<Sym> =
        half.iter().filter(|(_, ts)| !ts.is_empty()).map(|(&p, _)| p).collect();
    preds.sort_by_key(|&p| table.interner.resolve(p));
    push_u32(out, preds.len() as u32);
    for pred in preds {
        let tuples = &half[&pred];
        let arity = tuples.first().map_or(0, Tuple::arity);
        push_u32(out, table.intern(pred));
        push_u32(out, arity as u32);
        push_u32(out, tuples.len() as u32);
        for tuple in tuples {
            for &value in tuple.values() {
                encode_value(out, value, table);
            }
        }
    }
}

fn decode_section(
    cur: &mut Cursor<'_>,
    syms: &[Sym],
) -> Result<FxHashMap<Sym, Vec<Tuple>>, CodecError> {
    let npreds = cur.u32("section predicate count")? as usize;
    cur.plausible(npreds, 12, "section predicates")?;
    let mut half = FxHashMap::default();
    for _ in 0..npreds {
        let index = cur.u32("predicate name index")?;
        let pred = syms
            .get(index as usize)
            .copied()
            .ok_or(CodecError::BadStringIndex { index, table: syms.len() })?;
        let arity = cur.u32("predicate arity")? as usize;
        let count = cur.u32("tuple count")? as usize;
        // Zero-arity tuples occupy no input, so the byte-plausibility
        // check cannot bound their count — but a set-valued zero-arity
        // predicate holds at most the empty tuple, so bound it directly
        // (a hostile huge count must not drive a huge allocation).
        if arity == 0 {
            if count > 1 {
                return Err(CodecError::Truncated { what: "section tuples" });
            }
        } else {
            cur.plausible(count, arity, "section tuples")?;
        }
        let mut tuples = Vec::with_capacity(count);
        for _ in 0..count {
            tuples.push(decode_tuple(cur, arity, syms)?);
        }
        half.entry(pred).or_insert_with(Vec::new).extend(tuples);
    }
    Ok(half)
}

/// Encodes an [`EdbDelta`] as a self-contained frame. Symbols are
/// resolved through `interner` (the writer's symbol space); the frame
/// carries their names.
pub fn encode_delta(delta: &EdbDelta, interner: &Interner) -> Vec<u8> {
    let mut table = StringTable::new(interner);
    let mut body = Vec::new();
    encode_section(&mut body, &delta.remove, &mut table);
    encode_section(&mut body, &delta.insert, &mut table);
    let mut out = Vec::with_capacity(body.len() + 64);
    table.encode(&mut out);
    out.extend_from_slice(&body);
    out
}

/// Decodes a delta frame, interning its names into `interner` (the
/// reader's symbol space).
pub fn decode_delta(bytes: &[u8], interner: &mut Interner) -> Result<EdbDelta, CodecError> {
    let mut cur = Cursor::new(bytes);
    // The string table precedes the sections that reference it, but the
    // sections were *encoded* first (the table fills as values are
    // interned) — so the encoder emits table-then-body and the decoder
    // reads in the same order.
    let syms = decode_string_table(&mut cur, interner)?;
    let remove = decode_section(&mut cur, &syms)?;
    let insert = decode_section(&mut cur, &syms)?;
    if cur.remaining() != 0 {
        return Err(CodecError::TrailingBytes(cur.remaining()));
    }
    Ok(EdbDelta { remove, insert })
}

/// Encodes a whole EDB (every relation plus the commit generation) as a
/// self-contained frame — the checkpoint body and the `sepra dump`
/// payload.
pub fn encode_database(db: &Database) -> Vec<u8> {
    let interner = db.interner();
    let mut table = StringTable::new(interner);
    let mut body = Vec::new();
    let mut rels: Vec<(Sym, &sepra_storage::Relation)> = db.relations().collect();
    rels.sort_by_key(|&(p, _)| interner.resolve(p));
    push_u32(&mut body, rels.len() as u32);
    for (pred, rel) in rels {
        push_u32(&mut body, table.intern(pred));
        push_u32(&mut body, rel.arity() as u32);
        push_u64(&mut body, rel.len() as u64);
        for tuple in rel.iter() {
            for value in tuple.values() {
                encode_value(&mut body, value, &mut table);
            }
        }
    }
    let mut out = Vec::with_capacity(body.len() + 64);
    push_u64(&mut out, db.generation());
    table.encode(&mut out);
    out.extend_from_slice(&body);
    out
}

/// Decodes an EDB frame into `db` (inserting every fact, interning names
/// into `db`'s symbol space) and returns the frame's commit generation.
///
/// The caller decides what the generation means: recovery forces the
/// database counter to it ([`Database::force_generation`]); an import like
/// the REPL's `:load` ignores it and lets the inserts count as fresh
/// mutations.
pub fn decode_database_into(bytes: &[u8], db: &mut Database) -> Result<u64, CodecError> {
    let (generation, delta) = decode_database_as_inserts(bytes, db.interner_mut())?;
    // All-or-none: `apply_delta` validates arities up front, so a corrupt
    // frame cannot leave half an EDB behind.
    db.apply_delta(&delta).map_err(|e| match e {
        // An EDB frame with two arities for one predicate is corrupt
        // input, not an I/O failure; surface it as a decode error.
        sepra_storage::database::DatabaseError::ArityMismatch { .. } => {
            CodecError::Truncated { what: "consistent relation arities" }
        }
        sepra_storage::database::DatabaseError::NonGroundFact(_)
        | sepra_storage::database::DatabaseError::Value(_) => {
            CodecError::Truncated { what: "well-formed facts" }
        }
    })?;
    Ok(generation)
}

/// Decodes an EDB frame as an insert-only [`EdbDelta`] against `interner`,
/// returning the frame's commit generation alongside. This is what lets a
/// *live* processor import a snapshot through its incremental-maintenance
/// path instead of rebuilding from scratch.
pub fn decode_database_as_inserts(
    bytes: &[u8],
    interner: &mut Interner,
) -> Result<(u64, EdbDelta), CodecError> {
    let mut cur = Cursor::new(bytes);
    let generation = cur.u64("snapshot generation")?;
    let syms = decode_string_table(&mut cur, interner)?;
    let nrels = cur.u32("relation count")? as usize;
    cur.plausible(nrels, 16, "relations")?;
    let mut delta = EdbDelta::default();
    for _ in 0..nrels {
        let index = cur.u32("relation name index")?;
        let pred = syms
            .get(index as usize)
            .copied()
            .ok_or(CodecError::BadStringIndex { index, table: syms.len() })?;
        let arity = cur.u32("relation arity")? as usize;
        let count = cur.u64("relation tuple count")? as usize;
        // See `decode_section`: a zero-arity relation holds at most the
        // empty tuple, so its count is bounded directly, not by bytes.
        if arity == 0 {
            if count > 1 {
                return Err(CodecError::Truncated { what: "relation tuples" });
            }
        } else {
            cur.plausible(count, arity, "relation tuples")?;
        }
        let mut tuples = Vec::with_capacity(count);
        for _ in 0..count {
            tuples.push(decode_tuple(&mut cur, arity, &syms)?);
        }
        delta.insert.entry(pred).or_insert_with(Vec::new).extend(tuples);
    }
    if cur.remaining() != 0 {
        return Err(CodecError::TrailingBytes(cur.remaining()));
    }
    Ok((generation, delta))
}

/// The magic that opens a columnar EDB frame (see the module docs).
pub const COLUMNAR_MAGIC: [u8; 8] = *b"SEPRCOL2";

/// Fixed columnar header: magic, generation, string-table offset, nrels,
/// reserved.
const COLUMNAR_HEADER: usize = 8 + 8 + 8 + 4 + 4;

/// One columnar directory entry: name index, arity, row count, column
/// section offset.
const COLUMNAR_DIR_ENTRY: usize = 4 + 4 + 8 + 8;

/// The storage tag bit of an integer value word (mirrors
/// `sepra_storage::value`; symbols are re-indexed through the string
/// table, so only the integer tag survives on the wire).
const COLUMNAR_INT_BIT: u64 = 1 << 63;

fn encode_word(value: Value, table: &mut StringTable<'_>) -> u64 {
    if value.as_int().is_some() {
        // The storage representation already is "bit 63 set, 63-bit
        // payload" — ship it verbatim.
        value.raw()
    } else {
        let sym = value.as_sym().expect("a value is a symbol or an integer");
        u64::from(table.intern(sym))
    }
}

fn decode_word(w: u64, syms: &[Sym]) -> Result<Value, CodecError> {
    if w & COLUMNAR_INT_BIT != 0 {
        // Sign-extend the 63-bit payload; the result always fits, so the
        // range error is unreachable on any 8-byte word.
        let n = ((w << 1) as i64) >> 1;
        Value::int(n).map_err(|_| CodecError::IntOutOfRange(n))
    } else {
        if w >> 32 != 0 {
            return Err(CodecError::Truncated { what: "columnar symbol word" });
        }
        let index = w as u32;
        let sym = syms
            .get(index as usize)
            .copied()
            .ok_or(CodecError::BadStringIndex { index, table: syms.len() })?;
        Ok(Value::sym(sym))
    }
}

/// Encodes a whole EDB as a columnar frame (see the module docs) — the
/// checkpoint body written by servers on the current format version.
pub fn encode_database_columnar(db: &Database) -> Vec<u8> {
    let interner = db.interner();
    let mut table = StringTable::new(interner);
    let mut rels: Vec<(Sym, &Relation)> = db.relations().collect();
    rels.sort_by_key(|&(p, _)| interner.resolve(p));

    let dir_end = COLUMNAR_HEADER + rels.len() * COLUMNAR_DIR_ENTRY;
    let col_bytes: usize = rels.iter().map(|(_, r)| r.arity() * r.len() * 8).sum();
    let string_table_offset = dir_end + col_bytes;

    let mut out = Vec::with_capacity(string_table_offset + 64);
    out.extend_from_slice(&COLUMNAR_MAGIC);
    push_u64(&mut out, db.generation());
    push_u64(&mut out, string_table_offset as u64);
    push_u32(&mut out, rels.len() as u32);
    push_u32(&mut out, 0); // reserved

    // Directory first: predicate names are interned before any symbol
    // word, so they occupy the low string-table indices.
    let mut col_offset = dir_end;
    for (pred, rel) in &rels {
        push_u32(&mut out, table.intern(*pred));
        push_u32(&mut out, rel.arity() as u32);
        push_u64(&mut out, rel.len() as u64);
        push_u64(&mut out, col_offset as u64);
        col_offset += rel.arity() * rel.len() * 8;
    }
    debug_assert_eq!(col_offset, string_table_offset);

    for (_, rel) in &rels {
        for c in 0..rel.arity() {
            for &value in rel.column(c) {
                push_u64(&mut out, encode_word(value, &mut table));
            }
        }
    }
    debug_assert_eq!(out.len(), string_table_offset);
    table.encode(&mut out);
    out
}

/// Decodes an EDB snapshot of *either* format into `db`, returning the
/// frame's commit generation: the first eight bytes pick the decoder.
/// Every snapshot consumer (recovery, `sepra restore`, a replica's
/// cold-sync applier) goes through this, so new readers accept old
/// frames and vice versa never needs to hold.
pub fn decode_snapshot_into(bytes: &[u8], db: &mut Database) -> Result<u64, CodecError> {
    if bytes.len() >= 8 && bytes[..8] == COLUMNAR_MAGIC {
        decode_database_columnar_into(bytes, db)
    } else {
        decode_database_into(bytes, db)
    }
}

/// Decodes a columnar EDB frame into `db` (bulk-adopting each relation's
/// columns, interning names into `db`'s symbol space) and returns the
/// frame's commit generation. All-or-none like [`decode_database_into`]:
/// arities are validated across the whole frame (and against `db`) before
/// anything is installed.
pub fn decode_database_columnar_into(bytes: &[u8], db: &mut Database) -> Result<u64, CodecError> {
    let truncated = |what: &'static str| CodecError::Truncated { what };
    if bytes.len() < COLUMNAR_HEADER || bytes[..8] != COLUMNAR_MAGIC {
        return Err(truncated("columnar snapshot header"));
    }
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let generation = word(8);
    let nrels = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes")) as usize;
    // bytes[28..32] is reserved; this reader ignores it.

    let sto = usize::try_from(word(16)).map_err(|_| truncated("string table offset"))?;
    if sto < COLUMNAR_HEADER || sto > bytes.len() || sto % 8 != 0 {
        return Err(truncated("string table offset"));
    }
    let dir_end = nrels
        .checked_mul(COLUMNAR_DIR_ENTRY)
        .and_then(|n| n.checked_add(COLUMNAR_HEADER))
        .filter(|&end| end <= sto)
        .ok_or(truncated("relation directory"))?;

    // The string table sits last in the frame but decodes first, so
    // symbol words resolve while columns stream.
    let mut cur = Cursor::new(&bytes[sto..]);
    let syms = decode_string_table(&mut cur, db.interner_mut())?;
    if cur.remaining() != 0 {
        return Err(CodecError::TrailingBytes(cur.remaining()));
    }

    let mut decoded: Vec<(Sym, Relation)> = Vec::with_capacity(nrels);
    for i in 0..nrels {
        let at = COLUMNAR_HEADER + i * COLUMNAR_DIR_ENTRY;
        let index = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let pred = syms
            .get(index as usize)
            .copied()
            .ok_or(CodecError::BadStringIndex { index, table: syms.len() })?;
        let arity = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes")) as usize;
        let nrows = usize::try_from(word(at + 8)).map_err(|_| truncated("relation row count"))?;
        let col_offset =
            usize::try_from(word(at + 16)).map_err(|_| truncated("relation column offset"))?;
        if arity == 0 {
            // Zero-arity sections occupy no bytes, so the span check below
            // cannot bound their row count — bound it directly (a set-
            // valued nullary relation holds at most the empty tuple).
            if nrows > 1 {
                return Err(truncated("relation rows"));
            }
            let (rel, _) = Relation::from_columns(0, Vec::new(), nrows, false);
            decoded.push((pred, rel));
            continue;
        }
        let section = arity
            .checked_mul(nrows)
            .and_then(|n| n.checked_mul(8))
            .ok_or(truncated("relation columns"))?;
        if col_offset < dir_end
            || col_offset % 8 != 0
            || col_offset.checked_add(section).is_none_or(|end| end > sto)
        {
            return Err(truncated("relation columns"));
        }
        let mut columns = Vec::with_capacity(arity);
        for c in 0..arity {
            let start = col_offset + c * nrows * 8;
            let mut col = Vec::with_capacity(nrows);
            for r in 0..nrows {
                col.push(decode_word(word(start + r * 8), &syms)?);
            }
            columns.push(col);
        }
        // `from_columns` dedups if the section repeats a row, so a
        // hostile frame cannot plant duplicates behind the probe table.
        let (rel, _duplicates) = Relation::from_columns(arity, columns, nrows, false);
        decoded.push((pred, rel));
    }

    // All-or-none: validate every arity (across the frame and against
    // `db`) before installing anything, so a corrupt frame cannot leave
    // half an EDB behind.
    let mut arities: FxHashMap<Sym, usize> = FxHashMap::default();
    for (pred, rel) in &decoded {
        let expected =
            arities.get(pred).copied().or_else(|| db.relation(*pred).map(Relation::arity));
        if expected.is_some_and(|a| a != rel.arity()) {
            return Err(truncated("consistent relation arities"));
        }
        arities.insert(*pred, rel.arity());
    }
    for (pred, rel) in decoded {
        db.install_relation(pred, rel).map_err(|_| truncated("consistent relation arities"))?;
    }
    Ok(generation)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(b, c). age(a, 42). age(b, -7). flag.").unwrap();
        db
    }

    /// Renders every fact of a database as sorted `pred(v, ...)` strings —
    /// an id-free fingerprint for comparing databases across interners.
    fn fingerprint(db: &Database) -> Vec<String> {
        let mut out: Vec<String> = db
            .relations()
            .flat_map(|(p, rel)| {
                let name = db.interner().resolve(p).to_string();
                rel.iter()
                    .map(move |t| format!("{name}{}", t.display(db.interner())))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn database_roundtrip_across_interners() {
        let db = sample_db();
        let bytes = encode_database(&db);
        // The receiving database has a *different* symbol space: intern
        // some unrelated names first so ids cannot accidentally line up.
        let mut other = Database::new();
        other.intern("zebra");
        other.intern("b");
        let generation = decode_database_into(&bytes, &mut other).unwrap();
        assert_eq!(generation, db.generation());
        assert_eq!(fingerprint(&other), fingerprint(&db));
    }

    #[test]
    fn delta_roundtrip_across_interners() {
        let mut db = sample_db();
        let e = db.intern("e");
        let age = db.intern("age");
        let x = Value::sym(db.intern("x"));
        let y = Value::sym(db.intern("y"));
        let mut delta = EdbDelta::default();
        delta.insert.insert(e, vec![Tuple::from([x, y])]);
        delta.remove.insert(age, vec![Tuple::from([x, Value::int(-42).unwrap()])]);
        let bytes = encode_delta(&delta, db.interner());

        let mut other = Interner::new();
        other.intern("unrelated");
        let decoded = decode_delta(&bytes, &mut other).unwrap();
        assert_eq!(decoded.len(), delta.len());
        let e2 = other.get("e").unwrap();
        let age2 = other.get("age").unwrap();
        assert_eq!(decoded.insert[&e2].len(), 1);
        assert_eq!(decoded.insert[&e2][0].display(&other).to_string(), "(x, y)");
        assert_eq!(decoded.remove[&age2][0].display(&other).to_string(), "(x, -42)");
    }

    #[test]
    fn empty_delta_roundtrips() {
        let mut interner = Interner::new();
        let bytes = encode_delta(&EdbDelta::default(), &interner);
        let decoded = decode_delta(&bytes, &mut interner).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn truncation_never_panics() {
        let db = sample_db();
        let bytes = encode_database(&db);
        for len in 0..bytes.len() {
            let mut fresh = Database::new();
            assert!(decode_database_into(&bytes[..len], &mut fresh).is_err(), "prefix {len}");
        }
        let mut delta = EdbDelta::default();
        let mut db = sample_db();
        let e = db.intern("e");
        delta.insert.insert(e, vec![Tuple::from([Value::int(1).unwrap(), Value::int(2).unwrap()])]);
        let bytes = encode_delta(&delta, db.interner());
        for len in 0..bytes.len() {
            let mut interner = Interner::new();
            assert!(decode_delta(&bytes[..len], &mut interner).is_err(), "prefix {len}");
        }
    }

    #[test]
    fn hostile_counts_are_rejected_without_huge_allocations() {
        // A frame claiming 2^32-1 strings of any size must fail fast.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut interner = Interner::new();
        assert!(matches!(decode_delta(&bytes, &mut interner), Err(CodecError::Truncated { .. })));
        // Same for a relation claiming u64::MAX tuples.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u64.to_le_bytes()); // generation
        bytes.extend_from_slice(&1u32.to_le_bytes()); // 1 string
        bytes.extend_from_slice(&1u32.to_le_bytes()); // len 1
        bytes.push(b'p');
        bytes.extend_from_slice(&1u32.to_le_bytes()); // 1 relation
        bytes.extend_from_slice(&0u32.to_le_bytes()); // name idx
        bytes.extend_from_slice(&2u32.to_le_bytes()); // arity
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // tuple count
        let mut db = Database::new();
        assert!(matches!(decode_database_into(&bytes, &mut db), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn hostile_zero_arity_counts_are_rejected() {
        // Zero-arity tuples occupy no input bytes, so the byte-based
        // plausibility check cannot bound them — a hostile frame claiming
        // u32::MAX nullary tuples must still fail fast, not allocate.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_le_bytes()); // 1 string
        bytes.extend_from_slice(&4u32.to_le_bytes()); // len 4
        bytes.extend_from_slice(b"flag");
        bytes.extend_from_slice(&1u32.to_le_bytes()); // remove: 1 pred
        bytes.extend_from_slice(&0u32.to_le_bytes()); // name idx
        bytes.extend_from_slice(&0u32.to_le_bytes()); // arity 0
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // tuple count
        let mut interner = Interner::new();
        assert!(matches!(decode_delta(&bytes, &mut interner), Err(CodecError::Truncated { .. })));

        // Same through the EDB-frame path (`sepra restore`, `:load`).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u64.to_le_bytes()); // generation
        bytes.extend_from_slice(&1u32.to_le_bytes()); // 1 string
        bytes.extend_from_slice(&4u32.to_le_bytes()); // len 4
        bytes.extend_from_slice(b"flag");
        bytes.extend_from_slice(&1u32.to_le_bytes()); // 1 relation
        bytes.extend_from_slice(&0u32.to_le_bytes()); // name idx
        bytes.extend_from_slice(&0u32.to_le_bytes()); // arity 0
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // tuple count
        let mut db = Database::new();
        assert!(matches!(decode_database_into(&bytes, &mut db), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn zero_arity_facts_still_roundtrip() {
        // `flag` sorts last in sample_db's relations, so its (empty)
        // tuple sits at the very end of the frame with zero bytes after
        // the count — the arity-0 guard must not reject that.
        let db = sample_db();
        let bytes = encode_database(&db);
        let mut fresh = Database::new();
        decode_database_into(&bytes, &mut fresh).unwrap();
        assert_eq!(fingerprint(&fresh), fingerprint(&db));

        let mut db = sample_db();
        let flag = db.intern("flag");
        let mut delta = EdbDelta::default();
        let empty = || Tuple::from(Vec::<Value>::new());
        delta.insert.insert(flag, vec![empty()]);
        let bytes = encode_delta(&delta, db.interner());
        let mut other = Interner::new();
        let decoded = decode_delta(&bytes, &mut other).unwrap();
        let flag2 = other.get("flag").unwrap();
        assert_eq!(decoded.insert[&flag2], vec![empty()]);
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut interner = Interner::new();
        let mut bytes = encode_delta(&EdbDelta::default(), &interner);
        bytes.push(0);
        assert!(matches!(decode_delta(&bytes, &mut interner), Err(CodecError::TrailingBytes(1))));
    }

    #[test]
    fn encoding_is_deterministic() {
        // Two databases with the same facts interned in different orders
        // encode to identical bytes (predicates sorted by name, tuples in
        // relation insertion order).
        let db1 = sample_db();
        let mut db2 = Database::new();
        db2.intern("noise1");
        db2.intern("noise2");
        db2.load_fact_text("e(a, b). e(b, c). age(a, 42). age(b, -7). flag.").unwrap();
        assert_eq!(encode_database(&db1), encode_database(&db2));
    }

    #[test]
    fn columnar_roundtrip_across_interners() {
        let db = sample_db();
        let bytes = encode_database_columnar(&db);
        assert_eq!(bytes[..8], COLUMNAR_MAGIC);
        let mut other = Database::new();
        other.intern("zebra");
        other.intern("b");
        let generation = decode_database_columnar_into(&bytes, &mut other).unwrap();
        assert_eq!(generation, db.generation());
        assert_eq!(fingerprint(&other), fingerprint(&db));
    }

    #[test]
    fn snapshot_sniff_dispatches_on_the_body_magic() {
        let db = sample_db();
        for bytes in [encode_database(&db), encode_database_columnar(&db)] {
            let mut fresh = Database::new();
            let generation = decode_snapshot_into(&bytes, &mut fresh).unwrap();
            assert_eq!(generation, db.generation());
            assert_eq!(fingerprint(&fresh), fingerprint(&db));
        }
    }

    #[test]
    fn columnar_encoding_is_deterministic_and_aligned() {
        let db1 = sample_db();
        let mut db2 = Database::new();
        db2.intern("noise1");
        db2.load_fact_text("e(a, b). e(b, c). age(a, 42). age(b, -7). flag.").unwrap();
        let bytes = encode_database_columnar(&db1);
        assert_eq!(bytes, encode_database_columnar(&db2));
        // Every column section and the string table sit on 8-byte
        // boundaries — the property a memory-mapping reader relies on.
        let sto = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        assert_eq!(sto % 8, 0);
        let nrels = u32::from_le_bytes(bytes[24..28].try_into().unwrap()) as usize;
        for i in 0..nrels {
            let at = 32 + i * 24 + 16;
            let col_offset = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
            assert_eq!(col_offset % 8, 0, "relation {i} column section misaligned");
        }
    }

    #[test]
    fn columnar_truncation_never_panics() {
        let db = sample_db();
        let bytes = encode_database_columnar(&db);
        for len in 0..bytes.len() {
            let mut fresh = Database::new();
            assert!(
                decode_database_columnar_into(&bytes[..len], &mut fresh).is_err(),
                "prefix {len}"
            );
            assert_eq!(fresh.total_tuples(), 0, "prefix {len} left tuples behind");
        }
    }

    #[test]
    fn columnar_hostile_frames_are_rejected() {
        let db = sample_db();
        let good = encode_database_columnar(&db);
        let fresh = || Database::new();

        // A row count of u64::MAX must fail fast on the section-span
        // check, not allocate.
        let mut bytes = good.clone();
        bytes[32 + 8..32 + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_database_columnar_into(&bytes, &mut fresh()),
            Err(CodecError::Truncated { .. })
        ));

        // A column offset pointing into the directory (or out of bounds).
        let mut bytes = good.clone();
        bytes[32 + 16..32 + 24].copy_from_slice(&8u64.to_le_bytes());
        assert!(decode_database_columnar_into(&bytes, &mut fresh()).is_err());
        let mut bytes = good.clone();
        bytes[32 + 16..32 + 24].copy_from_slice(&(good.len() as u64).to_le_bytes());
        assert!(decode_database_columnar_into(&bytes, &mut fresh()).is_err());

        // A string-table offset past the end of the frame.
        let mut bytes = good.clone();
        bytes[16..24].copy_from_slice(&(good.len() as u64 + 8).to_le_bytes());
        assert!(decode_database_columnar_into(&bytes, &mut fresh()).is_err());

        // A symbol word with garbage in its upper 32 bits.
        let db2 = {
            let mut d = Database::new();
            d.load_fact_text("p(a).").unwrap();
            d
        };
        let mut bytes = encode_database_columnar(&db2);
        let col = u64::from_le_bytes(bytes[32 + 16..32 + 24].try_into().unwrap()) as usize;
        bytes[col + 4..col + 8].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            decode_database_columnar_into(&bytes, &mut fresh()),
            Err(CodecError::Truncated { what: "columnar symbol word" })
        ));
    }

    #[test]
    fn columnar_hostile_zero_arity_counts_are_rejected() {
        // Mirror of `hostile_zero_arity_counts_are_rejected`: nullary
        // sections occupy no bytes, so a huge claimed row count must be
        // bounded directly.
        let mut db = Database::new();
        db.load_fact_text("flag.").unwrap();
        let mut bytes = encode_database_columnar(&db);
        bytes[32 + 8..32 + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut fresh = Database::new();
        assert!(matches!(
            decode_database_columnar_into(&bytes, &mut fresh),
            Err(CodecError::Truncated { what: "relation rows" })
        ));
        // A count of exactly one still roundtrips.
        let bytes = encode_database_columnar(&db);
        let mut fresh = Database::new();
        decode_database_columnar_into(&bytes, &mut fresh).unwrap();
        assert_eq!(fingerprint(&fresh), fingerprint(&db));
    }

    #[test]
    fn columnar_rejects_inconsistent_arities_all_or_none() {
        // Two directory entries for one predicate with different arities:
        // nothing may be installed.
        let mut db = Database::new();
        db.load_fact_text("p(a). q(a, b).").unwrap();
        let mut bytes = encode_database_columnar(&db);
        // Point q's name index at p's name (entry 1's name index).
        let p_name = bytes[32..36].to_vec();
        bytes[32 + 24..32 + 28].copy_from_slice(&p_name);
        let mut fresh = Database::new();
        assert!(matches!(
            decode_database_columnar_into(&bytes, &mut fresh),
            Err(CodecError::Truncated { what: "consistent relation arities" })
        ));
        assert_eq!(fresh.total_tuples(), 0);
    }
}
