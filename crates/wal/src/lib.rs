//! Durability for the sepra EDB: a write-ahead log, checkpoint snapshots,
//! and crash recovery.
//!
//! The in-memory [`Database`](sepra_storage::Database) commits mutations
//! atomically and stamps each commit point with a **generation** counter
//! (one bump per effective tuple). This crate makes those commit points
//! survive a `kill -9`:
//!
//! * [`codec`] — a self-contained binary encoding of
//!   [`EdbDelta`](sepra_storage::EdbDelta)s and whole-EDB snapshots. Every
//!   frame carries its own string table, so interned symbol ids never
//!   cross a process boundary: a frame written by one process decodes
//!   into any other interner.
//! * [`log`] — the write-ahead log: length-prefixed, CRC-32-checksummed,
//!   generation-stamped records appended under a configurable
//!   [`FsyncPolicy`]. Reading tolerates a torn final record (a crash
//!   mid-append) by truncating it, never by failing.
//! * [`checkpoint`] — periodic full-EDB snapshots written
//!   atomically (temp file + rename), which bound replay work and let the
//!   log be truncated.
//! * [`store`] — [`DurableStore`], the per-directory orchestration: open a
//!   data dir, recover `newest valid checkpoint + WAL tail`, append
//!   deltas, and roll checkpoints.
//!
//! The invariant the whole crate maintains: **recovery yields exactly the
//! facts of some committed-generation prefix** — never half a mutation,
//! never a suffix, and under `FsyncPolicy::Always` never less than the
//! last acknowledged commit.

pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod log;
pub mod store;

pub use checkpoint::{
    list_checkpoints, load_newest_checkpoint, read_checkpoint_file, write_checkpoint_file,
    CheckpointLease, LeaseSet,
};
pub use codec::{CodecError, Cursor};
pub use log::{
    read_records_from, FollowPoll, WalFollower, WalReader, WalRecord, WalWriter, WAL_MAGIC,
};
pub use store::{read_recovery, DurableStore, Recovery};

use std::time::Duration;

/// When appended WAL records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record: an acknowledged commit is on disk.
    /// This is the default — and the only policy under which "the server
    /// answered" implies "the mutation survives a crash".
    #[default]
    Always,
    /// `fdatasync` at most once per the given interval, so throughput no
    /// longer pays one disk flush per mutation. Dirty records are flushed
    /// by the first append after the interval elapses, by a periodic
    /// [`sync_if_stale`](crate::log::WalWriter::sync_if_stale) call (the
    /// server runs one from its accept loop), and at clean shutdown — so
    /// a crash loses at most one interval of acknowledged commits
    /// *provided* something drives those calls; a bare [`WalWriter`] with
    /// no appends and no `sync_if_stale` driver keeps dirty records
    /// unflushed until shutdown or drop.
    Interval(Duration),
    /// Never fsync explicitly; the OS flushes when it pleases. A crash
    /// can lose everything since the last kernel writeback; a clean
    /// process exit loses nothing.
    Never,
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::Interval(Duration::from_millis(100))),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|_| format!("interval expects milliseconds, got `{ms}`")),
                None => Err(format!(
                    "unknown fsync policy `{other}` (expected always|interval[:MS]|never)"
                )),
            },
        }
    }
}

/// Errors from the durability layer.
#[derive(Debug)]
pub enum WalError {
    /// An underlying file operation failed; the path names the culprit.
    Io {
        /// What the layer was doing, e.g. `"appending to wal.log"`.
        context: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// A frame failed to decode (corrupt bytes that nonetheless passed the
    /// CRC — only possible for files a user hands us, e.g. `sepra restore`).
    Codec(CodecError),
    /// A file that must be a checkpoint/WAL is not one (bad magic).
    BadMagic {
        /// The offending path.
        path: String,
    },
    /// A failed append could not be rolled back, so the log's tail is in
    /// an unknown state; appends are refused until the file is reopened
    /// (scan + repair). See [`log::WalWriter::append`].
    Poisoned {
        /// The WAL path.
        path: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { context, source } => write!(f, "{context}: {source}"),
            WalError::Codec(e) => write!(f, "{e}"),
            WalError::BadMagic { path } => {
                write!(f, "{path} is not a sepra durability file (bad magic)")
            }
            WalError::Poisoned { path } => {
                write!(
                    f,
                    "{path}: a failed append could not be rolled back; \
                     refusing writes until the log is reopened"
                )
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<CodecError> for WalError {
    fn from(e: CodecError) -> Self {
        WalError::Codec(e)
    }
}

impl WalError {
    /// Wraps an I/O error with the operation it interrupted.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        WalError::Io { context: context.into(), source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!("always".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Always);
        assert_eq!("never".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Never);
        assert_eq!(
            "interval".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(100))
        );
        assert_eq!(
            "interval:250".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert!("interval:soon".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::Interval(Duration::from_millis(250)).to_string(), "interval:250");
        assert_eq!(FsyncPolicy::Always.to_string(), "always");
    }
}
