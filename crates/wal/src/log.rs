//! The write-ahead log file: `wal.log` inside a data directory.
//!
//! Layout: an 8-byte magic, then records back to back:
//!
//! ```text
//! file   := "SPRAWAL1" record*
//! record := u32 payload-len, u32 crc32(generation ‖ payload),
//!           u64 generation, payload-len bytes
//! ```
//!
//! A record is appended as **one** `write_all` of a prebuilt buffer, so a
//! crash can tear at most the final record — and the CRC catches a torn
//! or bit-rotted tail either way. [`read_records`] therefore implements
//! the recovery contract: scan records until the first one that fails its
//! length or checksum, return the valid prefix, and report where the file
//! should be truncated. It never fails on torn data; only on I/O errors
//! and on files that are not WALs at all (bad magic — refusing to
//! truncate a file this crate does not own).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::crc::Crc32;
use crate::{FsyncPolicy, WalError};

/// The 8-byte file magic.
pub const WAL_MAGIC: &[u8; 8] = b"SPRAWAL1";

/// Per-record framing overhead: length, checksum, generation stamp.
const RECORD_HEADER: usize = 4 + 4 + 8;

/// One recovered WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The database generation *after* this record's delta committed.
    pub generation: u64,
    /// The encoded [`EdbDelta`](sepra_storage::EdbDelta) frame.
    pub payload: Vec<u8>,
}

/// The outcome of scanning a WAL file.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every record whose length and checksum validated, in file order.
    pub records: Vec<WalRecord>,
    /// Byte offset just past the last valid record — where a repair
    /// should truncate.
    pub valid_len: u64,
    /// Bytes past `valid_len` (a torn final record, or garbage).
    pub torn_bytes: u64,
}

/// Reads and validates a WAL file without modifying it. A missing file is
/// an empty scan; a file shorter than the magic is treated as a torn
/// creation (everything is torn); a present-but-foreign file (bad magic)
/// is an error — this crate must not truncate a file it does not own.
pub fn read_records(path: &Path) -> Result<WalScan, WalError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(WalError::io(format!("reading {}", path.display()), e)),
    };
    if bytes.is_empty() {
        return Ok(WalScan::default());
    }
    if bytes.len() < WAL_MAGIC.len() {
        // A crash during file creation: nothing valid yet.
        return Ok(WalScan { records: Vec::new(), valid_len: 0, torn_bytes: bytes.len() as u64 });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(WalError::BadMagic { path: path.display().to_string() });
    }
    let mut scan = WalScan { valid_len: WAL_MAGIC.len() as u64, ..WalScan::default() };
    let mut pos = WAL_MAGIC.len();
    loop {
        if pos == bytes.len() {
            break; // clean end
        }
        if bytes.len() - pos < RECORD_HEADER {
            break; // torn header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let gen_bytes = &bytes[pos + 8..pos + 16];
        let Some(end) = pos.checked_add(RECORD_HEADER).and_then(|p| p.checked_add(len)) else {
            break; // absurd length
        };
        if end > bytes.len() {
            break; // torn payload
        }
        let payload = &bytes[pos + RECORD_HEADER..end];
        let mut crc = Crc32::new();
        crc.update(gen_bytes);
        crc.update(payload);
        if crc.finish() != stored_crc {
            break; // corrupt record: everything from here on is suspect
        }
        scan.records.push(WalRecord {
            generation: u64::from_le_bytes(gen_bytes.try_into().expect("8 bytes")),
            payload: payload.to_vec(),
        });
        pos = end;
        scan.valid_len = pos as u64;
    }
    scan.torn_bytes = bytes.len() as u64 - scan.valid_len;
    Ok(scan)
}

/// [`read_records`] restricted to records stamped *after*
/// `from_generation` — the offset API a log-shipping follower resumes
/// from. `valid_len` and `torn_bytes` still describe the whole file
/// (filtering changes what is returned, not what is on disk).
pub fn read_records_from(path: &Path, from_generation: u64) -> Result<WalScan, WalError> {
    let mut scan = read_records(path)?;
    scan.records.retain(|r| r.generation > from_generation);
    Ok(scan)
}

/// An incremental reader over a live WAL: each [`poll`](Self::poll)
/// returns the records stamped after the highest generation already
/// delivered (the *floor*), and flags when the file was truncated under
/// the reader (a checkpoint rolled and restarted the log).
///
/// Rotation is detected by the valid prefix shrinking between polls.
/// That is a fast path, not a completeness guarantee: a truncate-and-
/// regrow that lands between two polls can leave the file *longer* than
/// before while records in `(floor, checkpoint]` are gone from the log.
/// A reader that must not miss those records therefore also watches the
/// checkpoint directory — whenever a checkpoint newer than the floor
/// exists, the truncated records are covered by that snapshot, never
/// lost (the log is only ever truncated *after* a checkpoint captured
/// everything in it).
#[derive(Debug)]
pub struct WalFollower {
    path: PathBuf,
    /// Highest generation already delivered; only records stamped after
    /// it are returned.
    floor: u64,
    /// `valid_len` of the previous poll, for rotation detection.
    last_valid_len: u64,
}

/// One [`WalFollower::poll`] outcome.
#[derive(Debug, Default)]
pub struct FollowPoll {
    /// New records, stamped after the follower's floor, in commit order.
    /// Empty when `rotated` — the caller must first consult checkpoints.
    pub records: Vec<WalRecord>,
    /// The file's valid prefix shrank since the previous poll: the log
    /// was truncated (checkpoint roll). The floor did not advance; the
    /// caller should check for a checkpoint newer than the floor before
    /// polling again.
    pub rotated: bool,
}

impl WalFollower {
    /// A follower that will deliver records stamped after `floor`.
    pub fn new(path: &Path, floor: u64) -> Self {
        Self { path: path.to_path_buf(), floor, last_valid_len: 0 }
    }

    /// The highest generation delivered so far.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Raises the floor (after the caller covered a gap from a
    /// checkpoint). Lowering it would re-deliver records; ignored.
    pub fn advance_floor(&mut self, floor: u64) {
        self.floor = self.floor.max(floor);
    }

    /// Scans the log and returns records newer than the floor, advancing
    /// the floor past them. A CRC-invalid tail is treated as
    /// not-yet-written (a concurrent append lands mid-poll); the torn
    /// records surface on a later poll once complete. A missing file is
    /// an empty poll.
    pub fn poll(&mut self) -> Result<FollowPoll, WalError> {
        let scan = read_records(&self.path)?;
        if scan.valid_len < self.last_valid_len {
            // Truncated under us. Reset so the restarted file is read
            // from scratch next time, once the caller has resolved the
            // gap against the checkpoint directory.
            self.last_valid_len = 0;
            return Ok(FollowPoll { records: Vec::new(), rotated: true });
        }
        self.last_valid_len = scan.valid_len;
        let records: Vec<WalRecord> =
            scan.records.into_iter().filter(|r| r.generation > self.floor).collect();
        if let Some(last) = records.last() {
            self.floor = last.generation;
        }
        Ok(FollowPoll { records, rotated: false })
    }
}

/// Truncates `path` to `valid_len` (dropping a torn tail found by
/// [`read_records`]). A no-op when the file is missing.
pub fn repair(path: &Path, valid_len: u64) -> Result<(), WalError> {
    match OpenOptions::new().write(true).open(path) {
        Ok(file) => file
            .set_len(valid_len)
            .and_then(|()| file.sync_data())
            .map_err(|e| WalError::io(format!("truncating {}", path.display()), e)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(WalError::io(format!("opening {} for repair", path.display()), e)),
    }
}

/// A handle for reading a WAL without repairing it (offline inspection,
/// `sepra dump`). Thin named wrapper so callers don't reach for the free
/// functions in the wrong order.
#[derive(Debug)]
pub struct WalReader;

impl WalReader {
    /// See [`read_records`].
    pub fn scan(path: &Path) -> Result<WalScan, WalError> {
        read_records(path)
    }
}

/// Appends records under a [`FsyncPolicy`]. Create via [`WalWriter::open`]
/// **after** scanning and repairing the file — the writer assumes the file
/// ends at a record boundary.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    last_sync: Instant,
    /// Unsynced appends outstanding (only meaningful under `Interval`).
    dirty: bool,
    bytes: u64,
    /// Set when a failed append could not be rolled back: the file may end
    /// in bytes that were never acknowledged, so further appends are
    /// refused — anything written after the garbage would be silently
    /// discarded at recovery. Reopening (scan + repair) clears the state.
    poisoned: bool,
}

impl WalWriter {
    /// Opens (or creates) the WAL for appending. A missing or empty file
    /// gets the magic written and synced; an existing file must start
    /// with the magic.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<Self, WalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| WalError::io(format!("opening {}", path.display()), e))?;
        let len = file
            .metadata()
            .map_err(|e| WalError::io(format!("inspecting {}", path.display()), e))?
            .len();
        let io = |context: &str, e| WalError::io(format!("{context} {}", path.display()), e);
        let len = if len < WAL_MAGIC.len() as u64 {
            // Fresh (or torn-at-creation, already repaired to < magic):
            // start over with a clean header.
            file.set_len(0).map_err(|e| io("truncating", e))?;
            file.write_all(WAL_MAGIC).map_err(|e| io("writing magic to", e))?;
            file.sync_data().map_err(|e| io("syncing", e))?;
            WAL_MAGIC.len() as u64
        } else {
            let mut magic = [0u8; 8];
            file.seek(SeekFrom::Start(0)).map_err(|e| io("seeking", e))?;
            file.read_exact(&mut magic).map_err(|e| io("reading magic from", e))?;
            if &magic != WAL_MAGIC {
                return Err(WalError::BadMagic { path: path.display().to_string() });
            }
            len
        };
        file.seek(SeekFrom::Start(len)).map_err(|e| io("seeking", e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            last_sync: Instant::now(),
            dirty: false,
            bytes: len,
            poisoned: false,
        })
    }

    /// Appends one generation-stamped record and applies the fsync
    /// policy. On success the record is in the OS (and, under `Always`,
    /// on disk) — the caller may acknowledge the commit.
    ///
    /// On `Err` the record is **not** in the log: a partial write (e.g.
    /// ENOSPC) or a failed policy sync rolls the file back to its
    /// pre-append length, so a caller that rolls its own commit back
    /// stays in agreement with recovery — the failed mutation is neither
    /// acknowledged nor replayed, and later commits land at a clean
    /// record boundary. If the rollback itself fails the writer is
    /// poisoned: every further append is refused (the file may end in
    /// unacknowledged bytes that would silently swallow anything
    /// appended after them) until the log is reopened via scan + repair.
    pub fn append(&mut self, generation: u64, payload: &[u8]) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned { path: self.path.display().to_string() });
        }
        let mut crc = Crc32::new();
        let gen_bytes = generation.to_le_bytes();
        crc.update(&gen_bytes);
        crc.update(payload);
        let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc.finish().to_le_bytes());
        record.extend_from_slice(&gen_bytes);
        record.extend_from_slice(payload);
        let pre_append = self.bytes;
        let result = self.append_record(&record);
        if result.is_err() {
            self.rollback_to(pre_append);
        }
        result
    }

    /// The fallible middle of [`append`](Self::append): write, advance the
    /// length, apply the fsync policy. Split out so `append` can roll the
    /// file back on *any* error here.
    fn append_record(&mut self, record: &[u8]) -> Result<(), WalError> {
        // One write_all per record: a crash tears at most the final
        // record, and the CRC catches even a torn single write.
        self.file
            .write_all(record)
            .map_err(|e| WalError::io(format!("appending to {}", self.path.display()), e))?;
        self.bytes += record.len() as u64;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Interval(interval) => {
                self.dirty = true;
                if self.last_sync.elapsed() >= interval {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Restores the file to `len` after a failed append. The truncation is
    /// synced so the dropped bytes cannot reappear after a crash; if any
    /// step fails the writer is poisoned instead — the file's tail is in
    /// an unknown state and further appends could land after garbage.
    fn rollback_to(&mut self, len: u64) {
        let restored = self.file.set_len(len).is_ok()
            && self.file.seek(SeekFrom::Start(len)).is_ok()
            && self.file.sync_data().is_ok();
        if restored {
            self.bytes = len;
            // The sync above flushed every prior append too.
            self.last_sync = Instant::now();
            self.dirty = false;
        } else {
            self.poisoned = true;
        }
    }

    /// Whether a failed append could not be rolled back; a poisoned
    /// writer refuses further appends (see [`append`](Self::append)).
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Under [`FsyncPolicy::Interval`], flushes outstanding appends if
    /// the interval has elapsed since the last sync; a no-op (and `false`)
    /// otherwise. A server calls this periodically so the documented loss
    /// window holds even when no further appends arrive to trigger the
    /// deferred sync.
    pub fn sync_if_stale(&mut self) -> Result<bool, WalError> {
        if let FsyncPolicy::Interval(interval) = self.policy {
            if self.dirty && self.last_sync.elapsed() >= interval {
                self.sync()?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Flushes outstanding appends to disk regardless of policy.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file
            .sync_data()
            .map_err(|e| WalError::io(format!("syncing {}", self.path.display()), e))?;
        self.last_sync = Instant::now();
        self.dirty = false;
        Ok(())
    }

    /// Drops every record: the log restarts at just the magic (called
    /// after a checkpoint makes the records redundant).
    pub fn truncate(&mut self) -> Result<(), WalError> {
        let io = |context: &str, e| WalError::io(format!("{context} {}", self.path.display()), e);
        self.file.set_len(WAL_MAGIC.len() as u64).map_err(|e| io("truncating", e))?;
        self.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64)).map_err(|e| io("seeking", e))?;
        self.file.sync_data().map_err(|e| io("syncing", e))?;
        self.bytes = WAL_MAGIC.len() as u64;
        self.last_sync = Instant::now();
        self.dirty = false;
        Ok(())
    }

    /// Current file length in bytes (magic included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether appends are awaiting a policy-deferred sync.
    pub fn dirty(&self) -> bool {
        self.dirty
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        if self.dirty {
            let _ = self.file.sync_data();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sepra_wal_log_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmp("roundtrip.log");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        w.append(1, b"first").unwrap();
        w.append(2, b"").unwrap();
        w.append(5, b"third record, longer").unwrap();
        drop(w);
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(
            scan.records,
            vec![
                WalRecord { generation: 1, payload: b"first".to_vec() },
                WalRecord { generation: 2, payload: Vec::new() },
                WalRecord { generation: 5, payload: b"third record, longer".to_vec() },
            ]
        );
    }

    #[test]
    fn torn_tail_is_dropped_and_repair_truncates() {
        let path = tmp("torn.log");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        w.append(1, b"keep me").unwrap();
        w.append(2, b"also keep").unwrap();
        let good_len = w.bytes();
        w.append(3, b"about to be torn").unwrap();
        drop(w);
        // Tear the final record mid-payload.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(good_len + 9).unwrap();
        drop(file);
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.torn_bytes, 9);
        repair(&path, scan.valid_len).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        // Appending after repair keeps the prefix intact.
        let mut w = WalWriter::open(&path, FsyncPolicy::Always).unwrap();
        w.append(3, b"retry").unwrap();
        drop(w);
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[2].payload, b"retry");
    }

    #[test]
    fn corrupt_middle_record_cuts_the_suffix() {
        let path = tmp("corrupt.log");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        w.append(1, b"good").unwrap();
        let first_end = w.bytes();
        w.append(2, b"flip me").unwrap();
        w.append(3, b"unreachable").unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = first_end as usize + RECORD_HEADER + 2;
        bytes[flip] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_records(&path).unwrap();
        // Only the prefix before the corruption survives — a corrupt
        // record invalidates everything after it.
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, first_end);
    }

    #[test]
    fn missing_file_is_an_empty_scan() {
        let path = tmp("missing.log");
        let _ = std::fs::remove_file(&path);
        let scan = read_records(&path).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn foreign_file_is_rejected_not_truncated() {
        let path = tmp("foreign.log");
        std::fs::write(&path, b"definitely not a WAL file").unwrap();
        assert!(matches!(read_records(&path), Err(WalError::BadMagic { .. })));
        assert!(matches!(
            WalWriter::open(&path, FsyncPolicy::Never),
            Err(WalError::BadMagic { .. })
        ));
        // The file is untouched.
        assert_eq!(std::fs::read(&path).unwrap(), b"definitely not a WAL file");
    }

    #[test]
    fn sync_if_stale_flushes_only_elapsed_intervals() {
        use std::time::Duration;
        let path = tmp("stale_sync.log");
        let _ = std::fs::remove_file(&path);
        let mut w =
            WalWriter::open(&path, FsyncPolicy::Interval(Duration::from_secs(3600))).unwrap();
        w.append(1, b"deferred").unwrap();
        assert!(w.dirty());
        assert!(!w.sync_if_stale().unwrap()); // interval not yet elapsed
        assert!(w.dirty());
        w.policy = FsyncPolicy::Interval(Duration::ZERO);
        assert!(w.sync_if_stale().unwrap());
        assert!(!w.dirty());
        assert!(!w.sync_if_stale().unwrap()); // nothing left to flush
    }

    #[test]
    fn rollback_restores_the_pre_append_state() {
        let path = tmp("rollback.log");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        w.append(1, b"committed").unwrap();
        let good_len = w.bytes();
        // Simulate the torn half of a failed append (e.g. ENOSPC after
        // some bytes landed), then the rollback `append` performs.
        w.file.write_all(b"torn garbage from a failed write").unwrap();
        w.rollback_to(good_len);
        assert!(!w.poisoned());
        assert_eq!(w.bytes(), good_len);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        // The writer is still usable and the log stays a clean prefix.
        w.append(2, b"after recovery").unwrap();
        drop(w);
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.records.iter().map(|r| r.generation).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn poisoned_writer_refuses_appends() {
        let path = tmp("poisoned.log");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        w.append(1, b"fine").unwrap();
        w.poisoned = true;
        assert!(matches!(w.append(2, b"refused"), Err(WalError::Poisoned { .. })));
        drop(w);
        // Nothing after the poison made it into the file; reopening
        // (scan + repair happened implicitly — the file is clean) works.
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        assert!(!w.poisoned());
        w.append(2, b"accepted again").unwrap();
    }

    #[test]
    fn read_records_from_filters_by_generation() {
        let path = tmp("offset.log");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        for generation in [3u64, 7, 12] {
            w.append(generation, b"payload").unwrap();
        }
        drop(w);
        let all = read_records_from(&path, 0).unwrap();
        assert_eq!(all.records.iter().map(|r| r.generation).collect::<Vec<_>>(), vec![3, 7, 12]);
        let tail = read_records_from(&path, 7).unwrap();
        assert_eq!(tail.records.iter().map(|r| r.generation).collect::<Vec<_>>(), vec![12]);
        // valid_len still covers the whole file, not just the filtered tail.
        assert_eq!(tail.valid_len, all.valid_len);
        assert!(read_records_from(&path, 12).unwrap().records.is_empty());
    }

    #[test]
    fn follower_delivers_each_record_once() {
        let path = tmp("follow.log");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        let mut follower = WalFollower::new(&path, 0);
        assert!(follower.poll().unwrap().records.is_empty()); // nothing yet
        w.append(1, b"a").unwrap();
        w.append(2, b"b").unwrap();
        let poll = follower.poll().unwrap();
        assert!(!poll.rotated);
        assert_eq!(poll.records.iter().map(|r| r.generation).collect::<Vec<_>>(), vec![1, 2]);
        assert!(follower.poll().unwrap().records.is_empty()); // no re-delivery
        w.append(5, b"c").unwrap();
        let poll = follower.poll().unwrap();
        assert_eq!(poll.records.iter().map(|r| r.generation).collect::<Vec<_>>(), vec![5]);
        assert_eq!(follower.floor(), 5);
    }

    #[test]
    fn follower_flags_truncation_and_resumes_after_floor_advance() {
        let path = tmp("follow_rotate.log");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        w.append(1, b"a").unwrap();
        w.append(2, b"b").unwrap();
        let mut follower = WalFollower::new(&path, 0);
        assert_eq!(follower.poll().unwrap().records.len(), 2);
        // A checkpoint at 4 truncates the log; records 3..=4 are gone
        // from the file, covered by the snapshot.
        w.truncate().unwrap();
        w.append(6, b"after").unwrap();
        let poll = follower.poll().unwrap();
        assert!(poll.rotated);
        assert!(poll.records.is_empty());
        assert_eq!(follower.floor(), 2); // the floor did not advance
        follower.advance_floor(4); // caller covered 3..=4 from the checkpoint
        let poll = follower.poll().unwrap();
        assert!(!poll.rotated);
        assert_eq!(poll.records.iter().map(|r| r.generation).collect::<Vec<_>>(), vec![6]);
        // advance_floor never lowers the floor.
        follower.advance_floor(1);
        assert_eq!(follower.floor(), 6);
    }

    #[test]
    fn follower_treats_a_torn_tail_as_not_yet_written() {
        let path = tmp("follow_torn.log");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        w.append(1, b"whole").unwrap();
        let good_len = w.bytes();
        w.append(2, b"gets torn").unwrap();
        drop(w);
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(good_len + 7).unwrap();
        drop(file);
        let mut follower = WalFollower::new(&path, 0);
        let poll = follower.poll().unwrap();
        assert!(!poll.rotated);
        assert_eq!(poll.records.iter().map(|r| r.generation).collect::<Vec<_>>(), vec![1]);
        // The record completes (a concurrent append finished): the next
        // poll picks it up.
        repair(&path, good_len).unwrap();
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        w.append(2, b"complete now").unwrap();
        let poll = follower.poll().unwrap();
        assert_eq!(poll.records.iter().map(|r| r.generation).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn truncate_restarts_the_log() {
        let path = tmp("restart.log");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        w.append(1, b"old").unwrap();
        w.truncate().unwrap();
        assert_eq!(w.bytes(), WAL_MAGIC.len() as u64);
        w.append(9, b"new era").unwrap();
        drop(w);
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].generation, 9);
    }
}
