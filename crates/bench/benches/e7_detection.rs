//! E7 — Section 3.1: detecting separability costs a small polynomial in
//! the *rule* size (r rules, arity k, body length l) and is independent of
//! the database. This bench times `RecursiveDef::extract` + `detect` on
//! synthetic wide programs; compare the microseconds here against the
//! milliseconds-to-seconds evaluation times in E1–E6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepra_ast::{parse_program, Interner};
use sepra_core::detect::detect_in_program;
use sepra_gen::programs::wide_program;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_detection");
    for (r, k, l) in [(2usize, 2usize, 1usize), (8, 2, 2), (8, 8, 4), (32, 4, 4), (32, 8, 8)] {
        let src = wide_program(r, k, l);
        let mut interner = Interner::new();
        let program = parse_program(&src, &mut interner).expect("wide program parses");
        let t = interner.intern("t");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("r{r}_k{k}_l{l}")),
            &(program, interner, t),
            |b, (program, interner, t)| {
                b.iter(|| {
                    let mut i = interner.clone();
                    detect_in_program(program, *t, &mut i).expect("wide program is separable")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
