//! E8 — ablations on the design choices DESIGN.md calls out:
//!
//! * **(a) Lemma 2.1 decomposition** — a partial selection on the
//!   Example 2.4 three-ary recursion, evaluated via the t_part/t_full
//!   decomposition vs falling back to Magic Sets;
//! * **(b) dedup (`carry - seen`)** — Figure 2's line 5 on vs off on
//!   acyclic data (off diverges on cyclic data; the wall-clock cost of the
//!   difference is measured here);
//! * **(c) hash indexes** — index-nested-loop joins vs filtered full scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepra_ast::{parse_program, parse_query};
use sepra_bench::{run_magic, run_separable};
use sepra_core::detect::detect_in_program;
use sepra_core::evaluate::SeparableEvaluator;
use sepra_core::exec::{ExecOptions, ExtraRelations};
use sepra_gen::graphs::add_chain;
use sepra_gen::paper::{magic_worst_buys, Instance};
use sepra_storage::Database;

fn example_2_4_instance(n: usize) -> Instance {
    let mut db = Database::new();
    // a(X, Y, U, V): pairs walk a chain two-at-a-time.
    for i in 0..n {
        db.insert_named(
            "a",
            &[&format!("c{i}"), &format!("d{i}"), &format!("c{}", i + 1), &format!("d{}", i + 1)],
        )
        .expect("fact");
    }
    for i in 0..=n {
        db.insert_named("t0", &[&format!("c{i}"), &format!("d{i}"), "w0"]).expect("fact");
    }
    add_chain(&mut db, "b", "w", n);
    Instance {
        program: "t(X, Y, Z) :- a(X, Y, U, V), t(U, V, Z).\n\
                  t(X, Y, Z) :- t(X, Y, W), b(W, Z).\n\
                  t(X, Y, Z) :- t0(X, Y, Z).\n"
            .to_string(),
        query: "t(c0, Y, Z)?".to_string(),
        db,
    }
}

fn run_with_options(inst: &Instance, opts: ExecOptions) -> usize {
    let mut db = inst.db.clone();
    let program = parse_program(&inst.program, db.interner_mut()).expect("parses");
    let query = parse_query(&inst.query, db.interner_mut()).expect("parses");
    let sep = detect_in_program(&program, query.atom.pred, db.interner_mut()).expect("separable");
    let evaluator = SeparableEvaluator::with_options(sep, opts);
    evaluator.evaluate(&query, &db, &ExtraRelations::default()).expect("evaluates").answers.len()
}

fn bench(c: &mut Criterion) {
    // (a) Partial selection: decomposition vs Magic Sets.
    {
        let mut group = c.benchmark_group("e8a_partial_selection");
        group.sample_size(10);
        for n in [20usize, 60] {
            let inst = example_2_4_instance(n);
            group.bench_with_input(BenchmarkId::new("separable_lemma21", n), &inst, |b, inst| {
                b.iter(|| run_separable(inst).expect("separable run"));
            });
            group.bench_with_input(BenchmarkId::new("magic", n), &inst, |b, inst| {
                b.iter(|| run_magic(inst).expect("magic run"));
            });
        }
        group.finish();
    }
    // (b) Dedup on/off on acyclic data.
    {
        let mut group = c.benchmark_group("e8b_dedup");
        group.sample_size(10);
        let inst = magic_worst_buys(100);
        group.bench_function("dedup_on", |b| {
            b.iter(|| run_with_options(&inst, ExecOptions::default()));
        });
        group.bench_function("dedup_off", |b| {
            b.iter(|| {
                run_with_options(&inst, ExecOptions { dedup: false, ..ExecOptions::default() })
            });
        });
        group.finish();
    }
    // (c) Indexes on/off.
    {
        let mut group = c.benchmark_group("e8c_indexes");
        group.sample_size(10);
        let inst = magic_worst_buys(300);
        group.bench_function("indexes_on", |b| {
            b.iter(|| run_with_options(&inst, ExecOptions::default()));
        });
        group.bench_function("indexes_off", |b| {
            b.iter(|| {
                run_with_options(
                    &inst,
                    ExecOptions { use_indexes: false, ..ExecOptions::default() },
                )
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
