//! E6 — average-case comparison on representative recursions (the paper
//! defers empirical averages to [Nau88]; these are the workload shapes its
//! introduction motivates): transitive closure and the two `buys` programs
//! over random digraphs and layered DAGs, Separable vs Magic Sets vs
//! semi-naive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepra_bench::{run_magic, run_seminaive, run_separable};
use sepra_gen::graphs::{add_layered_dag, add_random_digraph};
use sepra_gen::paper::Instance;
use sepra_gen::programs::{buys_one_class, buys_two_class, transitive_closure};
use sepra_storage::Database;

fn tc_random(n: usize, m: usize, seed: u64) -> Instance {
    let mut db = Database::new();
    add_random_digraph(&mut db, "e", "v", n, m, seed);
    Instance { program: transitive_closure().to_string(), query: "t(v0, Y)?".to_string(), db }
}

fn buys_social(n: usize, seed: u64) -> Instance {
    let mut db = Database::new();
    add_random_digraph(&mut db, "friend", "p", n, n * 2, seed);
    add_random_digraph(&mut db, "idol", "p", n, n, seed ^ 0xabcd);
    // Products: each of the last few people has a perfect product.
    for i in 0..(n / 4).max(1) {
        db.insert_named("perfectFor", &[&format!("p{i}"), &format!("prod{i}")]).expect("fact");
    }
    Instance { program: buys_one_class().to_string(), query: "buys(p0, Y)?".to_string(), db }
}

fn buys_catalog(n: usize, seed: u64) -> Instance {
    let mut db = Database::new();
    add_layered_dag(&mut db, "friend", "s", 4, n / 4, 2, seed);
    for i in 0..(n / 4).max(1) {
        db.insert_named("perfectFor", &[&format!("sl3n{i}"), &format!("prod{i}")]).expect("fact");
        db.insert_named("cheaper", &[&format!("prod{}", i + 1), &format!("prod{i}")])
            .expect("fact");
    }
    Instance { program: buys_two_class().to_string(), query: "buys(sl0n0, Y)?".to_string(), db }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_average_case");
    group.sample_size(10);
    let workloads: Vec<(&str, Instance)> = vec![
        ("tc_random_200", tc_random(200, 600, 1)),
        ("tc_random_800", tc_random(800, 2400, 2)),
        ("buys_social_200", buys_social(200, 3)),
        ("buys_catalog_200", buys_catalog(200, 4)),
    ];
    for (name, inst) in &workloads {
        group.bench_with_input(BenchmarkId::new("separable", name), inst, |b, inst| {
            b.iter(|| run_separable(inst).expect("separable run"));
        });
        group.bench_with_input(BenchmarkId::new("magic", name), inst, |b, inst| {
            b.iter(|| run_magic(inst).expect("magic run"));
        });
        group.bench_with_input(BenchmarkId::new("seminaive", name), inst, |b, inst| {
            b.iter(|| run_seminaive(inst).expect("seminaive run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
