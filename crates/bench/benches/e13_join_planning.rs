//! E13 — cost-based join planning vs. source-order compilation.
//!
//! Each workload comes as a twin pair over the *same* database: an
//! `adversarial` program whose rule bodies list the largest relation
//! first and the selective one last, and a `well_ordered` program with
//! the same bodies hand-reversed into the order a careful author would
//! write. Both are evaluated under `PlanMode::CostBased` and
//! `PlanMode::SourceOrder`, so the matrix separates what the planner
//! *recovers* (adversarial: cost-based must beat source order) from what
//! it *risks* (well-ordered: cost-based must stay within noise of the
//! already-optimal order).
//!
//! Like E12 this hand-rolls its measurement loop: under `cargo bench`
//! (`--bench` in the arguments) medians are printed and written to
//! `BENCH_join_planning.json` at the repository root. With `--smoke` it
//! runs a reduced-size, reduced-sample matrix and exits non-zero if
//! cost-based regresses source order beyond [`SMOKE_TOLERANCE`] anywhere
//! — the CI guard that planning never makes a query slower than the
//! program text. Without either flag each configuration runs once as a
//! silent smoke test (`cargo test` builds and runs benches argument-less).

use std::hint::black_box;
use std::time::Instant;

use sepra_ast::parse_program;
use sepra_eval::{seminaive_with_options, EvalOptions, PlanMode};
use sepra_gen::graphs::add_random_digraph;
use sepra_storage::Database;

const SAMPLES: usize = 7;
const SMOKE_SAMPLES: usize = 3;

/// Smoke-mode gate: cost-based may be at most this factor slower than
/// source order on any (workload, order) cell. Generous because smoke
/// sizes are small enough for constant overheads (statistics snapshots,
/// the greedy ordering itself) to be visible.
const SMOKE_TOLERANCE: f64 = 1.5;

struct Twin {
    name: &'static str,
    adversarial: String,
    well_ordered: String,
    db: Database,
}

/// Non-recursive three-way join: `big` (dense) × `mid` × `tiny` (a
/// handful of facts). Source order on the adversarial twin scans all of
/// `big` and joins `mid` before the tiny filter kills almost everything;
/// the planner starts from `tiny` and drives keyed lookups backwards.
fn tri_filter(scale: usize) -> Twin {
    let mut db = Database::new();
    add_random_digraph(&mut db, "big", "v", scale, scale * 15, 11);
    add_random_digraph(&mut db, "mid", "v", scale, scale * 5, 12);
    for i in 0..5 {
        db.insert_named("tiny", &[&format!("v{i}"), &format!("out{i}")]).expect("fact");
    }
    Twin {
        name: "tri_filter",
        adversarial: "q(X, W) :- big(X, Y), mid(Y, Z), tiny(Z, W).\n".to_string(),
        well_ordered: "q(X, W) :- tiny(Z, W), mid(Y, Z), big(X, Y).\n".to_string(),
        db,
    }
}

/// Recursive twin: the adversarial body puts an *unconnected* wide
/// relation right after the recursive literal, so source order pairs
/// every delta tuple with every `wide` edge before `hop` filters; the
/// planner keeps `hop` (keyed on the delta's variable) in front.
fn delta_guard(scale: usize) -> Twin {
    let mut db = Database::new();
    add_random_digraph(&mut db, "hop", "v", scale, scale * 3, 21);
    add_random_digraph(&mut db, "wide", "v", scale, scale * 15, 22);
    for i in 0..3 {
        db.insert_named("seed", &[&format!("s{i}"), &format!("v{i}")]).expect("fact");
    }
    Twin {
        name: "delta_guard",
        adversarial: "t(X, Y) :- t(X, Z), wide(W, Y), hop(Z, W).\nt(X, Y) :- seed(X, Y).\n"
            .to_string(),
        well_ordered: "t(X, Y) :- t(X, Z), hop(Z, W), wide(W, Y).\nt(X, Y) :- seed(X, Y).\n"
            .to_string(),
        db,
    }
}

/// One full semi-naive evaluation; returns total derived tuples so the
/// optimizer cannot discard the run (and so twins can be cross-checked).
fn run_once(program: &str, db: &Database, mode: PlanMode) -> usize {
    let mut db = db.clone();
    let program = parse_program(program, db.interner_mut()).expect("program parses");
    let opts = EvalOptions { plan_mode: mode, ..EvalOptions::default() };
    let derived = seminaive_with_options(&program, &db, &opts).expect("evaluates");
    derived.relations.values().map(|r| r.len()).sum()
}

fn median_ns(program: &str, db: &Database, mode: PlanMode, samples: usize) -> u64 {
    black_box(run_once(program, db, mode));
    let mut timed: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(run_once(program, db, mode));
            start.elapsed().as_nanos() as u64
        })
        .collect();
    timed.sort_unstable();
    timed[timed.len() / 2]
}

struct Cell {
    workload: String,
    mode: &'static str,
    median_ns: u64,
}

/// Runs the 2×2 matrix for one twin; returns the four cells.
fn measure_twin(twin: &Twin, samples: usize) -> Vec<Cell> {
    // Parity first: all four cells must derive the same tuple count —
    // a planner that changes answers would make the timings meaningless.
    let expect = run_once(&twin.well_ordered, &twin.db, PlanMode::SourceOrder);
    let mut cells = Vec::new();
    for (order, program) in
        [("adversarial", &twin.adversarial), ("well_ordered", &twin.well_ordered)]
    {
        for (mode_name, mode) in
            [("cost_based", PlanMode::CostBased), ("source_order", PlanMode::SourceOrder)]
        {
            let got = run_once(program, &twin.db, mode);
            assert_eq!(got, expect, "{}/{order}/{mode_name} changed the answers", twin.name);
            cells.push(Cell {
                workload: format!("{}/{order}", twin.name),
                mode: mode_name,
                median_ns: median_ns(program, &twin.db, mode, samples),
            });
        }
    }
    cells
}

fn find(cells: &[Cell], workload: &str, mode: &str) -> u64 {
    cells
        .iter()
        .find(|c| c.workload == workload && c.mode == mode)
        .expect("cell measured")
        .median_ns
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let measure = args.iter().any(|a| a == "--bench");
    let smoke = args.iter().any(|a| a == "--smoke");

    if !measure && !smoke {
        // Silent smoke for `cargo test`: one tiny run per twin and mode.
        for twin in [tri_filter(30), delta_guard(20)] {
            for mode in [PlanMode::CostBased, PlanMode::SourceOrder] {
                black_box(run_once(&twin.adversarial, &twin.db, mode));
            }
        }
        return std::process::ExitCode::SUCCESS;
    }

    let (twins, samples) = if smoke {
        (vec![tri_filter(80), delta_guard(40)], SMOKE_SAMPLES)
    } else {
        (vec![tri_filter(300), delta_guard(90)], SAMPLES)
    };

    let mut cells = Vec::new();
    for twin in &twins {
        cells.extend(measure_twin(twin, samples));
    }
    for c in &cells {
        println!(
            "e13_join_planning/{:<28} {:<12} median {:>12} ns",
            c.workload, c.mode, c.median_ns
        );
    }

    let mut failures = Vec::new();
    println!();
    for twin in &twins {
        for order in ["adversarial", "well_ordered"] {
            let workload = format!("{}/{order}", twin.name);
            let cost = find(&cells, &workload, "cost_based");
            let source = find(&cells, &workload, "source_order");
            let speedup = source as f64 / cost as f64;
            println!("{workload:<30} cost-based speedup over source order: {speedup:>5.2}x");
            if smoke && (cost as f64) > source as f64 * SMOKE_TOLERANCE {
                failures.push(format!(
                    "{workload}: cost-based {cost} ns vs source-order {source} ns \
                     exceeds tolerance {SMOKE_TOLERANCE}x"
                ));
            }
        }
    }

    if smoke {
        if failures.is_empty() {
            println!("\nsmoke ok: cost-based within {SMOKE_TOLERANCE}x of source order everywhere");
            return std::process::ExitCode::SUCCESS;
        }
        for f in &failures {
            eprintln!("smoke FAIL: {f}");
        }
        return std::process::ExitCode::FAILURE;
    }

    // Machine-readable artifact at the repository root. As with E12, the
    // host's core count is recorded because it frames the numbers; these
    // runs are single-threaded, so on any host the medians compare plan
    // quality, not parallelism.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = String::from("{\n  \"experiment\": \"e13_join_planning\",\n");
    json.push_str(&format!(
        "  \"samples\": {samples},\n  \"available_parallelism\": {cores},\n  \"results\": [\n"
    ));
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"workload\": \"{}\", \"plan_mode\": \"{}\", \"median_ns\": {} }}{comma}\n",
            c.workload, c.mode, c.median_ns
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join_planning.json");
    std::fs::write(path, &json).expect("write BENCH_join_planning.json");
    println!("\nwrote {path}");
    std::process::ExitCode::SUCCESS
}
