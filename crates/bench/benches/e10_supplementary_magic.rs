//! E10 — engineering ablation on the Magic Sets baseline itself: basic vs
//! supplementary rewriting on recursions with multi-atom rule bodies. The
//! supplementary variant shares each rule-body prefix between the magic
//! rule and the guarded rule, trading join re-computation (rows scanned)
//! for materialized `sup` relations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepra_ast::{parse_program, parse_query};
use sepra_gen::paper::Instance;
use sepra_rewrite::{magic_evaluate, magic_evaluate_supplementary};
use sepra_storage::Database;

fn long_body_instance(n: usize) -> Instance {
    let mut db = Database::new();
    sepra_gen::graphs::add_chain(&mut db, "hop", "n", n);
    db.insert_named("goal", &[&format!("n{n}"), "finish"]).expect("fact");
    db.insert_named("goal", &[&format!("n{}", n / 2), "half"]).expect("fact");
    Instance {
        program: "reach(X, Y) :- hop(X, A), hop(A, B), hop(B, W), reach(W, Y).\n\
                  reach(X, Y) :- goal(X, Y).\n"
            .to_string(),
        query: "reach(n0, Y)?".to_string(),
        db,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_supplementary_magic");
    group.sample_size(10);
    for n in [120usize, 480, 960] {
        let inst = long_body_instance(n);
        let mut db = inst.db.clone();
        let program = parse_program(&inst.program, db.interner_mut()).expect("parses");
        let query = parse_query(&inst.query, db.interner_mut()).expect("parses");
        group.bench_with_input(BenchmarkId::new("basic", n), &n, |b, _| {
            b.iter(|| magic_evaluate(&program, &query, &db).expect("basic magic"));
        });
        group.bench_with_input(BenchmarkId::new("supplementary", n), &n, |b, _| {
            b.iter(|| magic_evaluate_supplementary(&program, &query, &db).expect("sup magic"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
