//! E16 — recursive min aggregate vs materialize-all-path-costs.
//!
//! Single-source shortest path on a layered weighted DAG, computed two
//! ways that a stratification-aware engine must agree on:
//!
//! * `min_fixpoint` — the recursive `min` aggregate: `short` keeps one
//!   cost per node and the fixpoint *prunes* dominated paths as it runs —
//!   a longer route into a node whose group minimum is already lower
//!   derives nothing downstream.
//! * `materialize_paths` — the positive encoding available without
//!   recursive aggregation: `dist` materializes *every* distinct path
//!   cost per node (bounded here by the weight range × depth, so the
//!   baseline terminates), and a final non-recursive `min` stratum
//!   collapses the groups.
//!
//! Both sides are stratified programs on the same semi-naive engine, so
//! the measured gap is the aggregate's in-fixpoint pruning, not an engine
//! difference. Like E12–E15 the measurement loop is hand-rolled:
//! `--bench` prints medians and writes `BENCH_stratified.json` at the
//! repository root; `--smoke` runs a reduced matrix and exits non-zero if
//! the aggregate side exceeds [`SMOKE_TOLERANCE`] times the baseline
//! anywhere; with no flag each pair runs once as a silent smoke test.

use std::hint::black_box;
use std::time::Instant;

use sepra_ast::{parse_program, parse_query};
use sepra_eval::{query_answers, seminaive_with_options, EvalOptions};
use sepra_storage::{Database, Tuple, Value};

const SAMPLES: usize = 7;
const SMOKE_SAMPLES: usize = 3;

/// Smoke-mode gate: the aggregate side may be at most this factor slower
/// than the materializing baseline on any workload.
const SMOKE_TOLERANCE: f64 = 1.5;

const MIN_FIXPOINT: &str = "short(Y, min<C>) :- src(X), w(X, Y, C).\n\
                            short(Y, min<C>) :- short(X, D), w(X, Y, W), C = D + W.\n";

const MATERIALIZE: &str = "dist(Y, C) :- src(X), w(X, Y, C).\n\
                           dist(Y, C) :- dist(X, D), w(X, Y, W), C = D + W.\n\
                           short(Y, min<C>) :- dist(Y, C).\n";

const QUERY: &str = "short(Y, C)?";

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    MinFixpoint,
    MaterializePaths,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::MinFixpoint => "min_fixpoint",
            Variant::MaterializePaths => "materialize_paths",
        }
    }

    fn program(self) -> &'static str {
        match self {
            Variant::MinFixpoint => MIN_FIXPOINT,
            Variant::MaterializePaths => MATERIALIZE,
        }
    }
}

struct Workload {
    name: &'static str,
    db: Database,
}

/// A layered DAG: `width` nodes per layer, `layers` layers, every node
/// wired to every node of the next layer with a deterministic pseudo-random
/// weight in `1..=9`. Path *count* grows as `width^layers`; distinct path
/// *costs* per node stay below `9 * layers`, so the materializing baseline
/// is polynomial — slow, not impossible.
fn layered(name: &'static str, width: usize, layers: usize) -> Workload {
    let mut db = Database::new();
    let w = db.intern("w");
    let node = |l: usize, i: usize| format!("n{l}_{i}");
    db.insert_named("src", &[&node(0, 0)]).expect("fact");
    // Reach the whole first layer from the source node.
    let mut edges: Vec<(String, String, i64)> = Vec::new();
    for i in 1..width {
        edges.push((node(0, 0), node(0, i), 1 + (i as i64 * 5) % 9));
    }
    for l in 0..layers - 1 {
        for a in 0..width {
            for b in 0..width {
                let weight = 1 + ((a * 7 + b * 13 + l * 3) as i64) % 9;
                edges.push((node(l, a), node(l + 1, b), weight));
            }
        }
    }
    for (from, to, weight) in edges {
        let tuple = Tuple::from(vec![
            Value::sym(db.interner_mut().intern(&from)),
            Value::sym(db.interner_mut().intern(&to)),
            Value::int(weight).expect("small weight"),
        ]);
        db.insert(w, tuple).expect("fact");
    }
    Workload { name, db }
}

/// One full stratified evaluation; returns the answer count so the
/// optimizer cannot discard the run and the two sides can be cross-checked.
fn run_once(workload: &Workload, variant: Variant) -> usize {
    let mut db = workload.db.clone();
    let program = parse_program(variant.program(), db.interner_mut()).expect("program parses");
    let query = parse_query(QUERY, db.interner_mut()).expect("query parses");
    let derived =
        seminaive_with_options(&program, &db, &EvalOptions::default()).expect("evaluates");
    query_answers(&query, &db, Some(&derived)).expect("answers").len()
}

fn median_ns(workload: &Workload, variant: Variant, samples: usize) -> u64 {
    black_box(run_once(workload, variant));
    let mut timed: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(run_once(workload, variant));
            start.elapsed().as_nanos() as u64
        })
        .collect();
    timed.sort_unstable();
    timed[timed.len() / 2]
}

struct Cell {
    workload: &'static str,
    variant: &'static str,
    median_ns: u64,
}

fn measure(workload: &Workload, samples: usize) -> Vec<Cell> {
    let expect = run_once(workload, Variant::MaterializePaths);
    let got = run_once(workload, Variant::MinFixpoint);
    assert_eq!(got, expect, "{}: the two encodings disagree on the answers", workload.name);
    [Variant::MaterializePaths, Variant::MinFixpoint]
        .into_iter()
        .map(|v| Cell {
            workload: workload.name,
            variant: v.name(),
            median_ns: median_ns(workload, v, samples),
        })
        .collect()
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let measure_mode = args.iter().any(|a| a == "--bench");
    let smoke = args.iter().any(|a| a == "--smoke");

    if !measure_mode && !smoke {
        // Silent smoke for `cargo test`: one tiny run per side.
        let workload = layered("tiny", 3, 4);
        for variant in [Variant::MaterializePaths, Variant::MinFixpoint] {
            black_box(run_once(&workload, variant));
        }
        return std::process::ExitCode::SUCCESS;
    }

    let (workloads, samples) = if smoke {
        (vec![layered("layered_w4", 4, 8)], SMOKE_SAMPLES)
    } else {
        (vec![layered("layered_w4", 4, 16), layered("layered_w6", 6, 20)], SAMPLES)
    };

    let mut cells = Vec::new();
    for workload in &workloads {
        cells.extend(measure(workload, samples));
    }
    for c in &cells {
        println!(
            "e16_stratified/{:<12} {:<18} median {:>12} ns",
            c.workload, c.variant, c.median_ns
        );
    }

    let mut failures = Vec::new();
    println!();
    for workload in &workloads {
        let base = cells
            .iter()
            .find(|c| c.workload == workload.name && c.variant == "materialize_paths")
            .expect("baseline cell")
            .median_ns;
        let opt = cells
            .iter()
            .find(|c| c.workload == workload.name && c.variant == "min_fixpoint")
            .expect("aggregate cell")
            .median_ns;
        let speedup = base as f64 / opt as f64;
        println!(
            "{:<12} min_fixpoint speedup over materialize_paths: {speedup:>5.2}x",
            workload.name
        );
        if smoke && (opt as f64) > base as f64 * SMOKE_TOLERANCE {
            failures.push(format!(
                "{}: min_fixpoint {opt} ns vs materialize_paths {base} ns exceeds \
                 tolerance {SMOKE_TOLERANCE}x",
                workload.name
            ));
        }
    }

    if smoke {
        if failures.is_empty() {
            println!("\nsmoke ok: the aggregate side within {SMOKE_TOLERANCE}x of its baseline");
            return std::process::ExitCode::SUCCESS;
        }
        for f in &failures {
            eprintln!("smoke FAIL: {f}");
        }
        return std::process::ExitCode::FAILURE;
    }

    // Machine-readable artifact at the repository root; single-threaded
    // runs, so the medians compare encodings, not parallelism.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = String::from("{\n  \"experiment\": \"e16_stratified\",\n");
    json.push_str(&format!(
        "  \"samples\": {samples},\n  \"available_parallelism\": {cores},\n  \"results\": [\n"
    ));
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"workload\": \"{}\", \"variant\": \"{}\", \"median_ns\": {} }}{comma}\n",
            c.workload, c.variant, c.median_ns
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stratified.json");
    std::fs::write(path, &json).expect("write BENCH_stratified.json");
    println!("\nwrote {path}");
    std::process::ExitCode::SUCCESS
}
