//! E11 — cost of why-provenance: evaluating with justification tracking
//! (the Lemma 3.1 `J(a)` strings) vs plain evaluation, on chain and random
//! workloads. Tracking widens every carry-extension plan's output by the
//! parent tuple and records one origin per new tuple.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepra_ast::{parse_program, parse_query, Query};
use sepra_core::detect::detect_in_program;
use sepra_core::evaluate::SeparableEvaluator;
use sepra_gen::graphs::add_random_digraph;
use sepra_gen::paper::magic_worst_buys;
use sepra_storage::Database;

fn prepared(n_kind: &str, n: usize) -> (SeparableEvaluator, Query, Database) {
    let (mut db, program_src, query_src) = match n_kind {
        "chain" => {
            let inst = magic_worst_buys(n);
            (inst.db, inst.program, inst.query)
        }
        _ => {
            let mut db = Database::new();
            add_random_digraph(&mut db, "friend", "p", n, n * 2, 5);
            db.insert_named("perfectFor", &["p1", "prod"]).expect("fact");
            (
                db,
                "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                 buys(X, Y) :- perfectFor(X, Y).\n"
                    .to_string(),
                "buys(p0, Y)?".to_string(),
            )
        }
    };
    let program = parse_program(&program_src, db.interner_mut()).expect("parses");
    let query = parse_query(&query_src, db.interner_mut()).expect("parses");
    let sep = detect_in_program(&program, query.atom.pred, db.interner_mut()).expect("separable");
    (SeparableEvaluator::new(sep), query, db)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_provenance_overhead");
    group.sample_size(10);
    for (kind, n) in [("chain", 200usize), ("random", 400)] {
        let (evaluator, query, db) = prepared(kind, n);
        group.bench_with_input(BenchmarkId::new("plain", format!("{kind}_{n}")), &n, |b, _| {
            b.iter(|| evaluator.evaluate(&query, &db, &Default::default()).expect("evaluates"));
        });
        group.bench_with_input(BenchmarkId::new("tracked", format!("{kind}_{n}")), &n, |b, _| {
            b.iter(|| {
                evaluator
                    .evaluate_with_justifications(&query, &db, &Default::default())
                    .expect("evaluates")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
