//! E5 — Lemma 4.1: Separable never constructs a relation larger than
//! n^{max(w(e₁), k − w(e₁))}. This bench times Separable across the S_p^k
//! family as k and w vary; the matching size assertions are in
//! `paper-tables` (and in `tests/section4_laws.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepra_bench::run_separable;
use sepra_gen::paper::{spk_counting_witness, spk_magic_witness};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_separable_bound");
    group.sample_size(10);
    for (k, n) in [(1usize, 400usize), (2, 60), (3, 16)] {
        let inst = spk_magic_witness(k, 2, n);
        group.bench_with_input(
            BenchmarkId::new("full_t0", format!("k{k}_n{n}")),
            &inst,
            |b, inst| {
                b.iter(|| run_separable(inst).expect("separable run"));
            },
        );
    }
    for (p, n) in [(1usize, 200usize), (3, 200)] {
        let inst = spk_counting_witness(2, p, n);
        group.bench_with_input(
            BenchmarkId::new("chains", format!("p{p}_n{n}")),
            &inst,
            |b, inst| {
                b.iter(|| run_separable(inst).expect("separable run"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
