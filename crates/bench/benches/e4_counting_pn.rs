//! E4 — Lemma 4.3: on the `S_p^k` witness with p identical chains,
//! Generalized Counting constructs Ω(pⁿ) count tuples; Separable is O(n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepra_bench::{run_counting, run_separable};
use sepra_gen::paper::spk_counting_witness;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_counting_pn");
    group.sample_size(10);
    for (p, n) in [(1usize, 14usize), (2, 14), (3, 10)] {
        let inst = spk_counting_witness(2, p, n);
        let label = format!("p{p}_n{n}");
        group.bench_with_input(BenchmarkId::new("separable", &label), &inst, |b, inst| {
            b.iter(|| run_separable(inst).expect("separable run"));
        });
        group.bench_with_input(BenchmarkId::new("counting", &label), &inst, |b, inst| {
            b.iter(|| run_counting(inst).expect("counting run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
