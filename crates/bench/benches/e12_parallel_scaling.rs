//! E12 — parallel scaling of the sharded fixpoint engine: speedup at
//! 1/2/4/8 worker threads on the `S_p^k` family and the E6 average-case
//! graphs, for both the semi-naive engine and the Separable closures.
//!
//! Unlike the other `e*` benches this one hand-rolls its measurement loop
//! (the vendored criterion harness does not expose per-benchmark stats to
//! the caller): under `cargo bench` (`--bench` in the arguments) every
//! (workload, threads) pair is timed for a fixed number of samples and the
//! medians are printed *and* written to `BENCH_parallel_scaling.json` at
//! the repository root, so successive PRs accumulate a perf trajectory.
//! Without `--bench` each configuration runs once as a silent smoke test.

use std::hint::black_box;
use std::time::Instant;

use sepra_ast::{parse_program, parse_query, Program, Query};
use sepra_core::detect::detect_in_program;
use sepra_core::evaluate::SeparableEvaluator;
use sepra_core::exec::{ExecOptions, ExtraRelations};
use sepra_eval::{seminaive_with_options, EvalOptions};
use sepra_gen::graphs::add_random_digraph;
use sepra_gen::paper::{spk_magic_witness, Instance};
use sepra_gen::programs::{buys_one_class, transitive_closure};
use sepra_storage::Database;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SAMPLES: usize = 5;

fn tc_random(n: usize, m: usize, seed: u64) -> Instance {
    let mut db = Database::new();
    add_random_digraph(&mut db, "e", "v", n, m, seed);
    Instance { program: transitive_closure().to_string(), query: "t(v0, Y)?".to_string(), db }
}

fn buys_social(n: usize, seed: u64) -> Instance {
    let mut db = Database::new();
    add_random_digraph(&mut db, "friend", "p", n, n * 2, seed);
    add_random_digraph(&mut db, "idol", "p", n, n, seed ^ 0xabcd);
    for i in 0..(n / 4).max(1) {
        db.insert_named("perfectFor", &[&format!("p{i}"), &format!("prod{i}")]).expect("fact");
    }
    Instance { program: buys_one_class().to_string(), query: "buys(p0, Y)?".to_string(), db }
}

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Separable,
    Seminaive,
}

struct Prepared {
    db: Database,
    program: Program,
    query: Query,
}

fn prepare(inst: &Instance) -> Prepared {
    let mut db = inst.db.clone();
    let program = parse_program(&inst.program, db.interner_mut()).expect("program parses");
    let query = parse_query(&inst.query, db.interner_mut()).expect("query parses");
    Prepared { db, program, query }
}

/// One full evaluation; returns the answer count so the optimizer cannot
/// discard the run.
fn run_once(prep: &Prepared, engine: Engine, threads: usize) -> usize {
    match engine {
        Engine::Seminaive => {
            let derived = seminaive_with_options(
                &prep.program,
                &prep.db,
                &EvalOptions { threads, ..Default::default() },
            )
            .expect("semi-naive evaluates");
            derived.relations.values().map(|r| r.len()).sum()
        }
        Engine::Separable => {
            let mut db = prep.db.clone();
            let sep = detect_in_program(&prep.program, prep.query.atom.pred, db.interner_mut())
                .expect("workload is separable");
            let evaluator = SeparableEvaluator::with_options(
                sep,
                ExecOptions { threads, ..ExecOptions::default() },
            );
            let out = evaluator
                .evaluate(&prep.query, &db, &ExtraRelations::default())
                .expect("separable evaluates");
            out.answers.len()
        }
    }
}

/// Times `SAMPLES` runs (after one warmup) and returns the median in ns.
fn median_ns(prep: &Prepared, engine: Engine, threads: usize) -> u64 {
    black_box(run_once(prep, engine, threads));
    let mut samples: Vec<u64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            black_box(run_once(prep, engine, threads));
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    let workloads: Vec<(&str, &str, Instance)> = vec![
        ("seminaive", "tc_random_400", tc_random(400, 1200, 1)),
        ("seminaive", "buys_social_400", buys_social(400, 3)),
        ("separable", "buys_social_2000", buys_social(2000, 3)),
        ("separable", "spk_k2_p2_n160", spk_magic_witness(2, 2, 160)),
    ];

    if !measure {
        // Smoke mode (`cargo test` builds benches): one tiny parallel run
        // per engine, nothing printed.
        let tiny = tc_random(40, 120, 1);
        let prep = prepare(&tiny);
        black_box(run_once(&prep, Engine::Seminaive, 2));
        black_box(run_once(&prep, Engine::Separable, 2));
        return;
    }

    let mut rows: Vec<(String, usize, u64)> = Vec::new();
    for (engine_name, workload, inst) in &workloads {
        let engine = match *engine_name {
            "seminaive" => Engine::Seminaive,
            _ => Engine::Separable,
        };
        let prep = prepare(inst);
        let serial = median_ns(&prep, engine, 1);
        for &threads in &THREADS {
            let ns = if threads == 1 { serial } else { median_ns(&prep, engine, threads) };
            let name = format!("e12_parallel_scaling/{engine_name}/{workload}");
            println!(
                "{:<55} threads {threads}  median {ns:>12} ns  speedup {:>5.2}x",
                name,
                serial as f64 / ns as f64
            );
            rows.push((format!("{engine_name}/{workload}"), threads, ns));
        }
    }

    // Machine-readable artifact at the repository root. The host's core
    // count is recorded because it determines what the numbers mean: on a
    // single-core container the workers time-slice one CPU, so the medians
    // measure sharding overhead (expect ≤ 1x); genuine scaling needs
    // available_parallelism >= threads.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = String::from("{\n  \"experiment\": \"e12_parallel_scaling\",\n");
    json.push_str(&format!(
        "  \"samples\": {SAMPLES},\n  \"available_parallelism\": {cores},\n  \"results\": [\n"
    ));
    for (i, (name, threads, ns)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"workload\": \"{name}\", \"threads\": {threads}, \"median_ns\": {ns} }}{comma}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel_scaling.json");
    std::fs::write(path, &json).expect("write BENCH_parallel_scaling.json");
    println!("\nwrote {path}");
}
