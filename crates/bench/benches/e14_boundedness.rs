//! E14 — boundedness elimination and subsumptive magic sets.
//!
//! Two families of pairs, each timing the same query on the same database
//! under a baseline and an optimized evaluation:
//!
//! * `vacuous_guard` and `swap_chain` — programs the boundedness analysis
//!   proves bounded. The baseline runs the recursion to fixpoint
//!   (semi-naive); the optimized side runs the analysis *and* the
//!   nonrecursive rewrite (`bounded_evaluate`), so the measured win is net
//!   of the detection cost it claims to amortize.
//! * `two_demand` — a linear recursion demanded under two comparable
//!   binding patterns (`t^bf` and `t^bb`). The baseline is the PR-6-era
//!   supplementary magic rewrite, which evaluates both adorned copies; the
//!   optimized side is the subsumptive rewrite, which collapses the
//!   stronger demand onto `t^bf` and runs a single adorned fixpoint.
//!
//! Like E12/E13 the measurement loop is hand-rolled: `--bench` prints
//! medians and writes `BENCH_boundedness.json` at the repository root;
//! `--smoke` runs a reduced matrix and exits non-zero if an optimized
//! side exceeds [`SMOKE_TOLERANCE`] times its baseline anywhere; with no
//! flag each pair runs once as a silent smoke test.

use std::hint::black_box;
use std::time::Instant;

use sepra_ast::{parse_program, parse_query, RecursiveDef};
use sepra_core::bounded::analyze;
use sepra_eval::{query_answers, seminaive_with_options, EvalOptions};
use sepra_gen::graphs::add_random_digraph;
use sepra_rewrite::{
    bounded_evaluate_with_options, magic_evaluate_subsumptive_with_options,
    magic_evaluate_supplementary_with_options,
};
use sepra_storage::Database;

const SAMPLES: usize = 7;
const SMOKE_SAMPLES: usize = 3;

/// Smoke-mode gate: the optimized side may be at most this factor slower
/// than its baseline on any pair. Generous because smoke sizes are small
/// enough for the analysis/rewrite overhead to be visible.
const SMOKE_TOLERANCE: f64 = 1.5;

/// Which evaluation each side of a pair runs.
#[derive(Clone, Copy, PartialEq)]
enum Variant {
    /// Semi-naive fixpoint on the original program.
    Fixpoint,
    /// Boundedness analysis + nonrecursive rewrite (zero iterations).
    Bounded,
    /// Supplementary magic sets (the pre-subsumption baseline).
    MagicSup,
    /// Subsumptive magic sets (demand collapse in the adornment).
    MagicSubsumptive,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::Fixpoint => "fixpoint",
            Variant::Bounded => "bounded",
            Variant::MagicSup => "magic_sup",
            Variant::MagicSubsumptive => "magic_subsumptive",
        }
    }
}

struct Pair {
    name: &'static str,
    program: String,
    query: &'static str,
    baseline: Variant,
    optimized: Variant,
    db: Database,
}

/// A vacuous recursive rule whose body drags an expensive two-hop join
/// over `big` through every fixpoint round. The analysis proves the rule
/// derives nothing (the recursive subgoal is the head itself) and drops
/// it; the fixpoint pays the join per iteration for zero new tuples.
fn vacuous_guard(scale: usize) -> Pair {
    let mut db = Database::new();
    add_random_digraph(&mut db, "big", "v", scale, scale * 8, 31);
    for i in 0..scale {
        db.insert_named("t0", &[&format!("v{i}"), &format!("w{i}")]).expect("fact");
    }
    Pair {
        name: "vacuous_guard",
        program: "t(X, Y) :- big(X, Z), big(Z, W), t(X, Y).\nt(X, Y) :- t0(X, Y).\n".to_string(),
        query: "t(X, Y)?",
        baseline: Variant::Fixpoint,
        optimized: Variant::Bounded,
        db,
    }
}

/// The depth-1 swap recursion at scale: semi-naive needs the full delta
/// machinery and an extra empty round to notice the fixpoint; the bounded
/// rewrite evaluates four nonrecursive rules in a single pass.
fn swap_chain(scale: usize) -> Pair {
    let mut db = Database::new();
    for i in 0..scale {
        let (a, b) = (format!("a{i}"), format!("b{i}"));
        db.insert_named("sym", &[&a, &b]).expect("fact");
        db.insert_named("sym", &[&b, &a]).expect("fact");
        db.insert_named("base", &[&b, &a]).expect("fact");
    }
    Pair {
        name: "swap_chain",
        program: "t(X, Y) :- sym(X, Y), t(Y, X).\nt(X, Y) :- base(X, Y).\n".to_string(),
        query: "t(X, Y)?",
        baseline: Variant::Fixpoint,
        optimized: Variant::Bounded,
        db,
    }
}

/// Two demands on one recursion, one subsuming the other: `q`'s first
/// rule asks for `t^bf`, its second binds both arguments of `t` through
/// `pin` (`t^bb`). Supplementary magic evaluates two adorned copies of
/// the `a1` chain; the subsumptive rewrite serves the `bb` demand from
/// the `bf` copy.
fn two_demand(scale: usize) -> Pair {
    let mut db = Database::new();
    for i in 0..scale {
        db.insert_named("a1", &[&format!("n{i}"), &format!("n{}", i + 1)]).expect("fact");
    }
    db.insert_named("t0", &[&format!("n{scale}"), "fin"]).expect("fact");
    db.insert_named("t0", &[&format!("n{}", scale / 2), "mid"]).expect("fact");
    db.insert_named("pin", &["n0", "n5", "fin"]).expect("fact");
    db.insert_named("pin", &["n0", "n9", "mid"]).expect("fact");
    Pair {
        name: "two_demand",
        program: "q(X, Y) :- t(X, Y).\n\
                  q(X, Y) :- pin(X, Z, Y), t(Z, Y).\n\
                  t(X, Y) :- a1(X, W), t(W, Y).\n\
                  t(X, Y) :- t0(X, Y).\n"
            .to_string(),
        query: "q(n0, Y)?",
        baseline: Variant::MagicSup,
        optimized: Variant::MagicSubsumptive,
        db,
    }
}

/// One full evaluation of a pair under `variant`; returns the answer
/// count so the optimizer cannot discard the run and pairs can be
/// cross-checked.
fn run_once(pair: &Pair, variant: Variant) -> usize {
    let mut db = pair.db.clone();
    let program = parse_program(&pair.program, db.interner_mut()).expect("program parses");
    let query = parse_query(pair.query, db.interner_mut()).expect("query parses");
    let eval = EvalOptions::default();
    match variant {
        Variant::Fixpoint => {
            let derived = seminaive_with_options(&program, &db, &eval).expect("evaluates");
            query_answers(&query, &db, Some(&derived)).expect("answers").len()
        }
        Variant::Bounded => {
            // Detection is part of the timed work: the claimed win must
            // survive paying for the analysis it depends on.
            let def = RecursiveDef::extract(&program, query.atom.pred, db.interner())
                .expect("definition extracts");
            let bounded = analyze(&def, db.interner_mut()).expect("program is bounded");
            bounded_evaluate_with_options(&program, &query, &db, &bounded, &eval)
                .expect("evaluates")
                .answers
                .len()
        }
        Variant::MagicSup => {
            magic_evaluate_supplementary_with_options(&program, &query, &db, &eval)
                .expect("evaluates")
                .answers
                .len()
        }
        Variant::MagicSubsumptive => {
            magic_evaluate_subsumptive_with_options(&program, &query, &db, &eval)
                .expect("evaluates")
                .answers
                .len()
        }
    }
}

fn median_ns(pair: &Pair, variant: Variant, samples: usize) -> u64 {
    black_box(run_once(pair, variant));
    let mut timed: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(run_once(pair, variant));
            start.elapsed().as_nanos() as u64
        })
        .collect();
    timed.sort_unstable();
    timed[timed.len() / 2]
}

struct Cell {
    workload: &'static str,
    variant: &'static str,
    median_ns: u64,
}

/// Times both sides of one pair, after asserting they agree on the
/// answer count — an optimization that changes answers would make the
/// timings meaningless.
fn measure_pair(pair: &Pair, samples: usize) -> Vec<Cell> {
    let expect = run_once(pair, pair.baseline);
    let got = run_once(pair, pair.optimized);
    assert_eq!(got, expect, "{}: optimized variant changed the answers", pair.name);
    [pair.baseline, pair.optimized]
        .into_iter()
        .map(|v| Cell {
            workload: pair.name,
            variant: v.name(),
            median_ns: median_ns(pair, v, samples),
        })
        .collect()
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let measure = args.iter().any(|a| a == "--bench");
    let smoke = args.iter().any(|a| a == "--smoke");

    if !measure && !smoke {
        // Silent smoke for `cargo test`: one tiny run per pair and side.
        for pair in [vacuous_guard(20), swap_chain(20), two_demand(12)] {
            for variant in [pair.baseline, pair.optimized] {
                black_box(run_once(&pair, variant));
            }
        }
        return std::process::ExitCode::SUCCESS;
    }

    let (pairs, samples) = if smoke {
        (vec![vacuous_guard(60), swap_chain(120), two_demand(30)], SMOKE_SAMPLES)
    } else {
        (vec![vacuous_guard(200), swap_chain(900), two_demand(60)], SAMPLES)
    };

    let mut cells = Vec::new();
    for pair in &pairs {
        cells.extend(measure_pair(pair, samples));
    }
    for c in &cells {
        println!(
            "e14_boundedness/{:<16} {:<18} median {:>12} ns",
            c.workload, c.variant, c.median_ns
        );
    }

    let mut failures = Vec::new();
    println!();
    for pair in &pairs {
        let base = cells
            .iter()
            .find(|c| c.workload == pair.name && c.variant == pair.baseline.name())
            .expect("baseline cell")
            .median_ns;
        let opt = cells
            .iter()
            .find(|c| c.workload == pair.name && c.variant == pair.optimized.name())
            .expect("optimized cell")
            .median_ns;
        let speedup = base as f64 / opt as f64;
        println!(
            "{:<18} {} speedup over {}: {speedup:>5.2}x",
            pair.name,
            pair.optimized.name(),
            pair.baseline.name()
        );
        if smoke && (opt as f64) > base as f64 * SMOKE_TOLERANCE {
            failures.push(format!(
                "{}: {} {opt} ns vs {} {base} ns exceeds tolerance {SMOKE_TOLERANCE}x",
                pair.name,
                pair.optimized.name(),
                pair.baseline.name()
            ));
        }
    }

    if smoke {
        if failures.is_empty() {
            println!("\nsmoke ok: every optimized side within {SMOKE_TOLERANCE}x of its baseline");
            return std::process::ExitCode::SUCCESS;
        }
        for f in &failures {
            eprintln!("smoke FAIL: {f}");
        }
        return std::process::ExitCode::FAILURE;
    }

    // Machine-readable artifact at the repository root; single-threaded
    // runs, so the medians compare rewrites, not parallelism.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = String::from("{\n  \"experiment\": \"e14_boundedness\",\n");
    json.push_str(&format!(
        "  \"samples\": {samples},\n  \"available_parallelism\": {cores},\n  \"results\": [\n"
    ));
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"workload\": \"{}\", \"variant\": \"{}\", \"median_ns\": {} }}{comma}\n",
            c.workload, c.variant, c.median_ns
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_boundedness.json");
    std::fs::write(path, &json).expect("write BENCH_boundedness.json");
    println!("\nwrote {path}");
    std::process::ExitCode::SUCCESS
}
