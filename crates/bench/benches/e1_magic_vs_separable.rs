//! E1 — Section 4's worked example on Example 1.2: query `buys(tom, Y)?`
//! over a friend chain and a cheaper chain. Generalized Magic Sets
//! materializes Θ(n²) `buys` tuples; Separable stays O(n).
//!
//! Run `cargo run -p sepra-bench --bin paper-tables --release` for the
//! relation-size table; this bench times both algorithms across n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepra_bench::{run_magic, run_separable};
use sepra_gen::paper::magic_worst_buys;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_magic_vs_separable");
    group.sample_size(10);
    for n in [25usize, 50, 100, 200] {
        let inst = magic_worst_buys(n);
        group.bench_with_input(BenchmarkId::new("separable", n), &inst, |b, inst| {
            b.iter(|| run_separable(inst).expect("separable run"));
        });
        group.bench_with_input(BenchmarkId::new("magic", n), &inst, |b, inst| {
            b.iter(|| run_magic(inst).expect("magic run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
