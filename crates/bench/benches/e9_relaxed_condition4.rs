//! E9 — Section 5: evaluating a recursion that violates Condition 4
//! (disconnected nonrecursive body) with the relaxed detector. The
//! algorithm stays correct but the Lemma 2.1 seeds enumerate the entire
//! disconnected relation, so cost tracks |b| instead of the reachable
//! fraction — the "focusing" loss the paper describes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepra_ast::{parse_program, parse_query};
use sepra_core::detect::{detect_with_options, DetectOptions};
use sepra_core::evaluate::SeparableEvaluator;
use sepra_core::exec::ExtraRelations;
use sepra_gen::graphs::add_chain;
use sepra_storage::Database;

fn build(n: usize) -> (SeparableEvaluator, sepra_ast::Query, Database) {
    let mut db = Database::new();
    add_chain(&mut db, "a", "x", 4);
    add_chain(&mut db, "b", "y", n);
    db.insert_named("t0", &["x1", "y1"]).expect("fact");
    let program = parse_program(
        "t(X, Y) :- a(X, W), t(W, Z), b(Z, Y).\n\
         t(X, Y) :- t0(X, Y).\n",
        db.interner_mut(),
    )
    .expect("parses");
    let query = parse_query("t(x0, Y)?", db.interner_mut()).expect("parses");
    let def = sepra_ast::RecursiveDef::extract(&program, query.atom.pred, db.interner())
        .expect("shape ok");
    let sep = detect_with_options(
        &def,
        db.interner_mut(),
        DetectOptions { allow_disconnected_bodies: true },
    )
    .expect("accepted with relaxation");
    (SeparableEvaluator::new(sep), query, db)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_relaxed_condition4");
    group.sample_size(10);
    for n in [50usize, 200, 800] {
        let (evaluator, query, db) = build(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                evaluator
                    .evaluate(&query, &db, &ExtraRelations::default())
                    .expect("correct despite relaxation")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
