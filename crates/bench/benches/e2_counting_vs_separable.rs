//! E2 — Section 4's worked example on Example 1.1: query `buys(tom, Y)?`
//! where `friend` and `idol` are the same chain. Generalized Counting's
//! `count` relation is Θ(2ⁿ) (the paper notes a 30-tuple database can
//! generate gigabytes); Separable stays O(n). Depths are capped at 16.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepra_bench::{run_counting, run_hn, run_separable};
use sepra_gen::paper::counting_worst_buys;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_counting_vs_separable");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let inst = counting_worst_buys(n);
        group.bench_with_input(BenchmarkId::new("separable", n), &inst, |b, inst| {
            b.iter(|| run_separable(inst).expect("separable run"));
        });
        group.bench_with_input(BenchmarkId::new("counting", n), &inst, |b, inst| {
            b.iter(|| run_counting(inst).expect("counting run"));
        });
        group.bench_with_input(BenchmarkId::new("hn", n), &inst, |b, inst| {
            b.iter(|| run_hn(inst).expect("hn run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
