//! E3 — Lemma 4.2: on the `S_p^k` witness (a₁ = chain, t0 = full k-ary
//! relation), Generalized Magic Sets constructs Ω(nᵏ) tuples while
//! Separable constructs O(n^{max(w, k-w)}) = O(n^{k-1}) (w = 1 here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepra_bench::{run_magic, run_separable};
use sepra_gen::paper::spk_magic_witness;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_magic_nk");
    group.sample_size(10);
    // (k, p, n) triples keeping t0 = n^k modest.
    for (k, p, n) in [(1usize, 2usize, 200usize), (2, 2, 60), (3, 2, 16), (2, 4, 60)] {
        let inst = spk_magic_witness(k, p, n);
        let label = format!("k{k}_p{p}_n{n}");
        group.bench_with_input(BenchmarkId::new("separable", &label), &inst, |b, inst| {
            b.iter(|| run_separable(inst).expect("separable run"));
        });
        group.bench_with_input(BenchmarkId::new("magic", &label), &inst, |b, inst| {
            b.iter(|| run_magic(inst).expect("magic run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
