//! E15 — WAL-shipping replication: read scaling and catch-up.
//!
//! Two measurements against real in-process servers (the same
//! `sepra_server::server::run` loop the binary uses, on loopback TCP):
//!
//! * `read_throughput` — one durable primary with 1, 2, or 3 attached
//!   `--replica-of` replicas, all caught up; four client threads fire a
//!   fixed batch of selection queries round-robin across the replicas.
//!   The cell records the median wall-clock for the batch and the
//!   derived aggregate queries/sec. On a single-core runner the curve is
//!   flat by construction — `available_parallelism` is recorded so the
//!   numbers read honestly.
//! * `catch_up` — the primary commits a WAL backlog of B records with no
//!   replica attached (checkpoints disabled, so the log alone carries
//!   the lineage), then a fresh replica starts and one
//!   `min_generation = <primary generation>` query times how long the
//!   replica takes to stream, apply, and serve the full backlog.
//!
//! Like E12–E14 the harness is hand-rolled: `--bench` prints medians and
//! writes `BENCH_replication.json` at the repository root; `--smoke`
//! runs a reduced matrix (parity and convergence asserted, generous
//! absolute deadlines) and exits non-zero on any failure; with no flag a
//! tiny silent pass runs for `cargo test`.

use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sepra_engine::QueryProcessor;
use sepra_server::server::{run, ServeOptions};
use sepra_server::{Durability, DurabilityOptions};
use sepra_wal::FsyncPolicy;

const SAMPLES: usize = 5;
const SMOKE_SAMPLES: usize = 2;

/// The chain fixture: a selection query over the closure answers in one
/// separable pass, so per-query evaluation stays cheap and the timing is
/// dominated by the serving path, not the fixpoint.
const PROGRAM: &str = "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n";

/// Seed chain length for the throughput fixture (m0 -> m1 -> ... -> m64).
const CHAIN: usize = 64;

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sepra_e15_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    dir
}

/// A server running on its own thread; dropped via `stop`.
struct Node {
    addr: String,
    shutdown: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Node {
    fn stop(self) {
        self.shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        self.handle.join().expect("server thread joins");
    }
}

/// Starts an in-process server: a durable primary when `data_dir` is
/// given, a replica when `replica_of` is given, ephemeral otherwise.
fn spawn_node(program: &str, data_dir: Option<&std::path::Path>, replica_of: Option<&str>) -> Node {
    let mut qp = QueryProcessor::new();
    qp.load(program).expect("fixture loads");
    let opts = ServeOptions {
        // At least as many workers as the bench's client threads, so
        // measured latency is the serving path, not connection
        // time-slicing across a smaller worker pool.
        threads: 4,
        durability: data_dir.map(|dir| DurabilityOptions {
            data_dir: dir.to_path_buf(),
            // Fsync cost is the durability bench's subject, not this
            // one's: `never` keeps backlog setup fast without touching
            // the shipping path being measured. Checkpoints stay off so
            // the WAL alone carries the whole lineage — `catch_up`
            // measures tail replay, not snapshot transfer.
            fsync: FsyncPolicy::Never,
            checkpoint_every: 0,
            checkpoint_format: Default::default(),
        }),
        replica_of: replica_of.map(String::from),
        ..ServeOptions::default()
    };
    let durability = opts
        .durability
        .as_ref()
        .map(|d| Durability::recover(&mut qp, d).expect("durability recovers"));
    qp.prepare().expect("fixture prepares");
    let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().expect("local addr").to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let thread_shutdown = Arc::clone(&shutdown);
    let handle = std::thread::spawn(move || {
        run(listener, qp, &opts, thread_shutdown, durability).expect("server runs");
    });
    Node { addr, shutdown, handle }
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        // Request/response ping-pong with small frames: without nodelay,
        // Nagle + delayed ACK puts a flat ~40 ms on every request and
        // the bench measures the kernel's timer, not the server.
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clones"));
        Conn { stream, reader }
    }

    fn request(&mut self, body: &str) -> String {
        let mut framed = String::with_capacity(body.len() + 1);
        framed.push_str(body);
        framed.push('\n');
        self.stream.write_all(framed.as_bytes()).expect("writes");
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("reads");
        assert!(n > 0, "server closed the connection after {body:?}");
        line
    }
}

/// Pulls `"generation":N` out of a compact response line.
fn generation_of(line: &str) -> u64 {
    let rest = line.split("\"generation\":").nth(1).unwrap_or_else(|| {
        panic!("response has no generation stamp: {line}");
    });
    rest.bytes().take_while(u8::is_ascii_digit).fold(0u64, |acc, b| acc * 10 + u64::from(b - b'0'))
}

/// Commits `count` disconnected edges (no closure growth beyond one
/// derived tuple each) and returns the last acknowledged generation.
fn commit_edges(conn: &mut Conn, count: usize) -> u64 {
    let mut last = 0;
    for i in 0..count {
        let line = conn.request(&format!(r#"{{"insert": ["e(x{i}, y{i})."]}}"#));
        assert!(line.contains("\"inserted\":1"), "backlog insert {i}: {line}");
        last = generation_of(&line);
    }
    last
}

/// Blocks until `addr` has applied `generation`, with a generous bound.
/// Returns the wall-clock wait — the catch-up measurement.
fn await_catch_up(addr: &str, generation: u64) -> Duration {
    let mut conn = Conn::open(addr);
    let start = Instant::now();
    let line = conn.request(&format!(
        r#"{{"query": "t(m0, Y)?", "min_generation": {generation}, "timeout_ms": 120000}}"#
    ));
    let elapsed = start.elapsed();
    assert!(
        line.contains("\"answers\"") && generation_of(&line) >= generation,
        "replica failed to catch up to {generation}: {line}"
    );
    elapsed
}

/// Commits the m0 -> m1 -> ... -> m{CHAIN} chain as live mutations, so
/// every edge a replica serves really traveled the sync stream. Returns
/// the last acknowledged generation.
fn commit_chain(conn: &mut Conn) -> u64 {
    let mut last = 0;
    for i in 0..CHAIN {
        let line = conn.request(&format!(r#"{{"insert": ["e(m{i}, m{})."]}}"#, i + 1));
        assert!(line.contains("\"inserted\":1"), "chain insert {i}: {line}");
        last = generation_of(&line);
    }
    last
}

/// One throughput run: `queries` selections spread over four client
/// threads, each pinned round-robin to one replica. Returns total wall
/// clock; answers are length-checked so a stale replica fails loudly.
fn throughput_run(replicas: &[String], queries: usize) -> Duration {
    const CLIENTS: usize = 4;
    let per_client = queries / CLIENTS;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let addr = &replicas[c % replicas.len()];
            scope.spawn(move || {
                let mut conn = Conn::open(addr);
                for _ in 0..per_client {
                    let line = conn.request(r#"{"query": "t(m0, Y)?"}"#);
                    assert!(
                        line.matches("\"m").count() >= CHAIN,
                        "short answer from {addr}: {line}"
                    );
                    black_box(&line);
                }
            });
        }
    });
    start.elapsed()
}

struct Cell {
    workload: String,
    param: (&'static str, u64),
    median_ns: u64,
    queries_per_sec: Option<u64>,
}

/// Read throughput at 1..=max_replicas attached replicas.
fn measure_throughput(max_replicas: usize, queries: usize, samples: usize) -> Vec<Cell> {
    let dir = fresh_dir("throughput");
    let primary = spawn_node(PROGRAM, Some(&dir), None);
    let mut replicas: Vec<Node> = Vec::new();
    let mut cells = Vec::new();
    // The chain is committed as mutations, so it reaches every replica
    // over the sync stream — a stale replica fails the per-query answer
    // length check inside `throughput_run`.
    let primary_generation = {
        let mut conn = Conn::open(&primary.addr);
        commit_chain(&mut conn)
    };
    for k in 1..=max_replicas {
        replicas.push(spawn_node(PROGRAM, None, Some(&primary.addr)));
        let addrs: Vec<String> = replicas.iter().map(|r| r.addr.clone()).collect();
        for addr in &addrs {
            await_catch_up(addr, primary_generation);
        }
        let mut timed: Vec<Duration> =
            (0..samples).map(|_| throughput_run(&addrs, queries)).collect();
        timed.sort_unstable();
        let median = timed[timed.len() / 2];
        let qps = (queries as f64 / median.as_secs_f64()) as u64;
        cells.push(Cell {
            workload: "read_throughput".to_string(),
            param: ("replicas", k as u64),
            median_ns: median.as_nanos() as u64,
            queries_per_sec: Some(qps),
        });
    }
    for replica in replicas {
        replica.stop();
    }
    primary.stop();
    let _ = std::fs::remove_dir_all(&dir);
    cells
}

/// Catch-up wall clock for each WAL backlog size: commit the backlog
/// with nothing attached, then start a replica per sample and time its
/// convergence from a cold start.
fn measure_catch_up(backlogs: &[usize], samples: usize) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &backlog in backlogs {
        let dir = fresh_dir(&format!("catchup_{backlog}"));
        let primary = spawn_node(PROGRAM, Some(&dir), None);
        let generation = {
            let mut conn = Conn::open(&primary.addr);
            commit_edges(&mut conn, backlog)
        };
        let mut timed: Vec<Duration> = (0..samples)
            .map(|_| {
                let replica = spawn_node(PROGRAM, None, Some(&primary.addr));
                let elapsed = await_catch_up(&replica.addr, generation);
                replica.stop();
                elapsed
            })
            .collect();
        timed.sort_unstable();
        cells.push(Cell {
            workload: "catch_up".to_string(),
            param: ("backlog_records", backlog as u64),
            median_ns: timed[timed.len() / 2].as_nanos() as u64,
            queries_per_sec: None,
        });
        primary.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
    cells
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let measure = args.iter().any(|a| a == "--bench");
    let smoke = args.iter().any(|a| a == "--smoke");

    if !measure && !smoke {
        // Silent smoke for `cargo test`: one replica, one tiny batch,
        // one small backlog — every assertion still armed.
        black_box(measure_throughput(1, 16, 1));
        black_box(measure_catch_up(&[16], 1));
        return std::process::ExitCode::SUCCESS;
    }

    let (max_replicas, queries, backlogs, samples): (usize, usize, Vec<usize>, usize) = if smoke {
        (2, 100, vec![32, 128], SMOKE_SAMPLES)
    } else {
        (3, 400, vec![64, 256, 1024], SAMPLES)
    };

    let mut cells = measure_throughput(max_replicas, queries, samples);
    cells.extend(measure_catch_up(&backlogs, samples));

    for c in &cells {
        match c.queries_per_sec {
            Some(qps) => println!(
                "e15_replication/{:<16} {}={:<6} median {:>12} ns  ({} queries/s aggregate)",
                c.workload, c.param.0, c.param.1, c.median_ns, qps
            ),
            None => println!(
                "e15_replication/{:<16} {}={:<6} median {:>12} ns",
                c.workload, c.param.0, c.param.1, c.median_ns
            ),
        }
    }

    if smoke {
        // Every cell above already asserted parity and convergence;
        // reaching this point is the smoke gate. The reduced-matrix
        // numbers are not representative, so no artifact is written.
        println!("\nsmoke ok: replicas converged and served at parity");
        return std::process::ExitCode::SUCCESS;
    }

    {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let mut json = String::from("{\n  \"experiment\": \"e15_replication\",\n");
        json.push_str(&format!(
            "  \"samples\": {SAMPLES},\n  \"available_parallelism\": {cores},\n  \"results\": [\n"
        ));
        for (i, c) in cells.iter().enumerate() {
            json.push_str(&format!(
                "    {{ \"workload\": \"{}\", \"{}\": {}, \"median_ns\": {}",
                c.workload, c.param.0, c.param.1, c.median_ns
            ));
            if let Some(qps) = c.queries_per_sec {
                json.push_str(&format!(", \"queries_per_sec\": {qps}"));
            }
            json.push_str(if i + 1 == cells.len() { " }\n" } else { " },\n" });
        }
        json.push_str("  ]\n}\n");
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replication.json");
        std::fs::write(path, &json).expect("write BENCH_replication.json");
        println!("\nwrote {path}");
    }

    std::process::ExitCode::SUCCESS
}
