//! `paper-tables` — regenerates every comparison in Section 4 of
//! "Compiling Separable Recursions" and prints the rows recorded in
//! EXPERIMENTS.md.
//!
//! Usage: `cargo run -p sepra-bench --bin paper-tables --release [--quick]`

use std::time::Instant;

use sepra_ast::{parse_program, Interner};
use sepra_bench::{
    print_table, run_counting, run_hn, run_magic, run_seminaive, run_separable, Measurement,
};
use sepra_core::detect::detect_in_program;
use sepra_gen::paper::{
    counting_worst_buys, magic_worst_buys, spk_counting_witness, spk_magic_witness, Instance,
};
use sepra_gen::programs::wide_program;

fn fmt_measurement(m: &Measurement) -> Vec<String> {
    vec![
        m.algo.to_string(),
        m.max_relation.to_string(),
        m.total_relation.to_string(),
        m.answers.to_string(),
        format!("{:.3?}", m.elapsed),
    ]
}

fn header() -> Vec<&'static str> {
    vec!["n (params)", "algorithm", "max relation", "total relations", "answers", "time"]
}

fn push_rows(rows: &mut Vec<Vec<String>>, label: &str, ms: &[Measurement]) {
    for m in ms {
        let mut row = vec![label.to_string()];
        row.extend(fmt_measurement(m));
        rows.push(row);
    }
}

fn e1(quick: bool) {
    let ns: &[usize] = if quick { &[25, 50] } else { &[25, 50, 100, 200, 400] };
    let mut rows = Vec::new();
    for &n in ns {
        let inst = magic_worst_buys(n);
        let sep = run_separable(&inst).expect("separable");
        let magic = run_magic(&inst).expect("magic");
        assert_eq!(sep.answers, magic.answers, "E1 n={n}: answer mismatch");
        push_rows(&mut rows, &n.to_string(), &[sep, magic]);
    }
    print_table("E1 — Example 1.2, buys(tom, Y)?: Magic Ω(n²) vs Separable O(n)", &header(), &rows);
}

fn e2(quick: bool) {
    let ns: &[usize] = if quick { &[8, 12] } else { &[8, 12, 16, 20] };
    let mut rows = Vec::new();
    for &n in ns {
        let inst = counting_worst_buys(n);
        let sep = run_separable(&inst).expect("separable");
        let counting = run_counting(&inst).expect("counting");
        let hn = run_hn(&inst).expect("hn");
        assert_eq!(sep.answers, counting.answers, "E2 n={n}: answer mismatch");
        assert_eq!(sep.answers, hn.answers, "E2 n={n}: hn answer mismatch");
        push_rows(&mut rows, &n.to_string(), &[sep, counting, hn]);
    }
    print_table(
        "E2 — Example 1.1, buys(tom, Y)?: Counting and Henschen-Naqvi Ω(2ⁿ) vs Separable O(n)",
        &header(),
        &rows,
    );
}

fn e3(quick: bool) {
    let shapes: &[(usize, usize, usize)] = if quick {
        &[(1, 2, 100), (2, 2, 30)]
    } else {
        &[(1, 2, 200), (2, 2, 30), (2, 2, 60), (2, 2, 120), (3, 2, 16), (2, 4, 60)]
    };
    let mut rows = Vec::new();
    for &(k, p, n) in shapes {
        let inst = spk_magic_witness(k, p, n);
        let sep = run_separable(&inst).expect("separable");
        let magic = run_magic(&inst).expect("magic");
        assert_eq!(sep.answers, magic.answers, "E3 k={k} p={p} n={n}: answer mismatch");
        push_rows(&mut rows, &format!("k={k} p={p} n={n}"), &[sep, magic]);
    }
    print_table(
        "E3 — Lemma 4.2 witness in S_p^k: Magic Ω(nᵏ) vs Separable O(n^max(w,k-w))",
        &header(),
        &rows,
    );
}

fn e4(quick: bool) {
    let shapes: &[(usize, usize)] =
        if quick { &[(1, 12), (2, 12)] } else { &[(1, 14), (2, 14), (3, 10), (4, 8)] };
    let mut rows = Vec::new();
    for &(p, n) in shapes {
        let inst = spk_counting_witness(2, p, n);
        let sep = run_separable(&inst).expect("separable");
        let counting = run_counting(&inst).expect("counting");
        assert_eq!(sep.answers, counting.answers, "E4 p={p} n={n}: answer mismatch");
        push_rows(&mut rows, &format!("p={p} n={n}"), &[sep, counting]);
    }
    print_table(
        "E4 — Lemma 4.3 witness in S_p^k: Counting Ω(pⁿ) vs Separable O(n)",
        &header(),
        &rows,
    );
}

fn e5(quick: bool) {
    // Validate Lemma 4.1's bound: max relation <= n^max(w, k-w) (+ slack
    // for the seed constants).
    let shapes: &[(usize, usize)] =
        if quick { &[(1, 100), (2, 30)] } else { &[(1, 400), (2, 60), (3, 16)] };
    let mut rows = Vec::new();
    for &(k, n) in shapes {
        let inst = spk_magic_witness(k, 2, n);
        let sep = run_separable(&inst).expect("separable");
        let w = 1usize;
        let bound = (n as u128).pow(w.max(k - w) as u32);
        let ok = (sep.max_relation as u128) <= bound + 1;
        rows.push(vec![
            format!("k={k} n={n}"),
            sep.max_relation.to_string(),
            format!("n^max(w,k-w) = {bound}"),
            if ok { "within bound".into() } else { "VIOLATED".into() },
            format!("{:.3?}", sep.elapsed),
        ]);
        assert!(ok, "Lemma 4.1 bound violated for k={k} n={n}");
    }
    print_table(
        "E5 — Lemma 4.1: Separable's largest constructed relation vs the bound",
        &["shape", "max relation", "bound", "verdict", "time"],
        &rows,
    );
}

fn e6(quick: bool) {
    use sepra_gen::graphs::{add_layered_dag, add_random_digraph};
    use sepra_gen::programs::{buys_one_class, buys_two_class, transitive_closure};
    use sepra_storage::Database;

    let mut workloads: Vec<(String, Instance)> = Vec::new();
    let sizes: &[usize] = if quick { &[100] } else { &[100, 400, 800] };
    for &n in sizes {
        let mut db = Database::new();
        add_random_digraph(&mut db, "e", "v", n, n * 3, 1);
        workloads.push((
            format!("tc_random_{n}"),
            Instance { program: transitive_closure().into(), query: "t(v0, Y)?".into(), db },
        ));
        let mut db = Database::new();
        add_random_digraph(&mut db, "friend", "p", n, n * 2, 2);
        add_random_digraph(&mut db, "idol", "p", n, n, 3);
        for i in 0..(n / 4).max(1) {
            db.insert_named("perfectFor", &[&format!("p{i}"), &format!("prod{i}")]).expect("fact");
        }
        workloads.push((
            format!("buys_social_{n}"),
            Instance { program: buys_one_class().into(), query: "buys(p0, Y)?".into(), db },
        ));
        let mut db = Database::new();
        add_layered_dag(&mut db, "friend", "s", 4, n / 4, 2, 4);
        for i in 0..(n / 4).max(1) {
            db.insert_named("perfectFor", &[&format!("sl3n{i}"), &format!("prod{i}")])
                .expect("fact");
            db.insert_named("cheaper", &[&format!("prod{}", i + 1), &format!("prod{i}")])
                .expect("fact");
        }
        workloads.push((
            format!("buys_catalog_{n}"),
            Instance { program: buys_two_class().into(), query: "buys(sl0n0, Y)?".into(), db },
        ));
    }
    let mut rows = Vec::new();
    for (name, inst) in &workloads {
        let sep = run_separable(inst).expect("separable");
        let magic = run_magic(inst).expect("magic");
        let semi = run_seminaive(inst).expect("seminaive");
        assert_eq!(sep.answers, magic.answers, "E6 {name}: separable vs magic");
        assert_eq!(sep.answers, semi.answers, "E6 {name}: separable vs seminaive");
        push_rows(&mut rows, name, &[sep, magic, semi]);
    }
    print_table(
        "E6 — average case on representative recursions (random digraphs / layered DAGs)",
        &header(),
        &rows,
    );
}

fn e7() {
    let mut rows = Vec::new();
    for (r, k, l) in [(2usize, 2usize, 1usize), (8, 2, 2), (8, 8, 4), (32, 4, 4), (32, 8, 8)] {
        let src = wide_program(r, k, l);
        let mut interner = Interner::new();
        let program = parse_program(&src, &mut interner).expect("parses");
        let t = interner.intern("t");
        // Warm up + measure the median of several runs.
        let runs = 50;
        let mut times = Vec::with_capacity(runs);
        for _ in 0..runs {
            let mut i = interner.clone();
            let start = Instant::now();
            let sep = detect_in_program(&program, t, &mut i).expect("separable");
            times.push(start.elapsed());
            assert_eq!(sep.recursive_rules.len(), r);
        }
        times.sort();
        rows.push(vec![
            format!("r={r} k={k} l={l}"),
            format!("{:.3?}", times[runs / 2]),
            format!("{} rule atoms total", r * (l + 1)),
        ]);
    }
    print_table(
        "E7 — Section 3.1: detection cost (median of 50 runs; database-independent)",
        &["program shape", "detect time", "size"],
        &rows,
    );
}

fn e8(quick: bool) {
    use sepra_ast::parse_query;
    use sepra_core::evaluate::SeparableEvaluator;
    use sepra_core::exec::{ExecOptions, ExtraRelations};

    // (a) Partial selection via Lemma 2.1 vs Magic.
    let mut rows = Vec::new();
    let ns: &[usize] = if quick { &[20] } else { &[20, 60, 120] };
    for &n in ns {
        let inst = e8_instance(n);
        let sep = run_separable(&inst).expect("separable");
        let magic = run_magic(&inst).expect("magic");
        assert_eq!(sep.answers, magic.answers, "E8a n={n}");
        push_rows(&mut rows, &format!("ex2.4 n={n}"), &[sep, magic]);
    }
    print_table(
        "E8a — partial selection t(c, Y, Z)? on Example 2.4: Lemma 2.1 decomposition vs Magic",
        &header(),
        &rows,
    );

    // (b) Dedup ablation: acyclic timing + cyclic divergence.
    let mut rows = Vec::new();
    let inst = magic_worst_buys(if quick { 50 } else { 200 });
    for (label, dedup) in [("dedup on", true), ("dedup off", false)] {
        let mut db = inst.db.clone();
        let program = parse_program(&inst.program, db.interner_mut()).expect("parses");
        let query = parse_query(&inst.query, db.interner_mut()).expect("parses");
        let sep =
            detect_in_program(&program, query.atom.pred, db.interner_mut()).expect("separable");
        let evaluator = SeparableEvaluator::with_options(
            sep,
            ExecOptions { dedup, max_iterations: 100_000, ..ExecOptions::default() },
        );
        let start = Instant::now();
        let out = evaluator.evaluate(&query, &db, &ExtraRelations::default()).expect("acyclic");
        rows.push(vec![
            label.to_string(),
            out.stats.max_relation_size().to_string(),
            out.answers.len().to_string(),
            format!("{:.3?}", start.elapsed()),
        ]);
    }
    // Cyclic divergence demonstration.
    {
        let mut db = sepra_storage::Database::new();
        sepra_gen::graphs::add_cycle(&mut db, "friend", "p", 5);
        db.insert_named("perfectFor", &["p0", "w"]).expect("fact");
        let program =
            parse_program(sepra_gen::programs::buys_one_class(), db.interner_mut()).expect("p");
        let query = parse_query("buys(p0, Y)?", db.interner_mut()).expect("q");
        let sep =
            detect_in_program(&program, query.atom.pred, db.interner_mut()).expect("separable");
        let evaluator = SeparableEvaluator::with_options(
            sep,
            ExecOptions { dedup: false, max_iterations: 1000, ..ExecOptions::default() },
        );
        let verdict = match evaluator.evaluate(&query, &db, &ExtraRelations::default()) {
            Err(e) => format!("diverges as predicted ({e})"),
            Ok(_) => "UNEXPECTEDLY TERMINATED".to_string(),
        };
        rows.push(vec!["dedup off, cyclic data".into(), "-".into(), "-".into(), verdict]);
    }
    print_table(
        "E8b — the `carry - seen` difference (Lemma 3.4's termination argument)",
        &["variant", "max relation", "answers", "time / verdict"],
        &rows,
    );

    // (c) Index ablation.
    let mut rows = Vec::new();
    let inst = magic_worst_buys(if quick { 100 } else { 400 });
    for (label, use_indexes) in [("indexes on", true), ("indexes off", false)] {
        let mut db = inst.db.clone();
        let program = parse_program(&inst.program, db.interner_mut()).expect("parses");
        let query = parse_query(&inst.query, db.interner_mut()).expect("parses");
        let sep =
            detect_in_program(&program, query.atom.pred, db.interner_mut()).expect("separable");
        let evaluator = SeparableEvaluator::with_options(
            sep,
            ExecOptions { use_indexes, ..ExecOptions::default() },
        );
        let start = Instant::now();
        let out = evaluator.evaluate(&query, &db, &ExtraRelations::default()).expect("runs");
        rows.push(vec![
            label.to_string(),
            out.answers.len().to_string(),
            format!("{:.3?}", start.elapsed()),
        ]);
    }
    print_table(
        "E8c — hash indexes vs filtered full scans",
        &["variant", "answers", "time"],
        &rows,
    );
}

fn e8_instance(n: usize) -> Instance {
    use sepra_gen::graphs::add_chain;
    use sepra_storage::Database;
    let mut db = Database::new();
    for i in 0..n {
        db.insert_named(
            "a",
            &[&format!("c{i}"), &format!("d{i}"), &format!("c{}", i + 1), &format!("d{}", i + 1)],
        )
        .expect("fact");
    }
    for i in 0..=n {
        db.insert_named("t0", &[&format!("c{i}"), &format!("d{i}"), "w0"]).expect("fact");
    }
    add_chain(&mut db, "b", "w", n);
    Instance {
        program: "t(X, Y, Z) :- a(X, Y, U, V), t(U, V, Z).\n\
                  t(X, Y, Z) :- t(X, Y, W), b(W, Z).\n\
                  t(X, Y, Z) :- t0(X, Y, Z).\n"
            .to_string(),
        query: "t(c0, Y, Z)?".to_string(),
        db,
    }
}

/// E9 — Section 5: relaxing Condition 4 keeps the algorithm correct but
/// loses the focusing effect of the selection constant (the disconnected
/// `b` subgoal is scanned in full).
fn e9(quick: bool) {
    use sepra_ast::parse_query;
    use sepra_core::detect::{detect_with_options, DetectOptions};
    use sepra_core::evaluate::SeparableEvaluator;
    use sepra_core::exec::ExtraRelations;
    use sepra_gen::graphs::add_chain;
    use sepra_storage::Database;

    let mut rows = Vec::new();
    let ns: &[usize] = if quick { &[50] } else { &[50, 200, 800] };
    for &n in ns {
        // t(X, Y) :- a(X, W), t(W, Z), b(Z, Y): removing t disconnects a
        // from b (the paper's Section 5 example). Only a short prefix of
        // `a` is reachable from the query constant, but all of `b` is
        // examined.
        let mut db = Database::new();
        add_chain(&mut db, "a", "x", 4);
        add_chain(&mut db, "b", "y", n);
        db.insert_named("t0", &["x1", "y1"]).expect("fact");
        let program_src = "t(X, Y) :- a(X, W), t(W, Z), b(Z, Y).\n\
                           t(X, Y) :- t0(X, Y).\n";
        let program = parse_program(program_src, db.interner_mut()).expect("parses");
        let query = parse_query("t(x0, Y)?", db.interner_mut()).expect("parses");
        let def = sepra_ast::RecursiveDef::extract(&program, query.atom.pred, db.interner())
            .expect("shape ok");
        let sep = detect_with_options(
            &def,
            db.interner_mut(),
            DetectOptions { allow_disconnected_bodies: true },
        )
        .expect("accepted with relaxation");
        let evaluator = SeparableEvaluator::new(sep);
        let start = Instant::now();
        let out =
            evaluator.evaluate(&query, &db, &ExtraRelations::default()).expect("still correct");
        // Cross-check against semi-naive.
        let derived = sepra_eval::seminaive(&program, &db).expect("seminaive");
        let expected = sepra_eval::query_answers(&query, &db, Some(&derived)).expect("answers");
        assert_eq!(out.answers, expected, "E9 n={n}");
        let seeds = match out.strategy {
            sepra_core::evaluate::StrategyNote::Decomposed { distinct_seeds, .. } => distinct_seeds,
            _ => 0,
        };
        rows.push(vec![
            format!("|b| = {n}"),
            seeds.to_string(),
            out.stats.insert_attempts.to_string(),
            out.answers.len().to_string(),
            format!("{:.3?}", start.elapsed()),
        ]);
    }
    print_table(
        "E9 — Section 5: Condition 4 relaxed — correct but unfocused \
         (the whole of b is enumerated as carry_1 seeds, tracking |b| \
         rather than the reachable fraction)",
        &["database", "carry_1 seeds", "insert attempts", "answers", "time"],
        &rows,
    );
}

/// E10 — basic vs supplementary Magic Sets on multi-atom rule bodies:
/// the supplementary rewrite scans fewer rows by materializing shared
/// prefixes as `sup` relations.
fn e10(quick: bool) {
    use sepra_ast::parse_query;
    use sepra_gen::graphs::add_chain;
    use sepra_rewrite::{magic_evaluate, magic_evaluate_supplementary};
    use sepra_storage::Database;

    let mut rows = Vec::new();
    let ns: &[usize] = if quick { &[120] } else { &[120, 480, 960] };
    for &n in ns {
        let mut db = Database::new();
        add_chain(&mut db, "hop", "n", n);
        db.insert_named("goal", &[&format!("n{n}"), "finish"]).expect("fact");
        db.insert_named("goal", &[&format!("n{}", n / 2), "half"]).expect("fact");
        let program = parse_program(
            "reach(X, Y) :- hop(X, A), hop(A, B), hop(B, W), reach(W, Y).\n\
             reach(X, Y) :- goal(X, Y).\n",
            db.interner_mut(),
        )
        .expect("parses");
        let query = parse_query("reach(n0, Y)?", db.interner_mut()).expect("parses");
        let start = Instant::now();
        let basic = magic_evaluate(&program, &query, &db).expect("basic");
        let basic_time = start.elapsed();
        let start = Instant::now();
        let sup = magic_evaluate_supplementary(&program, &query, &db).expect("sup");
        let sup_time = start.elapsed();
        assert_eq!(basic.answers.len(), sup.answers.len(), "E10 n={n}");
        rows.push(vec![
            format!("n={n}"),
            "basic".into(),
            basic.stats.rows_scanned.to_string(),
            basic.stats.max_relation_size().to_string(),
            format!("{basic_time:.3?}"),
        ]);
        rows.push(vec![
            format!("n={n}"),
            "supplementary".into(),
            sup.stats.rows_scanned.to_string(),
            sup.stats.max_relation_size().to_string(),
            format!("{sup_time:.3?}"),
        ]);
    }
    print_table(
        "E10 — basic vs supplementary Magic Sets (3-atom rule prefixes)",
        &["n", "variant", "rows scanned", "max relation", "time"],
        &rows,
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("# Section 4 reproduction — Compiling Separable Recursions (Naughton, 1988)");
    println!(
        "\nCost metric: the size of the relations each algorithm constructs \
         (Definition 4.2). Shapes to check: who wins, by what growth rate, \
         not absolute times."
    );
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "\nEnvironment: {cores} CPU core{} available; parallel fixpoint stages \
         default to that worker count.",
        if cores == 1 { "" } else { "s" }
    );
    e1(quick);
    e2(quick);
    e3(quick);
    e4(quick);
    e5(quick);
    e6(quick);
    e7();
    e8(quick);
    e9(quick);
    e10(quick);
    println!("\nAll cross-algorithm answer checks passed.");
}
