//! Shared measurement harness for the Section 4 reproduction.
//!
//! Every experiment runs one or more algorithms on a generated
//! [`Instance`] and records the paper's cost
//! metric — the peak size of every relation the algorithm constructs
//! (Definition 4.2) — next to wall-clock time and the answer count. The
//! Criterion benches in `benches/` time the same runs; the `paper-tables`
//! binary prints the tables recorded in `EXPERIMENTS.md`.

use std::time::{Duration, Instant};

use sepra_ast::{parse_program, parse_query};
use sepra_core::detect::{detect_in_program, SeparableRecursion};
use sepra_core::evaluate::SeparableEvaluator;
use sepra_core::exec::{ExecOptions, ExtraRelations};
use sepra_eval::{query_answers, seminaive, EvalError};
use sepra_gen::paper::Instance;
use sepra_rewrite::{counting_evaluate, hn_evaluate, magic_evaluate, CountingOptions, HnOptions};
use sepra_storage::{Database, EvalStats};

/// One algorithm's measurements on one instance.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Algorithm label.
    pub algo: &'static str,
    /// Peak size of the largest relation constructed (the paper's
    /// headline number).
    pub max_relation: usize,
    /// Sum of the peak sizes of all constructed relations.
    pub total_relation: usize,
    /// Number of answers.
    pub answers: usize,
    /// Wall-clock evaluation time.
    pub elapsed: Duration,
    /// Full statistics, for detailed tables.
    pub stats: EvalStats,
}

fn measurement(
    algo: &'static str,
    stats: EvalStats,
    answers: usize,
    elapsed: Duration,
) -> Measurement {
    Measurement {
        algo,
        max_relation: stats.max_relation_size(),
        total_relation: stats.total_relation_size(),
        answers,
        elapsed,
        stats,
    }
}

fn prepared(inst: &Instance) -> (Database, sepra_ast::Program, sepra_ast::Query) {
    let mut db = inst.db.clone();
    let program = parse_program(&inst.program, db.interner_mut()).expect("instance program parses");
    let query = parse_query(&inst.query, db.interner_mut()).expect("instance query parses");
    (db, program, query)
}

/// Detects the instance's recursion (panics if not separable — instances
/// are separable by construction).
pub fn detect_instance(
    inst: &Instance,
) -> (Database, sepra_ast::Program, sepra_ast::Query, SeparableRecursion) {
    let (mut db, program, query) = prepared(inst);
    let sep = detect_in_program(&program, query.atom.pred, db.interner_mut())
        .expect("instance recursion is separable");
    (db, program, query, sep)
}

/// Runs the paper's Separable algorithm.
pub fn run_separable(inst: &Instance) -> Result<Measurement, EvalError> {
    let (db, _program, query, sep) = detect_instance(inst);
    let evaluator = SeparableEvaluator::with_options(sep, ExecOptions::default());
    let start = Instant::now();
    let out = evaluator.evaluate(&query, &db, &ExtraRelations::default())?;
    let elapsed = start.elapsed();
    Ok(measurement("separable", out.stats, out.answers.len(), elapsed))
}

/// Runs Generalized Magic Sets.
pub fn run_magic(inst: &Instance) -> Result<Measurement, EvalError> {
    let (db, program, query) = prepared(inst);
    let start = Instant::now();
    let out = magic_evaluate(&program, &query, &db)?;
    let elapsed = start.elapsed();
    Ok(measurement("magic", out.stats, out.answers.len(), elapsed))
}

/// Runs the Generalized Counting Method.
pub fn run_counting(inst: &Instance) -> Result<Measurement, EvalError> {
    let (db, _program, query, sep) = detect_instance(inst);
    let start = Instant::now();
    let out = counting_evaluate(&sep, &query, &db, &CountingOptions::default())?;
    let elapsed = start.elapsed();
    Ok(measurement("counting", out.stats, out.answers.len(), elapsed))
}

/// Runs the Henschen-Naqvi iterative algorithm.
pub fn run_hn(inst: &Instance) -> Result<Measurement, EvalError> {
    let (db, _program, query, sep) = detect_instance(inst);
    let start = Instant::now();
    let out = hn_evaluate(&sep, &query, &db, &HnOptions::default())?;
    let elapsed = start.elapsed();
    Ok(measurement("hn", out.stats, out.answers.len(), elapsed))
}

/// Runs plain stratified semi-naive evaluation (no selection pushing).
pub fn run_seminaive(inst: &Instance) -> Result<Measurement, EvalError> {
    let (db, program, query) = prepared(inst);
    let start = Instant::now();
    let derived = seminaive(&program, &db)?;
    let answers = query_answers(&query, &db, Some(&derived))?;
    let elapsed = start.elapsed();
    Ok(measurement("seminaive", derived.stats, answers.len(), elapsed))
}

/// Formats a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Prints a table with a header, separator, and rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("{}", row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", row(&header.iter().map(|_| "---".to_string()).collect::<Vec<_>>()));
    for r in rows {
        println!("{}", row(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_gen::paper::{counting_worst_buys, magic_worst_buys, spk_magic_witness};

    #[test]
    fn e1_shape_holds_at_small_n() {
        // Magic Ω(n²) vs Separable O(n) on the Example 1.2 witness.
        let inst = magic_worst_buys(20);
        let sep = run_separable(&inst).unwrap();
        let magic = run_magic(&inst).unwrap();
        assert_eq!(sep.answers, magic.answers, "answer sets must agree in size");
        assert!(sep.max_relation <= 21, "separable stays O(n): {}", sep.max_relation);
        assert!(magic.max_relation >= 20 * 20, "magic is Ω(n²): {}", magic.max_relation);
    }

    #[test]
    fn e2_shape_holds_at_small_n() {
        // Counting Ω(2^n) vs Separable O(n) on the Example 1.1 witness.
        let inst = counting_worst_buys(8);
        let sep = run_separable(&inst).unwrap();
        let counting = run_counting(&inst).unwrap();
        assert_eq!(sep.answers, counting.answers);
        assert!(sep.max_relation <= 9);
        assert!(
            counting.stats.relation_sizes["count"] >= (1 << 9) - 1,
            "count relation is Ω(2^n): {}",
            counting.stats.relation_sizes["count"]
        );
    }

    #[test]
    fn e3_shape_holds_at_small_n() {
        // Magic Ω(n^k) vs Separable O(n^{k-1}) on the Lemma 4.2 witness.
        let inst = spk_magic_witness(2, 2, 10);
        let sep = run_separable(&inst).unwrap();
        let magic = run_magic(&inst).unwrap();
        assert_eq!(sep.answers, magic.answers);
        assert!(magic.max_relation >= 100, "magic Ω(n^2): {}", magic.max_relation);
        assert!(sep.max_relation <= 20, "separable O(n): {}", sep.max_relation);
    }
}
