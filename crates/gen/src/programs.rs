//! Program-text builders.

use std::fmt::Write as _;

/// Example 1.1: `buys` with two recursive rules in one equivalence class
/// (column 0) and a persistent column 1.
pub fn buys_one_class() -> &'static str {
    "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
     buys(X, Y) :- idol(X, W), buys(W, Y).\n\
     buys(X, Y) :- perfectFor(X, Y).\n"
}

/// Example 1.2: `buys` with two equivalence classes (columns 0 and 1).
pub fn buys_two_class() -> &'static str {
    "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
     buys(X, Y) :- buys(X, W), cheaper(Y, W).\n\
     buys(X, Y) :- perfectFor(X, Y).\n"
}

/// Left-linear transitive closure over `e`.
pub fn transitive_closure() -> &'static str {
    "t(X, Y) :- e(X, W), t(W, Y).\n\
     t(X, Y) :- e(X, Y).\n"
}

/// The same-generation program — NOT separable (condition 4 fails); used to
/// exercise the Magic Sets fallback.
pub fn same_generation() -> &'static str {
    "sg(X, Y) :- flat(X, Y).\n\
     sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n"
}

/// A member of `S_p^k` (Definition 4.1): `p` recursive rules of the form
/// `t(X1, ..., Xk) :- a_i(X1, W), t(W, X2, ..., Xk)` plus the exit rule
/// `t(X1, ..., Xk) :- t0(X1, ..., Xk)` — the recursion used by Lemmas 4.2
/// and 4.3.
pub fn spk_program(k: usize, p: usize) -> String {
    assert!(k >= 1 && p >= 1);
    let head_vars: Vec<String> = (1..=k).map(|i| format!("X{i}")).collect();
    let head = head_vars.join(", ");
    let tail = if k > 1 { format!(", {}", head_vars[1..].join(", ")) } else { String::new() };
    let mut out = String::new();
    for i in 1..=p {
        let _ = writeln!(out, "t({head}) :- a{i}(X1, W), t(W{tail}).");
    }
    let _ = writeln!(out, "t({head}) :- t0({head}).");
    out
}

/// A wide separable recursion for the detection-cost benchmark (E7):
/// `r` rules, recursive predicate of arity `k`, each rule body a chain of
/// `l` distinct base predicates connecting column 1 of the head to column 1
/// of the recursive instance.
pub fn wide_program(r: usize, k: usize, l: usize) -> String {
    assert!(r >= 1 && k >= 1 && l >= 1);
    let head_vars: Vec<String> = (1..=k).map(|i| format!("X{i}")).collect();
    let head = head_vars.join(", ");
    let tail = if k > 1 { format!(", {}", head_vars[1..].join(", ")) } else { String::new() };
    let mut out = String::new();
    for i in 1..=r {
        let mut body = String::new();
        let mut prev = "X1".to_string();
        for j in 1..=l {
            let next = if j == l { "W".to_string() } else { format!("V{j}") };
            let _ = write!(body, "u{i}_{j}({prev}, {next}), ");
            prev = next;
        }
        let _ = writeln!(out, "t({head}) :- {body}t(W{tail}).");
    }
    let _ = writeln!(out, "t({head}) :- t0({head}).");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::{parse_program, Interner};

    #[test]
    fn spk_parses_for_various_shapes() {
        let mut i = Interner::new();
        for k in 1..=4 {
            for p in 1..=3 {
                let src = spk_program(k, p);
                let prog = parse_program(&src, &mut i).unwrap_or_else(|e| panic!("{src}: {e}"));
                assert_eq!(prog.rules.len(), p + 1);
            }
        }
    }

    #[test]
    fn wide_program_parses() {
        let mut i = Interner::new();
        let src = wide_program(5, 3, 4);
        let prog = parse_program(&src, &mut i).unwrap();
        assert_eq!(prog.rules.len(), 6);
        // Each recursive body: l base atoms + 1 recursive atom.
        assert_eq!(prog.rules[0].body.len(), 5);
    }

    #[test]
    fn fixture_programs_parse() {
        let mut i = Interner::new();
        for src in [buys_one_class(), buys_two_class(), transitive_closure(), same_generation()] {
            parse_program(src, &mut i).unwrap();
        }
    }
}
