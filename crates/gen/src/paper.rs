//! The Section 4 witness constructions.
//!
//! Each function builds exactly the database the paper uses to prove a
//! lower bound, and returns it together with the matching program source
//! and query text.

use sepra_storage::Database;

use crate::graphs::add_chain;
use crate::programs::{buys_one_class, buys_two_class, spk_program};

/// A generated experiment instance.
#[derive(Debug)]
pub struct Instance {
    /// Program source text.
    pub program: String,
    /// Query text.
    pub query: String,
    /// The extensional database.
    pub db: Database,
}

/// Section 4's Magic Sets worst case on Example 1.2:
/// `friend` = chain `tom = a0 -> a1 -> ... -> a{n}`,
/// `cheaper` = chain `(b_{j-1} cheaper than b_j)` for `j = 1..n`,
/// `perfectFor(a_n, b_n)`; query `buys(tom, Y)?`.
///
/// Magic Sets materializes the Θ(n²) tuples `buys(a_i, b_j)`; Separable
/// stays monadic (`O(n)`).
pub fn magic_worst_buys(n: usize) -> Instance {
    assert!(n >= 1);
    let mut db = Database::new();
    // a0 is tom.
    db.insert_named("friend", &["tom", "a1"]).expect("fact");
    for i in 1..n {
        db.insert_named("friend", &[&format!("a{i}"), &format!("a{}", i + 1)]).expect("fact");
    }
    for j in 1..n {
        db.insert_named("cheaper", &[&format!("b{j}"), &format!("b{}", j + 1)]).expect("fact");
    }
    db.insert_named("perfectFor", &[&format!("a{n}"), &format!("b{n}")]).expect("fact");
    Instance { program: buys_two_class().to_string(), query: "buys(tom, Y)?".to_string(), db }
}

/// Section 4's Counting worst case on Example 1.1: `friend` and `idol` both
/// the chain `tom = a0 -> ... -> a{n}`, `perfectFor(a_n, widget)`; query
/// `buys(tom, Y)?`.
///
/// Counting's `count` relation holds one tuple per rule sequence — Θ(2ⁿ);
/// Separable stays `O(n)`. Keep `n ≤ ~22`.
pub fn counting_worst_buys(n: usize) -> Instance {
    assert!(n >= 1);
    let mut db = Database::new();
    db.insert_named("friend", &["tom", "a1"]).expect("fact");
    db.insert_named("idol", &["tom", "a1"]).expect("fact");
    for i in 1..n {
        let from = format!("a{i}");
        let to = format!("a{}", i + 1);
        db.insert_named("friend", &[&from, &to]).expect("fact");
        db.insert_named("idol", &[&from, &to]).expect("fact");
    }
    db.insert_named("perfectFor", &[&format!("a{n}"), "widget"]).expect("fact");
    Instance { program: buys_one_class().to_string(), query: "buys(tom, Y)?".to_string(), db }
}

/// Lemma 4.2's witness in `S_p^k`: `a_1` is the chain `c1 -> ... -> cn`,
/// `a_i` is empty for `i > 1`, and `t0` is the full k-ary relation over
/// `{c1..cn}` (`n^k` tuples); query `t(c1, Y2, ..., Yk)?`.
///
/// Magic Sets re-derives all of `t0` into `t` (Θ(n^k)); Separable builds
/// relations of size `max(n, n^{k-1})`.
pub fn spk_magic_witness(k: usize, p: usize, n: usize) -> Instance {
    assert!(k >= 1 && p >= 1 && n >= 1);
    let mut db = Database::new();
    add_chain(&mut db, "a1", "c", n.saturating_sub(1));
    // Ensure a_i for i > 1 exist as empty relations by interning only; the
    // evaluators treat missing relations as empty, so nothing to insert.
    // t0 = all k-tuples over c0..c{n-1} (n^k tuples, decoded from a base-n
    // counter).
    let total = (n as u128).pow(u32::try_from(k).expect("small k"));
    assert!(total <= 50_000_000, "t0 would have {total} tuples; lower n or k");
    for mut code in 0..total {
        let mut names = Vec::with_capacity(k);
        for _ in 0..k {
            names.push(format!("c{}", code % n as u128));
            code /= n as u128;
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        db.insert_named("t0", &refs).expect("fact");
    }
    let free_vars: Vec<String> = (2..=k).map(|i| format!("Y{i}")).collect();
    let query =
        if k > 1 { format!("t(c0, {})?", free_vars.join(", ")) } else { "t(c0)?".to_string() };
    Instance { program: spk_program(k, p), query, db }
}

/// Lemma 4.3's witness in `S_p^k`: all `a_i` are the *same* chain
/// `c0 -> ... -> c{n-1}`; `t0` holds the single tuple `(c{n-1}, c0, ...,
/// c0)`; query `t(c0, Y2, ..., Yk)?`.
///
/// Counting's `count` relation reaches Θ(p^n); Separable is `O(n)`.
pub fn spk_counting_witness(k: usize, p: usize, n: usize) -> Instance {
    assert!(k >= 1 && p >= 1 && n >= 2);
    let mut db = Database::new();
    for i in 1..=p {
        add_chain(&mut db, &format!("a{i}"), "c", n - 1);
    }
    let mut t0: Vec<String> = vec![format!("c{}", n - 1)];
    t0.extend((1..k).map(|_| "c0".to_string()));
    let refs: Vec<&str> = t0.iter().map(String::as_str).collect();
    db.insert_named("t0", &refs).expect("fact");
    let free_vars: Vec<String> = (2..=k).map(|i| format!("Y{i}")).collect();
    let query =
        if k > 1 { format!("t(c0, {})?", free_vars.join(", ")) } else { "t(c0)?".to_string() };
    Instance { program: spk_program(k, p), query, db }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_worst_shapes() {
        let inst = magic_worst_buys(5);
        let mut db = inst.db;
        let friend = db.intern("friend");
        let cheaper = db.intern("cheaper");
        assert_eq!(db.relation(friend).unwrap().len(), 5);
        assert_eq!(db.relation(cheaper).unwrap().len(), 4);
    }

    #[test]
    fn counting_worst_shapes() {
        let inst = counting_worst_buys(4);
        let mut db = inst.db;
        let friend = db.intern("friend");
        let idol = db.intern("idol");
        assert_eq!(db.relation(friend).unwrap().len(), 4);
        assert_eq!(db.relation(idol).unwrap().len(), 4);
    }

    #[test]
    fn spk_magic_witness_t0_is_full() {
        let inst = spk_magic_witness(2, 2, 4);
        let mut db = inst.db;
        let t0 = db.intern("t0");
        assert_eq!(db.relation(t0).unwrap().len(), 16);
        assert_eq!(inst.query, "t(c0, Y2)?");
    }

    #[test]
    fn spk_magic_witness_k1() {
        let inst = spk_magic_witness(1, 1, 3);
        let mut db = inst.db;
        let t0 = db.intern("t0");
        assert_eq!(db.relation(t0).unwrap().len(), 3);
        assert_eq!(inst.query, "t(c0)?");
    }

    #[test]
    fn spk_counting_witness_shapes() {
        let inst = spk_counting_witness(2, 3, 5);
        let mut db = inst.db;
        for i in 1..=3 {
            let a = db.intern(&format!("a{i}"));
            assert_eq!(db.relation(a).unwrap().len(), 4);
        }
        let t0 = db.intern("t0");
        assert_eq!(db.relation(t0).unwrap().len(), 1);
    }
}
