//! Synthetic EDB relations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sepra_storage::Database;

/// Interns `prefix{i}` and returns its name.
fn node(prefix: &str, i: usize) -> String {
    format!("{prefix}{i}")
}

/// Adds the chain `pred(prefix0, prefix1), ..., pred(prefix{n-1}, prefix{n})`
/// — `n` edges over `n+1` nodes.
pub fn add_chain(db: &mut Database, pred: &str, prefix: &str, n: usize) {
    for i in 0..n {
        db.insert_named(pred, &[&node(prefix, i), &node(prefix, i + 1)])
            .expect("generated fact is valid");
    }
}

/// Adds a cycle of `n` nodes (`n >= 1`): edges `i -> (i+1) mod n`.
pub fn add_cycle(db: &mut Database, pred: &str, prefix: &str, n: usize) {
    for i in 0..n {
        db.insert_named(pred, &[&node(prefix, i), &node(prefix, (i + 1) % n)])
            .expect("generated fact is valid");
    }
}

/// Adds a complete `branching`-ary tree of the given `depth`, edges pointing
/// from parent to child. Node 0 is the root. Returns the number of nodes.
pub fn add_tree(
    db: &mut Database,
    pred: &str,
    prefix: &str,
    branching: usize,
    depth: usize,
) -> usize {
    assert!(branching >= 1);
    let mut next = 1usize;
    let mut frontier = vec![0usize];
    for _ in 0..depth {
        let mut new_frontier = Vec::with_capacity(frontier.len() * branching);
        for &parent in &frontier {
            for _ in 0..branching {
                let child = next;
                next += 1;
                db.insert_named(pred, &[&node(prefix, parent), &node(prefix, child)])
                    .expect("generated fact is valid");
                new_frontier.push(child);
            }
        }
        frontier = new_frontier;
    }
    next
}

/// Adds a layered DAG: `layers` layers of `width` nodes each, with every
/// node connected to `fanout` random nodes of the next layer (seeded).
pub fn add_layered_dag(
    db: &mut Database,
    pred: &str,
    prefix: &str,
    layers: usize,
    width: usize,
    fanout: usize,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    for layer in 0..layers.saturating_sub(1) {
        for i in 0..width {
            for _ in 0..fanout {
                let j = rng.gen_range(0..width);
                let from = format!("{prefix}l{layer}n{i}");
                let to = format!("{prefix}l{}n{j}", layer + 1);
                db.insert_named(pred, &[&from, &to]).expect("generated fact is valid");
            }
        }
    }
}

/// Adds a seeded random digraph over `n` nodes with `m` edge draws
/// (duplicates collapse, so the edge count may be slightly below `m`).
pub fn add_random_digraph(
    db: &mut Database,
    pred: &str,
    prefix: &str,
    n: usize,
    m: usize,
    seed: u64,
) {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        db.insert_named(pred, &[&node(prefix, a), &node(prefix, b)])
            .expect("generated fact is valid");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_n_edges() {
        let mut db = Database::new();
        add_chain(&mut db, "e", "v", 10);
        let e = db.intern("e");
        assert_eq!(db.relation(e).unwrap().len(), 10);
        assert_eq!(db.distinct_constant_count(), 11);
    }

    #[test]
    fn cycle_wraps() {
        let mut db = Database::new();
        add_cycle(&mut db, "e", "v", 5);
        let e = db.intern("e");
        assert_eq!(db.relation(e).unwrap().len(), 5);
        assert_eq!(db.distinct_constant_count(), 5);
    }

    #[test]
    fn tree_node_count() {
        let mut db = Database::new();
        let nodes = add_tree(&mut db, "e", "v", 2, 3);
        assert_eq!(nodes, 1 + 2 + 4 + 8);
        let e = db.intern("e");
        assert_eq!(db.relation(e).unwrap().len(), 14);
    }

    #[test]
    fn random_digraph_is_deterministic_per_seed() {
        let mut db1 = Database::new();
        add_random_digraph(&mut db1, "e", "v", 20, 50, 7);
        let mut db2 = Database::new();
        add_random_digraph(&mut db2, "e", "v", 20, 50, 7);
        let e1 = db1.intern("e");
        let e2 = db2.intern("e");
        assert_eq!(db1.relation(e1).unwrap().len(), db2.relation(e2).unwrap().len());
    }

    #[test]
    fn layered_dag_has_expected_shape() {
        let mut db = Database::new();
        add_layered_dag(&mut db, "e", "g", 3, 4, 2, 1);
        let e = db.intern("e");
        // At most 2 layers * 4 nodes * 2 fanout edges.
        assert!(db.relation(e).unwrap().len() <= 16);
        assert!(!db.relation(e).unwrap().is_empty());
    }
}
