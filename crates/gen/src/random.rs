//! Seeded random separable programs and databases for property-based
//! cross-validation.
//!
//! The generator draws a recursion that is separable *by construction*:
//! it partitions a random subset of the columns into equivalence classes,
//! then emits 1–3 rules per class whose nonrecursive body is a connected
//! chain through that class's columns. Databases are random digraphs /
//! k-ary relations over a small constant pool, so fixpoints stay tiny and
//! cyclic data is common (exercising termination).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sepra_storage::Database;

/// A generated random scenario: program text, query text, database.
#[derive(Debug)]
pub struct RandomScenario {
    /// Program source.
    pub program: String,
    /// Query source (binds at least one argument).
    pub query: String,
    /// The database.
    pub db: Database,
    /// Arity of the recursive predicate.
    pub arity: usize,
}

/// Generates a random separable scenario from `seed`.
pub fn random_separable_scenario(seed: u64) -> RandomScenario {
    random_scenario_inner(seed, false)
}

/// Like [`random_separable_scenario`], but the base relations are
/// *acyclic* (every tuple strictly increases the constant index column by
/// column) and the query fully binds the first equivalence class — the
/// preconditions of the Counting and Henschen-Naqvi baselines.
pub fn random_acyclic_full_selection_scenario(seed: u64) -> RandomScenario {
    random_scenario_inner(seed, true)
}

/// Generates a random *general linear* scenario: like
/// [`random_separable_scenario`], but with probability ~1/2 the recursive
/// atom's arguments are randomly permuted, introducing shifting variables
/// (violating Condition 1) while keeping the program valid, safe Datalog.
/// Used to cross-validate the general algorithms beyond the separable
/// class.
pub fn random_linear_scenario(seed: u64) -> RandomScenario {
    use rand::seq::SliceRandom;
    let mut scenario = random_scenario_inner(seed, false);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    if rng.gen_bool(0.5) {
        // Permute the recursive atom's argument order in every recursive
        // rule, textually: t(A, B, C) -> t(<permuted>). The generator
        // always emits the recursive atom as the final body literal
        // `t(...).` on its own line ending.
        let mut perm: Vec<usize> = (0..scenario.arity).collect();
        perm.shuffle(&mut rng);
        let mut out = String::new();
        for line in scenario.program.lines() {
            if let Some(idx) = line.rfind(" t(") {
                let (head, tail) = line.split_at(idx + 3);
                let args_end = tail.find(')').expect("recursive atom closes");
                let args: Vec<&str> = tail[..args_end].split(", ").collect();
                if args.len() == scenario.arity {
                    let permuted: Vec<&str> = perm.iter().map(|&i| args[i]).collect();
                    out.push_str(head);
                    out.push_str(&permuted.join(", "));
                    out.push_str(&tail[args_end..]);
                    out.push('\n');
                    continue;
                }
            }
            out.push_str(line);
            out.push('\n');
        }
        scenario.program = out;
    }
    scenario
}

fn random_scenario_inner(seed: u64, acyclic: bool) -> RandomScenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let arity = rng.gen_range(2..=3usize);
    // Partition columns: each column joins class 0, class 1, or persistent.
    let n_classes = rng.gen_range(1..=2usize).min(arity);
    let mut class_cols: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for col in 0..arity {
        let choice = rng.gen_range(0..=n_classes); // == n_classes => persistent
        if choice < n_classes {
            class_cols[choice].push(col);
        }
    }
    // Every class needs at least one column; put leftovers in class 0.
    if class_cols.iter().any(Vec::is_empty) {
        class_cols = vec![(0..arity.min(1 + arity / 2)).collect()];
    }

    let head_vars: Vec<String> = (0..arity).map(|i| format!("X{i}")).collect();
    let mut program = String::new();
    let mut base_preds: Vec<(String, usize)> = Vec::new();
    for (ci, cols) in class_cols.iter().enumerate() {
        let n_rules = rng.gen_range(1..=2usize);
        for ri in 0..n_rules {
            // Body: chain of 1..=2 base atoms carrying the class columns
            // from head vars to body vars.
            let chain_len = rng.gen_range(1..=2usize);
            let mut body = String::new();
            let mut current: Vec<String> = cols.iter().map(|&c| head_vars[c].clone()).collect();
            for step in 0..chain_len {
                let next: Vec<String> = if step + 1 == chain_len {
                    cols.iter().map(|&c| format!("W{c}")).collect()
                } else {
                    cols.iter().map(|&c| format!("V{ci}_{ri}_{step}_{c}")).collect()
                };
                let pred = format!("b{ci}_{ri}_{step}");
                base_preds.push((pred.clone(), cols.len() * 2));
                body.push_str(&format!("{pred}({}, {}), ", current.join(", "), next.join(", ")));
                current = next;
            }
            // Recursive atom: class columns replaced by body vars.
            let rec_args: Vec<String> = (0..arity)
                .map(|c| if cols.contains(&c) { format!("W{c}") } else { head_vars[c].clone() })
                .collect();
            program.push_str(&format!(
                "t({}) :- {}t({}).\n",
                head_vars.join(", "),
                body,
                rec_args.join(", ")
            ));
        }
    }
    program.push_str(&format!("t({}) :- t0({}).\n", head_vars.join(", "), head_vars.join(", ")));

    // Database: small constant pool, random tuples. In acyclic mode every
    // base tuple's second half strictly dominates its first half in the
    // constant ordering, so class descents cannot revisit a vector.
    let mut db = Database::new();
    let pool = if acyclic { rng.gen_range(5..=8usize) } else { rng.gen_range(3..=6usize) };
    let constant = |i: usize| format!("k{i}");
    for (pred, pred_arity) in &base_preds {
        let tuples = rng.gen_range(2..=8usize);
        for _ in 0..tuples {
            let names: Vec<String> = if acyclic {
                let half = pred_arity / 2;
                let mut v = Vec::with_capacity(*pred_arity);
                for _ in 0..half {
                    v.push(rng.gen_range(0..pool - 1));
                }
                for i in 0..half {
                    v.push(rng.gen_range(v[i] + 1..pool));
                }
                v.into_iter().map(constant).collect()
            } else {
                (0..*pred_arity).map(|_| constant(rng.gen_range(0..pool))).collect()
            };
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            db.insert_named(pred, &refs).expect("fact");
        }
    }
    for _ in 0..rng.gen_range(1..=6usize) {
        let names: Vec<String> = (0..arity).map(|_| constant(rng.gen_range(0..pool))).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        db.insert_named("t0", &refs).expect("fact");
    }

    // Query: in acyclic mode, fully bind the first class (the baselines'
    // precondition); otherwise bind a random nonempty subset of columns.
    let mut terms: Vec<String> = (0..arity).map(|i| format!("Q{i}")).collect();
    if acyclic {
        for &col in &class_cols[0] {
            terms[col] = constant(rng.gen_range(0..pool));
        }
    } else {
        let n_bound = rng.gen_range(1..=arity);
        for _ in 0..n_bound {
            let col = rng.gen_range(0..arity);
            terms[col] = constant(rng.gen_range(0..pool));
        }
    }
    if terms.iter().all(|t| t.starts_with('Q')) {
        terms[0] = constant(0);
    }
    let query = format!("t({})?", terms.join(", "));

    RandomScenario { program, query, db, arity }
}

/// A generated random *stratified* scenario: a program (facts inline) that
/// uses negation and/or aggregates but stratifies by construction, the
/// queries worth asking of it, and a short mutation script over its EDB.
///
/// Unlike [`RandomScenario`] there is no separate [`Database`]: the facts
/// ride in the program text and the mutation steps are fact strings, which
/// is the shape `QueryProcessor::load` / `apply_mutation` consume.
#[derive(Debug)]
pub struct StratifiedScenario {
    /// Program source, facts included.
    pub program: String,
    /// One query per derived predicate of interest.
    pub queries: Vec<String>,
    /// Mutation steps: `(inserts, retracts)`, retracts always name facts
    /// live at that point in the script.
    pub steps: Vec<(Vec<String>, Vec<String>)>,
}

/// Generates a random stratified scenario from `seed`.
///
/// The skeleton is fixed — a transitive closure `t` over random edges in
/// the bottom stratum — and the upper strata are drawn from four families:
/// set-difference negation over `t`, a `count` of reachable nodes, a
/// `min`-aggregate shortest path (direct self-recursion, the sanctioned
/// case), and a negation stacked on a derived predicate (three strata).
/// At least one family is always present; cyclic edge data is common, so
/// the aggregate fixpoints exercise termination, not just correctness.
pub fn random_stratified_scenario(seed: u64) -> StratifiedScenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57a7a);
    let pool = rng.gen_range(4..=6usize);
    let node = |i: usize| format!("n{i}");

    let mut program = String::new();
    let mut queries = Vec::new();

    // Upper-stratum families; force at least one on.
    let mut use_neg = rng.gen_bool(0.5);
    let use_count = rng.gen_bool(0.5);
    let use_min = rng.gen_bool(0.5);
    let use_stacked = rng.gen_bool(0.35);
    if !(use_neg || use_count || use_min || use_stacked) {
        use_neg = true;
    }

    // Stratum 0: transitive closure over `e`.
    program.push_str("t(X, Y) :- e(X, Y).\n");
    program.push_str("t(X, Y) :- e(X, Z), t(Z, Y).\n");
    if use_neg {
        program.push_str("unreach(X, Y) :- node(X), node(Y), !t(X, Y).\n");
        queries.push("unreach(X, Y)?".to_string());
    }
    if use_count {
        program.push_str("reach(X, count<Y>) :- t(X, Y).\n");
        queries.push("reach(X, C)?".to_string());
    }
    if use_min {
        program.push_str("short(Y, min<C>) :- src(X), w(X, Y, C).\n");
        program.push_str("short(Y, min<C>) :- short(X, D), w(X, Y, W), C = D + W.\n");
        queries.push("short(Y, C)?".to_string());
    }
    if use_stacked {
        program.push_str("haspath(X) :- t(X, Y).\n");
        program.push_str("isolated(X) :- node(X), !haspath(X).\n");
        queries.push("isolated(X)?".to_string());
    }
    queries.push("t(X, Y)?".to_string());

    // Facts. `live` tracks what the mutation script may retract.
    let mut live: Vec<String> = Vec::new();
    let emit = |live: &mut Vec<String>, fact: String| {
        if !live.contains(&fact) {
            live.push(fact);
        }
    };
    for i in 0..pool {
        emit(&mut live, format!("node({}).", node(i)));
    }
    emit(&mut live, format!("src({}).", node(0)));
    for _ in 0..rng.gen_range(4..=9usize) {
        let (a, b) = (rng.gen_range(0..pool), rng.gen_range(0..pool));
        emit(&mut live, format!("e({}, {}).", node(a), node(b)));
    }
    for _ in 0..rng.gen_range(4..=9usize) {
        let (a, b) = (rng.gen_range(0..pool), rng.gen_range(0..pool));
        let c = rng.gen_range(1..=9usize);
        emit(&mut live, format!("w({}, {}, {c}).", node(a), node(b)));
    }
    for fact in &live {
        program.push_str(fact);
        program.push('\n');
    }

    // Mutation script: 4 steps of churn on the EDB. Retractions always
    // target live facts (node/src retractions included — negation must
    // shrink its domain correctly, and min must re-derive after losing a
    // weighted edge).
    let mut steps = Vec::new();
    for _ in 0..4 {
        let mut inserts = Vec::new();
        for _ in 0..rng.gen_range(0..=2usize) {
            let (a, b) = (rng.gen_range(0..pool), rng.gen_range(0..pool));
            let fact = if rng.gen_bool(0.5) {
                format!("e({}, {}).", node(a), node(b))
            } else {
                format!("w({}, {}, {}).", node(a), node(b), rng.gen_range(1..=9usize))
            };
            if !live.contains(&fact) {
                live.push(fact.clone());
                inserts.push(fact);
            }
        }
        let mut retracts = Vec::new();
        if rng.gen_bool(0.7) && !live.is_empty() {
            let idx = rng.gen_range(0..live.len());
            retracts.push(live.swap_remove(idx));
        }
        steps.push((inserts, retracts));
    }

    StratifiedScenario { program, queries, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::parse_program;

    #[test]
    fn scenarios_parse_and_have_selections() {
        for seed in 0..50 {
            let mut scenario = random_separable_scenario(seed);
            let program = parse_program(&scenario.program, scenario.db.interner_mut())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", scenario.program));
            assert!(program.rules.len() >= 2, "seed {seed}");
            let query =
                sepra_ast::parse_query(&scenario.query, scenario.db.interner_mut()).unwrap();
            assert!(query.has_selection(), "seed {seed}: {}", scenario.query);
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = random_separable_scenario(42);
        let b = random_separable_scenario(42);
        assert_eq!(a.program, b.program);
        assert_eq!(a.query, b.query);
    }

    #[test]
    fn stratified_scenarios_parse_stratify_and_retract_live_facts() {
        for seed in 0..60 {
            let scenario = random_stratified_scenario(seed);
            let mut interner = sepra_ast::Interner::new();
            let program = parse_program(&scenario.program, &mut interner)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", scenario.program));
            assert!(
                program.uses_stratified_constructs(),
                "seed {seed}: no stratified construct\n{}",
                scenario.program
            );
            sepra_strata::stratify(&program)
                .unwrap_or_else(|e| panic!("seed {seed}: unstratifiable: {e:?}"));
            assert!(!scenario.queries.is_empty(), "seed {seed}");
            assert_eq!(scenario.steps.len(), 4, "seed {seed}");
            // Every retraction names a fact inserted earlier (program text
            // or a prior step) and not already retracted.
            let mut live: Vec<&str> =
                scenario.program.lines().filter(|l| !l.contains(":-")).collect();
            for (inserts, retracts) in &scenario.steps {
                live.extend(inserts.iter().map(String::as_str));
                for r in retracts {
                    let pos = live
                        .iter()
                        .position(|f| f == r)
                        .unwrap_or_else(|| panic!("seed {seed}: retracting dead fact {r}"));
                    live.swap_remove(pos);
                }
            }
        }
    }

    #[test]
    fn stratified_scenarios_are_deterministic() {
        let a = random_stratified_scenario(7);
        let b = random_stratified_scenario(7);
        assert_eq!(a.program, b.program);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.steps, b.steps);
    }
}
