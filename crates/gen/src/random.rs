//! Seeded random separable programs and databases for property-based
//! cross-validation.
//!
//! The generator draws a recursion that is separable *by construction*:
//! it partitions a random subset of the columns into equivalence classes,
//! then emits 1–3 rules per class whose nonrecursive body is a connected
//! chain through that class's columns. Databases are random digraphs /
//! k-ary relations over a small constant pool, so fixpoints stay tiny and
//! cyclic data is common (exercising termination).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sepra_storage::Database;

/// A generated random scenario: program text, query text, database.
#[derive(Debug)]
pub struct RandomScenario {
    /// Program source.
    pub program: String,
    /// Query source (binds at least one argument).
    pub query: String,
    /// The database.
    pub db: Database,
    /// Arity of the recursive predicate.
    pub arity: usize,
}

/// Generates a random separable scenario from `seed`.
pub fn random_separable_scenario(seed: u64) -> RandomScenario {
    random_scenario_inner(seed, false)
}

/// Like [`random_separable_scenario`], but the base relations are
/// *acyclic* (every tuple strictly increases the constant index column by
/// column) and the query fully binds the first equivalence class — the
/// preconditions of the Counting and Henschen-Naqvi baselines.
pub fn random_acyclic_full_selection_scenario(seed: u64) -> RandomScenario {
    random_scenario_inner(seed, true)
}

/// Generates a random *general linear* scenario: like
/// [`random_separable_scenario`], but with probability ~1/2 the recursive
/// atom's arguments are randomly permuted, introducing shifting variables
/// (violating Condition 1) while keeping the program valid, safe Datalog.
/// Used to cross-validate the general algorithms beyond the separable
/// class.
pub fn random_linear_scenario(seed: u64) -> RandomScenario {
    use rand::seq::SliceRandom;
    let mut scenario = random_scenario_inner(seed, false);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    if rng.gen_bool(0.5) {
        // Permute the recursive atom's argument order in every recursive
        // rule, textually: t(A, B, C) -> t(<permuted>). The generator
        // always emits the recursive atom as the final body literal
        // `t(...).` on its own line ending.
        let mut perm: Vec<usize> = (0..scenario.arity).collect();
        perm.shuffle(&mut rng);
        let mut out = String::new();
        for line in scenario.program.lines() {
            if let Some(idx) = line.rfind(" t(") {
                let (head, tail) = line.split_at(idx + 3);
                let args_end = tail.find(')').expect("recursive atom closes");
                let args: Vec<&str> = tail[..args_end].split(", ").collect();
                if args.len() == scenario.arity {
                    let permuted: Vec<&str> = perm.iter().map(|&i| args[i]).collect();
                    out.push_str(head);
                    out.push_str(&permuted.join(", "));
                    out.push_str(&tail[args_end..]);
                    out.push('\n');
                    continue;
                }
            }
            out.push_str(line);
            out.push('\n');
        }
        scenario.program = out;
    }
    scenario
}

fn random_scenario_inner(seed: u64, acyclic: bool) -> RandomScenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let arity = rng.gen_range(2..=3usize);
    // Partition columns: each column joins class 0, class 1, or persistent.
    let n_classes = rng.gen_range(1..=2usize).min(arity);
    let mut class_cols: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for col in 0..arity {
        let choice = rng.gen_range(0..=n_classes); // == n_classes => persistent
        if choice < n_classes {
            class_cols[choice].push(col);
        }
    }
    // Every class needs at least one column; put leftovers in class 0.
    if class_cols.iter().any(Vec::is_empty) {
        class_cols = vec![(0..arity.min(1 + arity / 2)).collect()];
    }

    let head_vars: Vec<String> = (0..arity).map(|i| format!("X{i}")).collect();
    let mut program = String::new();
    let mut base_preds: Vec<(String, usize)> = Vec::new();
    for (ci, cols) in class_cols.iter().enumerate() {
        let n_rules = rng.gen_range(1..=2usize);
        for ri in 0..n_rules {
            // Body: chain of 1..=2 base atoms carrying the class columns
            // from head vars to body vars.
            let chain_len = rng.gen_range(1..=2usize);
            let mut body = String::new();
            let mut current: Vec<String> = cols.iter().map(|&c| head_vars[c].clone()).collect();
            for step in 0..chain_len {
                let next: Vec<String> = if step + 1 == chain_len {
                    cols.iter().map(|&c| format!("W{c}")).collect()
                } else {
                    cols.iter().map(|&c| format!("V{ci}_{ri}_{step}_{c}")).collect()
                };
                let pred = format!("b{ci}_{ri}_{step}");
                base_preds.push((pred.clone(), cols.len() * 2));
                body.push_str(&format!("{pred}({}, {}), ", current.join(", "), next.join(", ")));
                current = next;
            }
            // Recursive atom: class columns replaced by body vars.
            let rec_args: Vec<String> = (0..arity)
                .map(|c| if cols.contains(&c) { format!("W{c}") } else { head_vars[c].clone() })
                .collect();
            program.push_str(&format!(
                "t({}) :- {}t({}).\n",
                head_vars.join(", "),
                body,
                rec_args.join(", ")
            ));
        }
    }
    program.push_str(&format!("t({}) :- t0({}).\n", head_vars.join(", "), head_vars.join(", ")));

    // Database: small constant pool, random tuples. In acyclic mode every
    // base tuple's second half strictly dominates its first half in the
    // constant ordering, so class descents cannot revisit a vector.
    let mut db = Database::new();
    let pool = if acyclic { rng.gen_range(5..=8usize) } else { rng.gen_range(3..=6usize) };
    let constant = |i: usize| format!("k{i}");
    for (pred, pred_arity) in &base_preds {
        let tuples = rng.gen_range(2..=8usize);
        for _ in 0..tuples {
            let names: Vec<String> = if acyclic {
                let half = pred_arity / 2;
                let mut v = Vec::with_capacity(*pred_arity);
                for _ in 0..half {
                    v.push(rng.gen_range(0..pool - 1));
                }
                for i in 0..half {
                    v.push(rng.gen_range(v[i] + 1..pool));
                }
                v.into_iter().map(constant).collect()
            } else {
                (0..*pred_arity).map(|_| constant(rng.gen_range(0..pool))).collect()
            };
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            db.insert_named(pred, &refs).expect("fact");
        }
    }
    for _ in 0..rng.gen_range(1..=6usize) {
        let names: Vec<String> = (0..arity).map(|_| constant(rng.gen_range(0..pool))).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        db.insert_named("t0", &refs).expect("fact");
    }

    // Query: in acyclic mode, fully bind the first class (the baselines'
    // precondition); otherwise bind a random nonempty subset of columns.
    let mut terms: Vec<String> = (0..arity).map(|i| format!("Q{i}")).collect();
    if acyclic {
        for &col in &class_cols[0] {
            terms[col] = constant(rng.gen_range(0..pool));
        }
    } else {
        let n_bound = rng.gen_range(1..=arity);
        for _ in 0..n_bound {
            let col = rng.gen_range(0..arity);
            terms[col] = constant(rng.gen_range(0..pool));
        }
    }
    if terms.iter().all(|t| t.starts_with('Q')) {
        terms[0] = constant(0);
    }
    let query = format!("t({})?", terms.join(", "));

    RandomScenario { program, query, db, arity }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::parse_program;

    #[test]
    fn scenarios_parse_and_have_selections() {
        for seed in 0..50 {
            let mut scenario = random_separable_scenario(seed);
            let program = parse_program(&scenario.program, scenario.db.interner_mut())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", scenario.program));
            assert!(program.rules.len() >= 2, "seed {seed}");
            let query =
                sepra_ast::parse_query(&scenario.query, scenario.db.interner_mut()).unwrap();
            assert!(query.has_selection(), "seed {seed}: {}", scenario.query);
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = random_separable_scenario(42);
        let b = random_separable_scenario(42);
        assert_eq!(a.program, b.program);
        assert_eq!(a.query, b.query);
    }
}
