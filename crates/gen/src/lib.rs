//! Workload generators for the separable-recursion engine.
//!
//! * [`graphs`] — synthetic EDB relations: chains, cycles, complete trees,
//!   layered DAGs, and seeded Erdős–Rényi random digraphs;
//! * [`programs`] — program-text builders for the recursions used across
//!   benchmarks and tests (the paper's Example 1.1 / 1.2 `buys` programs,
//!   transitive closure, the `S_p^k` family of Definition 4.1, and the
//!   synthetic wide programs used to benchmark detection cost);
//! * [`paper`] — the Section 4 witness constructions: the database on which
//!   Generalized Magic Sets is `Ω(n²)` for Example 1.2, the one on which
//!   Generalized Counting is `Ω(2ⁿ)` for Example 1.1, and the Lemma 4.2 /
//!   4.3 `S_p^k` witnesses;
//! * [`random`] — seeded random separable programs and databases for
//!   property-based cross-validation of the evaluators.

pub mod graphs;
pub mod paper;
pub mod programs;
pub mod random;
