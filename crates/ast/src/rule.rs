//! Rules and body literals.

use crate::atom::Atom;
use crate::symbol::Sym;
use crate::term::Term;

/// A body literal: a positive atom, a negated atom, an equality constraint,
/// or an arithmetic sum constraint.
///
/// Equality literals arise from rectification (Section 3.3 of the paper
/// assumes rectified rules; repeated head variables and head constants are
/// compiled away into body equalities) and may also be written directly in
/// source as `X = Y` or `X = tom`. Negated literals (`!p(X, Y)`) require the
/// program to be stratifiable; sum literals (`C = D + W`) bind their target
/// once both operands are bound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// A positive predicate instance.
    Atom(Atom),
    /// A negated predicate instance (`!p(X, Y)`): holds when no matching
    /// tuple exists in the (lower-stratum) relation.
    Neg(Atom),
    /// An equality constraint between two terms.
    Eq(Term, Term),
    /// An arithmetic constraint `Sum(dst, a, b)` written `dst = a + b`.
    Sum(Term, Term, Term),
}

impl Literal {
    /// The atom, if this literal is a *positive* atom.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Literal::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// The atom, if this literal is a *negated* atom.
    pub fn as_negated_atom(&self) -> Option<&Atom> {
        match self {
            Literal::Neg(a) => Some(a),
            _ => None,
        }
    }

    /// Distinct variables of this literal in first-occurrence order.
    pub fn vars(&self) -> Vec<Sym> {
        match self {
            Literal::Atom(a) | Literal::Neg(a) => a.vars(),
            Literal::Eq(l, r) => Self::term_vars(&[l, r]),
            Literal::Sum(d, a, b) => Self::term_vars(&[d, a, b]),
        }
    }

    fn term_vars(terms: &[&Term]) -> Vec<Sym> {
        let mut out = Vec::new();
        for t in terms {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// Whether `var` occurs in this literal.
    pub fn contains_var(&self, var: Sym) -> bool {
        match self {
            Literal::Atom(a) | Literal::Neg(a) => a.contains_var(var),
            Literal::Eq(l, r) => l.as_var() == Some(var) || r.as_var() == Some(var),
            Literal::Sum(d, a, b) => {
                d.as_var() == Some(var) || a.as_var() == Some(var) || b.as_var() == Some(var)
            }
        }
    }

    /// Applies a variable substitution.
    pub fn substitute(&self, subst: &impl Fn(Sym) -> Option<Term>) -> Literal {
        match self {
            Literal::Atom(a) => Literal::Atom(a.substitute(subst)),
            Literal::Neg(a) => Literal::Neg(a.substitute(subst)),
            Literal::Eq(l, r) => Literal::Eq(l.substitute(subst), r.substitute(subst)),
            Literal::Sum(d, a, b) => {
                Literal::Sum(d.substitute(subst), a.substitute(subst), b.substitute(subst))
            }
        }
    }
}

/// A monotonic aggregate function usable in a rule head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Minimum of the grouped values.
    Min,
    /// Maximum of the grouped values.
    Max,
    /// Count of distinct contributing tuples.
    Count,
    /// Sum over distinct contributing values.
    Sum,
}

impl AggFunc {
    /// The surface-syntax keyword (`min`, `max`, `count`, `sum`).
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
        }
    }

    /// Parses a surface keyword.
    pub fn from_keyword(kw: &str) -> Option<AggFunc> {
        match kw {
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            _ => None,
        }
    }

    /// Whether the function preserves least-fixpoint semantics inside
    /// recursion (Zaniolo et al.): improvements only shrink (min) or grow
    /// (max) one retained value per group, so iteration still converges.
    /// `count`/`sum` grow with every new contribution and are only allowed
    /// in non-recursive strata.
    pub fn monotonic_in_recursion(self) -> bool {
        matches!(self, AggFunc::Min | AggFunc::Max)
    }
}

/// An aggregate head annotation: `shortest(X, min<C>)` marks position
/// `pos = 1` of the head as aggregated with [`AggFunc::Min`] over group key
/// `X` (all other head positions). The head atom itself keeps a plain
/// variable at the aggregated position.
///
/// The span covers the `func<Var>` source text and is ignored by equality
/// and hashing, like atom spans.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Head argument position holding the aggregated value.
    pub pos: usize,
    /// Source span of the `func<Var>` annotation.
    pub span: crate::span::Span,
}

impl PartialEq for AggSpec {
    fn eq(&self, other: &Self) -> bool {
        self.func == other.func && self.pos == other.pos
    }
}

impl Eq for AggSpec {}

impl std::hash::Hash for AggSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.func.hash(state);
        self.pos.hash(state);
    }
}

impl AggSpec {
    /// Creates an aggregate spec (no source span).
    pub fn new(func: AggFunc, pos: usize) -> Self {
        AggSpec { func, pos, span: crate::span::Span::DUMMY }
    }
}

/// A Horn clause `head :- body.` (a fact when the body is empty).
///
/// The rule's source span covers the whole clause including the final `.`;
/// like atom spans it is ignored by equality and hashing.
#[derive(Debug, Clone)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body literals, in source order (the paper's algorithms evaluate
    /// bodies left to right).
    pub body: Vec<Literal>,
    /// Aggregate head annotation, if one head position is aggregated.
    pub agg: Option<AggSpec>,
    /// Source span of the whole clause ([`Span::DUMMY`](crate::span::Span)
    /// when synthesized).
    pub span: crate::span::Span,
}

impl PartialEq for Rule {
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head && self.body == other.body && self.agg == other.agg
    }
}

impl Eq for Rule {}

impl std::hash::Hash for Rule {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.head.hash(state);
        self.body.hash(state);
        self.agg.hash(state);
    }
}

impl Rule {
    /// Creates a rule (no source span).
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Rule { head, body, agg: None, span: crate::span::Span::DUMMY }
    }

    /// Creates a rule with a source span covering the whole clause.
    pub fn with_span(head: Atom, body: Vec<Literal>, span: crate::span::Span) -> Self {
        Rule { head, body, agg: None, span }
    }

    /// Creates a fact (a rule with an empty body).
    pub fn fact(head: Atom) -> Self {
        Rule { head, body: Vec::new(), agg: None, span: crate::span::Span::DUMMY }
    }

    /// Returns this rule with the given aggregate head annotation.
    pub fn with_agg(mut self, agg: AggSpec) -> Self {
        self.agg = Some(agg);
        self
    }

    /// The rule span, falling back to the head atom's span.
    pub fn span(&self) -> crate::span::Span {
        self.span.or(self.head.span)
    }

    /// Whether this rule is a fact.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Iterates over the *positive* body atoms (skipping negated atoms and
    /// equality/sum constraints).
    pub fn body_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(Literal::as_atom)
    }

    /// Iterates over the negated body atoms.
    pub fn negated_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(Literal::as_negated_atom)
    }

    /// Positions in `body` holding atoms whose predicate is `pred`.
    pub fn body_positions_of(&self, pred: Sym) -> Vec<usize> {
        self.body
            .iter()
            .enumerate()
            .filter_map(|(i, l)| match l {
                Literal::Atom(a) if a.pred == pred => Some(i),
                _ => None,
            })
            .collect()
    }

    /// Number of body atoms whose predicate is `pred`.
    pub fn count_pred(&self, pred: Sym) -> usize {
        self.body_atoms().filter(|a| a.pred == pred).count()
    }

    /// Whether this rule is recursive in `pred`: `pred` is the head predicate
    /// and occurs at least once in the body.
    pub fn is_recursive_in(&self, pred: Sym) -> bool {
        self.head.pred == pred && self.count_pred(pred) > 0
    }

    /// Whether this rule is *linear* recursive in `pred`: the head predicate
    /// occurs exactly once in the body (Section 2 of the paper).
    pub fn is_linear_recursive_in(&self, pred: Sym) -> bool {
        self.head.pred == pred && self.count_pred(pred) == 1
    }

    /// The single recursive body atom, if this rule is linear recursive.
    pub fn recursive_atom(&self, pred: Sym) -> Option<&Atom> {
        if !self.is_linear_recursive_in(pred) {
            return None;
        }
        self.body_atoms().find(|a| a.pred == pred)
    }

    /// The body atoms other than the (single) occurrence of `pred`.
    ///
    /// For linear rules this is the paper's `a_ij`, the conjunction of
    /// nonrecursive predicate instances.
    pub fn nonrecursive_atoms(&self, pred: Sym) -> Vec<&Atom> {
        self.body_atoms().filter(|a| a.pred != pred).collect()
    }

    /// Distinct variables of head and body, in first-occurrence order
    /// (head first).
    pub fn vars(&self) -> Vec<Sym> {
        let mut out = self.head.vars();
        for lit in &self.body {
            for v in lit.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Checks *safety*: every head variable must occur in some *positive*
    /// body literal (facts must be ground), and every variable of a negated
    /// atom must also occur positively — a negated literal filters bound
    /// rows, it never binds. Equality literals count as positive: `X = tom`
    /// grounds `X`; safety of chained equalities (and of sum constraints,
    /// which bind their target from bound operands) is validated more
    /// precisely by the evaluator's planner. A fact cannot carry an
    /// aggregate annotation.
    pub fn is_safe(&self) -> bool {
        if self.body.is_empty() {
            return self.head.is_ground() && self.agg.is_none();
        }
        let positive =
            |v: Sym| self.body.iter().any(|l| !matches!(l, Literal::Neg(_)) && l.contains_var(v));
        self.head.vars().into_iter().all(positive)
            && self.negated_atoms().all(|a| a.vars().into_iter().all(positive))
    }

    /// Applies a variable substitution to head and body, preserving spans
    /// and the aggregate annotation.
    pub fn substitute(&self, subst: &impl Fn(Sym) -> Option<Term>) -> Rule {
        Rule {
            head: self.head.substitute(subst),
            body: self.body.iter().map(|l| l.substitute(subst)).collect(),
            agg: self.agg.clone(),
            span: self.span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Interner;

    /// Builds `buys(X, Y) :- friend(X, W), buys(W, Y).`
    fn buys_rule(i: &mut Interner) -> (Rule, Sym) {
        let buys = i.intern("buys");
        let friend = i.intern("friend");
        let (x, y, w) = (i.intern("X"), i.intern("Y"), i.intern("W"));
        let rule = Rule::new(
            Atom::new(buys, vec![Term::Var(x), Term::Var(y)]),
            vec![
                Literal::Atom(Atom::new(friend, vec![Term::Var(x), Term::Var(w)])),
                Literal::Atom(Atom::new(buys, vec![Term::Var(w), Term::Var(y)])),
            ],
        );
        (rule, buys)
    }

    #[test]
    fn linear_recursion_detection() {
        let mut i = Interner::new();
        let (rule, buys) = buys_rule(&mut i);
        assert!(rule.is_recursive_in(buys));
        assert!(rule.is_linear_recursive_in(buys));
        let rec = rule.recursive_atom(buys).unwrap();
        assert_eq!(rec.pred, buys);
        assert_eq!(rule.nonrecursive_atoms(buys).len(), 1);
    }

    #[test]
    fn nonlinear_rule_is_not_linear() {
        let mut i = Interner::new();
        let p = i.intern("p");
        let (x, y, z) = (i.intern("X"), i.intern("Y"), i.intern("Z"));
        let rule = Rule::new(
            Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
            vec![
                Literal::Atom(Atom::new(p, vec![Term::Var(x), Term::Var(z)])),
                Literal::Atom(Atom::new(p, vec![Term::Var(z), Term::Var(y)])),
            ],
        );
        assert!(rule.is_recursive_in(p));
        assert!(!rule.is_linear_recursive_in(p));
        assert!(rule.recursive_atom(p).is_none());
    }

    #[test]
    fn safety() {
        let mut i = Interner::new();
        let (rule, _) = buys_rule(&mut i);
        assert!(rule.is_safe());
        let p = i.intern("p");
        let q = i.intern("q");
        let (x, y) = (i.intern("X"), i.intern("Y"));
        let unsafe_rule = Rule::new(
            Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
            vec![Literal::Atom(Atom::new(q, vec![Term::Var(x)]))],
        );
        assert!(!unsafe_rule.is_safe());
        let tom = i.intern("tom");
        let ground_fact = Rule::fact(Atom::new(p, vec![Term::sym(tom)]));
        assert!(ground_fact.is_safe());
        let open_fact = Rule::fact(Atom::new(p, vec![Term::Var(x)]));
        assert!(!open_fact.is_safe());
    }

    #[test]
    fn eq_literal_grounds_head_var() {
        let mut i = Interner::new();
        let p = i.intern("p");
        let q = i.intern("q");
        let (x, y) = (i.intern("X"), i.intern("Y"));
        let tom = i.intern("tom");
        let rule = Rule::new(
            Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
            vec![
                Literal::Atom(Atom::new(q, vec![Term::Var(x)])),
                Literal::Eq(Term::Var(y), Term::sym(tom)),
            ],
        );
        assert!(rule.is_safe());
        assert_eq!(rule.body_atoms().count(), 1);
    }

    #[test]
    fn vars_ordering() {
        let mut i = Interner::new();
        let (rule, _) = buys_rule(&mut i);
        let (x, y, w) = (i.intern("X"), i.intern("Y"), i.intern("W"));
        assert_eq!(rule.vars(), vec![x, y, w]);
    }

    #[test]
    fn negated_vars_must_occur_positively() {
        let mut i = Interner::new();
        let (p, q, r) = (i.intern("p"), i.intern("q"), i.intern("r"));
        let (x, y) = (i.intern("X"), i.intern("Y"));
        // p(X) :- q(X), !r(X).  — safe.
        let safe = Rule::new(
            Atom::new(p, vec![Term::Var(x)]),
            vec![
                Literal::Atom(Atom::new(q, vec![Term::Var(x)])),
                Literal::Neg(Atom::new(r, vec![Term::Var(x)])),
            ],
        );
        assert!(safe.is_safe());
        // p(X) :- q(X), !r(Y).  — Y occurs only under negation.
        let unsafe_neg = Rule::new(
            Atom::new(p, vec![Term::Var(x)]),
            vec![
                Literal::Atom(Atom::new(q, vec![Term::Var(x)])),
                Literal::Neg(Atom::new(r, vec![Term::Var(y)])),
            ],
        );
        assert!(!unsafe_neg.is_safe());
        // p(X) :- !r(X).  — head var bound only by a negated literal.
        let neg_only = Rule::new(
            Atom::new(p, vec![Term::Var(x)]),
            vec![Literal::Neg(Atom::new(r, vec![Term::Var(x)]))],
        );
        assert!(!neg_only.is_safe());
    }

    #[test]
    fn aggregate_spec_equality_ignores_span() {
        let mut spec = AggSpec::new(AggFunc::Min, 1);
        let other = AggSpec::new(AggFunc::Min, 1);
        spec.span = crate::span::Span::new(3, 9);
        assert_eq!(spec, other);
        assert_ne!(spec, AggSpec::new(AggFunc::Max, 1));
        assert_ne!(spec, AggSpec::new(AggFunc::Min, 0));
    }

    #[test]
    fn rule_equality_includes_aggregate() {
        let mut i = Interner::new();
        let (p, q) = (i.intern("p"), i.intern("q"));
        let (x, c) = (i.intern("X"), i.intern("C"));
        let mk = || {
            Rule::new(
                Atom::new(p, vec![Term::Var(x), Term::Var(c)]),
                vec![Literal::Atom(Atom::new(q, vec![Term::Var(x), Term::Var(c)]))],
            )
        };
        let plain = mk();
        let agg = mk().with_agg(AggSpec::new(AggFunc::Min, 1));
        assert_ne!(plain, agg);
        assert_eq!(agg, mk().with_agg(AggSpec::new(AggFunc::Min, 1)));
    }
}
