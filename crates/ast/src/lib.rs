//! Datalog frontend for the separable-recursion engine.
//!
//! This crate provides everything needed to get from Datalog source text to
//! an analyzed, rectified program ready for compilation:
//!
//! * [`symbol`] — string interning ([`Sym`], [`Interner`]);
//! * [`term`] / [`atom`] / [`rule`] / [`program`] — the abstract syntax tree;
//! * [`parse`] — a hand-written recursive-descent parser for Prolog-style
//!   syntax (`buys(X, Y) :- friend(X, W), buys(W, Y).`);
//! * [`pretty`] — display adapters that render AST nodes back to source text;
//! * [`analysis`] — predicate dependency graphs, IDB/EDB classification,
//!   strongly connected components, and extraction of linear recursive
//!   definitions in the shape the paper assumes (Section 2);
//! * [`rectify`] — rule rectification (distinct head variables, no head
//!   constants), as required by the paper's Section 3.3;
//! * [`expand`] — Procedure `Expand` from Figure 1 of the paper, which
//!   enumerates the conjunctive-query expansion of a recursion, together
//!   with containment-mapping machinery used to validate Theorem 2.1.
//!
//! The paper reproduced here is Jeffrey F. Naughton, *Compiling Separable
//! Recursions* (Princeton CS-TR-140-88 / SIGMOD 1988).

pub mod analysis;
pub mod atom;
pub mod error;
pub mod expand;
pub mod parse;
pub mod pretty;
pub mod program;
pub mod rectify;
pub mod rule;
pub mod span;
pub mod symbol;
pub mod term;

pub use analysis::{DependencyGraph, PredicateInfo, RecursiveDef};
pub use atom::Atom;
pub use error::AstError;
pub use parse::{parse_program, parse_program_raw, parse_query, Parser};
pub use program::{Program, Query};
pub use rule::{AggFunc, AggSpec, Literal, Rule};
pub use span::{LineCol, Span};
pub use symbol::{Interner, Sym};
pub use term::{Const, Term};
