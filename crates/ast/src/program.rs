//! Programs and queries.

use crate::atom::Atom;
use crate::rule::Rule;
use crate::symbol::Sym;
use crate::term::Term;

/// A Datalog program: an ordered collection of rules (and facts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Creates a program from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Program { rules }
    }

    /// Iterates over the non-fact rules.
    pub fn proper_rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| !r.is_fact())
    }

    /// Iterates over the facts.
    pub fn facts(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| r.is_fact())
    }

    /// All rules whose head predicate is `pred` — the paper's *definition*
    /// of `pred` (Section 2).
    pub fn definition_of(&self, pred: Sym) -> Vec<&Rule> {
        self.rules.iter().filter(|r| r.head.pred == pred).collect()
    }

    /// Distinct predicates appearing anywhere, in first-occurrence order.
    pub fn predicates(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        let mut push = |p: Sym| {
            if !out.contains(&p) {
                out.push(p);
            }
        };
        for rule in &self.rules {
            push(rule.head.pred);
            for atom in rule.body_atoms() {
                push(atom.pred);
            }
            for atom in rule.negated_atoms() {
                push(atom.pred);
            }
        }
        out
    }

    /// Whether any rule body contains a negated literal.
    pub fn uses_negation(&self) -> bool {
        self.rules.iter().any(|r| r.negated_atoms().next().is_some())
    }

    /// Whether any rule head carries an aggregate annotation.
    pub fn uses_aggregates(&self) -> bool {
        self.rules.iter().any(|r| r.agg.is_some())
    }

    /// Whether the program uses any stratification-requiring construct
    /// (negation or aggregation).
    pub fn uses_stratified_constructs(&self) -> bool {
        self.uses_negation() || self.uses_aggregates()
    }

    /// Appends another program's rules.
    pub fn extend(&mut self, other: Program) {
        self.rules.extend(other.rules);
    }
}

/// A query: a single predicate instance, possibly containing constants
/// (selection constants) and variables.
///
/// The paper evaluates queries in which at least one argument is a constant;
/// [`Query::bound_positions`] exposes that binding pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The queried atom, e.g. `buys(tom, Y)`.
    pub atom: Atom,
}

impl Query {
    /// Creates a query from an atom.
    pub fn new(atom: Atom) -> Self {
        Query { atom }
    }

    /// 0-based argument positions holding constants.
    pub fn bound_positions(&self) -> Vec<usize> {
        self.atom.terms.iter().enumerate().filter_map(|(i, t)| t.is_const().then_some(i)).collect()
    }

    /// 0-based argument positions holding variables.
    pub fn free_positions(&self) -> Vec<usize> {
        self.atom.terms.iter().enumerate().filter_map(|(i, t)| t.is_var().then_some(i)).collect()
    }

    /// Whether at least one argument is bound (the class of queries the
    /// specialized algorithm targets).
    pub fn has_selection(&self) -> bool {
        !self.bound_positions().is_empty()
    }

    /// The adornment string of the query: `b` for bound, `f` for free.
    pub fn adornment(&self) -> String {
        self.atom.terms.iter().map(|t| if t.is_const() { 'b' } else { 'f' }).collect()
    }

    /// The distinct output variables in argument order; repeated variables
    /// appear once.
    pub fn output_vars(&self) -> Vec<Sym> {
        self.atom.vars()
    }

    /// The terms of the query atom.
    pub fn terms(&self) -> &[Term] {
        &self.atom.terms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Literal;
    use crate::symbol::Interner;

    #[test]
    fn definition_and_predicates() {
        let mut i = Interner::new();
        let t = i.intern("t");
        let a = i.intern("a");
        let t0 = i.intern("t0");
        let (x, y, w) = (i.intern("X"), i.intern("Y"), i.intern("W"));
        let r1 = Rule::new(
            Atom::new(t, vec![Term::Var(x), Term::Var(y)]),
            vec![
                Literal::Atom(Atom::new(a, vec![Term::Var(x), Term::Var(w)])),
                Literal::Atom(Atom::new(t, vec![Term::Var(w), Term::Var(y)])),
            ],
        );
        let re = Rule::new(
            Atom::new(t, vec![Term::Var(x), Term::Var(y)]),
            vec![Literal::Atom(Atom::new(t0, vec![Term::Var(x), Term::Var(y)]))],
        );
        let p = Program::new(vec![r1, re]);
        assert_eq!(p.definition_of(t).len(), 2);
        assert_eq!(p.definition_of(a).len(), 0);
        assert_eq!(p.predicates(), vec![t, a, t0]);
        assert_eq!(p.proper_rules().count(), 2);
        assert_eq!(p.facts().count(), 0);
    }

    #[test]
    fn query_binding_pattern() {
        let mut i = Interner::new();
        let buys = i.intern("buys");
        let tom = i.intern("tom");
        let y = i.intern("Y");
        let q = Query::new(Atom::new(buys, vec![Term::sym(tom), Term::Var(y)]));
        assert_eq!(q.bound_positions(), vec![0]);
        assert_eq!(q.free_positions(), vec![1]);
        assert!(q.has_selection());
        assert_eq!(q.adornment(), "bf");
        assert_eq!(q.output_vars(), vec![y]);
    }
}
