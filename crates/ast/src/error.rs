//! Frontend errors.

use std::fmt;

/// Errors produced by the Datalog frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AstError {
    /// A syntax error with line/column (1-based) and message.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A predicate is used with inconsistent arities.
    ArityMismatch {
        /// The predicate's name.
        pred: String,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// A rule whose head variables are not covered by its body.
    UnsafeRule {
        /// Rendered rule text.
        rule: String,
    },
    /// The program shape does not match the paper's assumptions
    /// (e.g. non-linear recursion where linearity is required).
    UnsupportedProgram {
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for AstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            AstError::ArityMismatch { pred, expected, found } => write!(
                f,
                "predicate `{pred}` used with arity {found}, but earlier with arity {expected}"
            ),
            AstError::UnsafeRule { rule } => {
                write!(f, "unsafe rule (head variable not bound in body): {rule}")
            }
            AstError::UnsupportedProgram { msg } => write!(f, "unsupported program: {msg}"),
        }
    }
}

impl std::error::Error for AstError {}
