//! Frontend errors.

use std::fmt;

use crate::span::Span;

/// Errors produced by the Datalog frontend.
///
/// Variants that point into source text carry a byte-offset [`Span`] so
/// callers can render the offending snippet; `line`/`col` remain for
/// plain-text messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AstError {
    /// A syntax error with line/column (1-based) and message.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// Byte-offset span of the offending token (start..end).
        span: Span,
        /// Human-readable description.
        msg: String,
    },
    /// A predicate is used with inconsistent arities.
    ArityMismatch {
        /// The predicate's name.
        pred: String,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
        /// Span of the atom with the conflicting arity.
        span: Span,
    },
    /// A rule whose head variables are not covered by its body.
    UnsafeRule {
        /// Rendered rule text.
        rule: String,
        /// Span of the offending rule.
        span: Span,
    },
    /// The program shape does not match the paper's assumptions
    /// (e.g. non-linear recursion where linearity is required).
    UnsupportedProgram {
        /// Human-readable description.
        msg: String,
    },
}

impl AstError {
    /// The source span this error points at, if any.
    pub fn span(&self) -> Option<Span> {
        match self {
            AstError::Parse { span, .. }
            | AstError::ArityMismatch { span, .. }
            | AstError::UnsafeRule { span, .. } => (!span.is_dummy()).then_some(*span),
            AstError::UnsupportedProgram { .. } => None,
        }
    }
}

impl fmt::Display for AstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstError::Parse { line, col, msg, .. } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            AstError::ArityMismatch { pred, expected, found, .. } => write!(
                f,
                "predicate `{pred}` used with arity {found}, but earlier with arity {expected}"
            ),
            AstError::UnsafeRule { rule, .. } => {
                write!(f, "unsafe rule (head variable not bound in body): {rule}")
            }
            AstError::UnsupportedProgram { msg } => write!(f, "unsupported program: {msg}"),
        }
    }
}

impl std::error::Error for AstError {}
