//! Rendering AST nodes back to source text.
//!
//! Because [`Sym`](crate::symbol::Sym) handles are only meaningful relative
//! to an [`Interner`], display goes through free functions (or the
//! [`Pretty`] adapter) that carry the interner.

use std::fmt::Write as _;

use crate::atom::Atom;
use crate::program::{Program, Query};
use crate::rule::{Literal, Rule};
use crate::symbol::Interner;
use crate::term::{Const, Term};

/// Renders a term.
pub fn term_to_string(term: &Term, interner: &Interner) -> String {
    match term {
        Term::Var(v) => interner.resolve(*v).to_string(),
        Term::Const(Const::Sym(s)) => interner.resolve(*s).to_string(),
        Term::Const(Const::Int(n)) => n.to_string(),
    }
}

/// Renders an atom, e.g. `buys(tom, Y)`.
pub fn atom_to_string(atom: &Atom, interner: &Interner) -> String {
    let mut out = interner.resolve(atom.pred).to_string();
    if !atom.terms.is_empty() {
        out.push('(');
        for (i, t) in atom.terms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&term_to_string(t, interner));
        }
        out.push(')');
    }
    out
}

/// Renders a body literal.
pub fn literal_to_string(literal: &Literal, interner: &Interner) -> String {
    match literal {
        Literal::Atom(a) => atom_to_string(a, interner),
        Literal::Neg(a) => format!("!{}", atom_to_string(a, interner)),
        Literal::Eq(l, r) => {
            format!("{} = {}", term_to_string(l, interner), term_to_string(r, interner))
        }
        Literal::Sum(d, a, b) => format!(
            "{} = {} + {}",
            term_to_string(d, interner),
            term_to_string(a, interner),
            term_to_string(b, interner)
        ),
    }
}

/// Renders a rule head, including any aggregate annotation, e.g.
/// `shortest(X, min<C>)`.
pub fn head_to_string(rule: &Rule, interner: &Interner) -> String {
    let Some(agg) = &rule.agg else {
        return atom_to_string(&rule.head, interner);
    };
    let mut out = interner.resolve(rule.head.pred).to_string();
    out.push('(');
    for (i, t) in rule.head.terms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if i == agg.pos {
            let _ = write!(out, "{}<{}>", agg.func.keyword(), term_to_string(t, interner));
        } else {
            out.push_str(&term_to_string(t, interner));
        }
    }
    out.push(')');
    out
}

/// Renders a rule, e.g. `buys(X, Y) :- friend(X, W), buys(W, Y).`
pub fn rule_to_string(rule: &Rule, interner: &Interner) -> String {
    let mut out = head_to_string(rule, interner);
    if !rule.body.is_empty() {
        out.push_str(" :- ");
        for (i, lit) in rule.body.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&literal_to_string(lit, interner));
        }
    }
    out.push('.');
    out
}

/// Renders a whole program, one rule per line.
pub fn program_to_string(program: &Program, interner: &Interner) -> String {
    let mut out = String::new();
    for rule in &program.rules {
        let _ = writeln!(out, "{}", rule_to_string(rule, interner));
    }
    out
}

/// Renders a query, e.g. `buys(tom, Y)?`.
pub fn query_to_string(query: &Query, interner: &Interner) -> String {
    format!("{}?", atom_to_string(&query.atom, interner))
}

/// A display adapter pairing an AST node with its interner, so nodes can be
/// used directly in `format!` strings.
pub struct Pretty<'a, T>(pub &'a T, pub &'a Interner);

macro_rules! impl_pretty {
    ($ty:ty, $func:ident) => {
        impl std::fmt::Display for Pretty<'_, $ty> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(&$func(self.0, self.1))
            }
        }
    };
}

impl_pretty!(Term, term_to_string);
impl_pretty!(Atom, atom_to_string);
impl_pretty!(Literal, literal_to_string);
impl_pretty!(Rule, rule_to_string);
impl_pretty!(Program, program_to_string);
impl_pretty!(Query, query_to_string);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_program, parse_query};

    #[test]
    fn roundtrips_a_program() {
        let src = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                   buys(X, Y) :- perfectFor(X, Y).\n\
                   friend(tom, sue).\n";
        let mut i = Interner::new();
        let p = parse_program(src, &mut i).unwrap();
        let rendered = program_to_string(&p, &i);
        assert_eq!(rendered, src);
        // Re-parsing the rendering yields the same AST.
        let p2 = parse_program(&rendered, &mut i).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn renders_equalities_and_integers() {
        let mut i = Interner::new();
        let p = parse_program("p(X, Y) :- q(X), Y = 7.\n", &mut i).unwrap();
        assert_eq!(rule_to_string(&p.rules[0], &i), "p(X, Y) :- q(X), Y = 7.");
    }

    #[test]
    fn renders_queries() {
        let mut i = Interner::new();
        let q = parse_query("buys(tom, Y)?", &mut i).unwrap();
        assert_eq!(query_to_string(&q, &i), "buys(tom, Y)?");
        assert_eq!(format!("{}", Pretty(&q, &i)), "buys(tom, Y)?");
    }

    #[test]
    fn roundtrips_negation_aggregates_and_sums() {
        let src = "shortest(Y, min<C>) :- shortest(X, D), edge(X, Y, W), C = D + W.\n\
                   shortest(Y, min<C>) :- source(X), edge(X, Y, C).\n\
                   only(X) :- a(X), !b(X).\n";
        let mut i = Interner::new();
        let p = parse_program(src, &mut i).unwrap();
        let rendered = program_to_string(&p, &i);
        assert_eq!(rendered, src);
        let p2 = parse_program(&rendered, &mut i).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn renders_zero_arity_atoms() {
        let mut i = Interner::new();
        let p = parse_program("rain :- cloudy.\ncloudy.\n", &mut i).unwrap();
        assert_eq!(rule_to_string(&p.rules[0], &i), "rain :- cloudy.");
        assert_eq!(rule_to_string(&p.rules[1], &i), "cloudy.");
    }
}
