//! A hand-written recursive-descent parser for Prolog-style Datalog.
//!
//! Grammar (whitespace and `%`-to-end-of-line comments are skipped):
//!
//! ```text
//! program  := clause*
//! clause   := head ( ":-" body )? "."
//! head     := IDENT ( "(" headarg ( "," headarg )* ")" )?
//! headarg  := term | AGG "<" VARIABLE ">"   // AGG ∈ {min, max, count, sum}
//! body     := literal ( "," literal )*     // "&" also accepted, as in the paper
//! literal  := atom | "!" atom | term "=" term ( "+" term )?
//! atom     := IDENT ( "(" term ( "," term )* ")" )?
//! term     := VARIABLE | IDENT | INTEGER
//! query    := "?-" atom "." | atom "?"
//! ```
//!
//! Identifiers starting with a lowercase letter are predicate/constant
//! symbols; identifiers starting with an uppercase letter or `_` are
//! variables, matching the paper's Prolog syntax.

use crate::atom::Atom;
use crate::error::AstError;
use crate::program::{Program, Query};
use crate::rule::{AggFunc, AggSpec, Literal, Rule};
use crate::span::{line_col, Span};
use crate::symbol::Interner;
use crate::term::Term;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Var(String),
    Int(i64),
    LParen,
    RParen,
    Comma,
    Dot,
    Turnstile,      // :-
    QueryTurnstile, // ?-
    Question,       // ?
    Eq,
    Amp,  // & — the paper writes conjunction with `&`
    Bang, // ! — stratified negation
    Lt,   // < — opens an aggregate annotation `min<C>`
    Gt,   // > — closes an aggregate annotation
    Plus, // + — the sum constraint `C = D + W`
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Var(s) => format!("variable `{s}`"),
            Tok::Int(n) => format!("integer `{n}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Turnstile => "`:-`".into(),
            Tok::QueryTurnstile => "`?-`".into(),
            Tok::Question => "`?`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Amp => "`&`".into(),
            Tok::Bang => "`!`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

struct Lexer<'a> {
    text: &'a str,
    src: &'a [u8],
    pos: usize,
}

/// Builds a parse error whose span points into `text`.
fn parse_error_at(text: &str, span: Span, msg: impl Into<String>) -> AstError {
    let lc = line_col(text, span.start as usize);
    AstError::Parse { line: lc.line, col: lc.col, span, msg: msg.into() }
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { text: src, src: src.as_bytes(), pos: 0 }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek_byte() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(b) = self.peek_byte() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// An error spanning from `start` to the current position (at least one
    /// byte wide so a caret is always visible).
    fn error_from(&self, start: usize, msg: impl Into<String>) -> AstError {
        let end = self.pos.max(start + 1).min(self.src.len().max(start + 1));
        parse_error_at(self.text, Span::new(start, end), msg)
    }

    /// Lexes the next token, returning its source span.
    fn next_tok(&mut self) -> Result<(Tok, Span), AstError> {
        self.skip_trivia();
        let start = self.pos;
        let Some(b) = self.peek_byte() else {
            return Ok((Tok::Eof, Span::new(start, start)));
        };
        let tok = match b {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'.' => {
                self.bump();
                Tok::Dot
            }
            b'=' => {
                self.bump();
                Tok::Eq
            }
            b'&' => {
                self.bump();
                Tok::Amp
            }
            b'!' => {
                self.bump();
                Tok::Bang
            }
            b'<' => {
                self.bump();
                Tok::Lt
            }
            b'>' => {
                self.bump();
                Tok::Gt
            }
            b'+' => {
                self.bump();
                Tok::Plus
            }
            b':' => {
                self.bump();
                if self.peek_byte() == Some(b'-') {
                    self.bump();
                    Tok::Turnstile
                } else {
                    return Err(self.error_from(start, "expected `-` after `:`"));
                }
            }
            b'?' => {
                self.bump();
                if self.peek_byte() == Some(b'-') {
                    self.bump();
                    Tok::QueryTurnstile
                } else {
                    Tok::Question
                }
            }
            b'-' | b'0'..=b'9' => {
                let negative = b == b'-';
                if negative {
                    self.bump();
                    if !self.peek_byte().is_some_and(|c| c.is_ascii_digit()) {
                        return Err(self.error_from(start, "expected digit after `-`"));
                    }
                }
                let mut value: i64 = 0;
                while let Some(c) = self.peek_byte() {
                    if !c.is_ascii_digit() {
                        break;
                    }
                    self.bump();
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(i64::from(c - b'0')))
                        .ok_or_else(|| self.error_from(start, "integer literal overflows i64"))?;
                }
                Tok::Int(if negative { -value } else { value })
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while let Some(c) = self.peek_byte() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let text = self.text[start..self.pos].to_string();
                if b.is_ascii_uppercase() || b == b'_' {
                    Tok::Var(text)
                } else {
                    Tok::Ident(text)
                }
            }
            other => {
                self.bump();
                return Err(
                    self.error_from(start, format!("unexpected character `{}`", other as char))
                );
            }
        };
        Ok((tok, Span::new(start, self.pos)))
    }
}

/// A parser over a source string, interning names into a caller-provided
/// [`Interner`] so programs, queries, and databases share one symbol space.
pub struct Parser<'a> {
    lexer: Lexer<'a>,
    interner: &'a mut Interner,
    tok: Tok,
    tok_span: Span,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `src`.
    pub fn new(src: &'a str, interner: &'a mut Interner) -> Result<Self, AstError> {
        let mut lexer = Lexer::new(src);
        let (tok, tok_span) = lexer.next_tok()?;
        Ok(Parser { lexer, interner, tok, tok_span })
    }

    fn advance(&mut self) -> Result<(), AstError> {
        let (tok, span) = self.lexer.next_tok()?;
        self.tok = tok;
        self.tok_span = span;
        Ok(())
    }

    /// The span of the current (lookahead) token.
    fn span_here(&self) -> Span {
        // Give end-of-input errors a one-byte span so renderers can point a
        // caret at the last character.
        if self.tok == Tok::Eof && self.tok_span.start > 0 {
            Span::new(self.tok_span.start as usize - 1, self.tok_span.end as usize)
        } else {
            self.tok_span
        }
    }

    fn error_here(&self, msg: impl Into<String>) -> AstError {
        parse_error_at(self.lexer.text, self.span_here(), msg)
    }

    fn expect(&mut self, want: &Tok) -> Result<(), AstError> {
        if &self.tok == want {
            self.advance()
        } else {
            Err(self.error_here(format!(
                "expected {}, found {}",
                want.describe(),
                self.tok.describe()
            )))
        }
    }

    fn at_eof(&self) -> bool {
        self.tok == Tok::Eof
    }

    fn parse_term(&mut self) -> Result<(Term, Span), AstError> {
        let span = self.tok_span;
        let term = match &self.tok {
            Tok::Var(name) => Term::Var(self.interner.intern(&name.clone())),
            Tok::Ident(name) => Term::sym(self.interner.intern(&name.clone())),
            Tok::Int(n) => Term::int(*n),
            other => {
                return Err(self.error_here(format!(
                    "expected a term (variable, symbol, or integer), found {}",
                    other.describe()
                )))
            }
        };
        self.advance()?;
        Ok((term, span))
    }

    fn parse_atom(&mut self) -> Result<Atom, AstError> {
        let Tok::Ident(name) = &self.tok else {
            return Err(self
                .error_here(format!("expected a predicate name, found {}", self.tok.describe())));
        };
        let pred = self.interner.intern(&name.clone());
        let mut span = self.tok_span;
        self.advance()?;
        let mut terms = Vec::new();
        let mut term_spans = Vec::new();
        if self.tok == Tok::LParen {
            self.advance()?;
            loop {
                let (term, tspan) = self.parse_term()?;
                terms.push(term);
                term_spans.push(tspan);
                match self.tok {
                    Tok::Comma => self.advance()?,
                    Tok::RParen => {
                        span = span.merge(self.tok_span);
                        self.advance()?;
                        break;
                    }
                    _ => {
                        return Err(self.error_here(format!(
                            "expected `,` or `)` in argument list, found {}",
                            self.tok.describe()
                        )))
                    }
                }
            }
        }
        Ok(Atom::with_spans(pred, terms, span, term_spans))
    }

    /// After `left =`, parses the right-hand side: either a plain term
    /// (an equality) or `a + b` (a sum constraint).
    fn parse_eq_rhs(&mut self, left: Term) -> Result<Literal, AstError> {
        let (right, _) = self.parse_term()?;
        if self.tok == Tok::Plus {
            self.advance()?;
            let (addend, _) = self.parse_term()?;
            return Ok(Literal::Sum(left, right, addend));
        }
        Ok(Literal::Eq(left, right))
    }

    fn parse_literal(&mut self) -> Result<Literal, AstError> {
        // `!` starts a negated atom.
        if self.tok == Tok::Bang {
            self.advance()?;
            return Ok(Literal::Neg(self.parse_atom()?));
        }
        // A literal starting with a variable or integer must be an equality
        // or sum constraint.
        if matches!(self.tok, Tok::Var(_) | Tok::Int(_)) {
            let (left, _) = self.parse_term()?;
            self.expect(&Tok::Eq)?;
            return self.parse_eq_rhs(left);
        }
        // An identifier might start `p(...)` or `c = t`.
        let atom = self.parse_atom()?;
        if self.tok == Tok::Eq {
            if !atom.terms.is_empty() {
                return Err(self.error_here("`=` cannot follow a compound atom"));
            }
            self.advance()?;
            return self.parse_eq_rhs(Term::sym(atom.pred));
        }
        Ok(Literal::Atom(atom))
    }

    fn parse_body(&mut self) -> Result<Vec<Literal>, AstError> {
        let mut body = vec![self.parse_literal()?];
        while matches!(self.tok, Tok::Comma | Tok::Amp) {
            self.advance()?;
            body.push(self.parse_literal()?);
        }
        Ok(body)
    }

    /// Parses a head atom, which may carry one aggregate annotation
    /// (`shortest(X, min<C>)`). The returned atom holds a plain variable at
    /// the aggregated position; the annotation is returned separately.
    fn parse_head_atom(&mut self) -> Result<(Atom, Option<AggSpec>), AstError> {
        let Tok::Ident(name) = &self.tok else {
            return Err(self
                .error_here(format!("expected a predicate name, found {}", self.tok.describe())));
        };
        let pred = self.interner.intern(&name.clone());
        let mut span = self.tok_span;
        self.advance()?;
        let mut terms = Vec::new();
        let mut term_spans = Vec::new();
        let mut agg: Option<AggSpec> = None;
        if self.tok == Tok::LParen {
            self.advance()?;
            loop {
                // An identifier in head-argument position is an aggregate
                // annotation when a known function keyword is immediately
                // followed by `<`; otherwise it is an ordinary constant.
                let func_kw = match &self.tok {
                    Tok::Ident(kw) => AggFunc::from_keyword(kw),
                    _ => None,
                };
                if let Some(func) = func_kw {
                    let kw_span = self.tok_span;
                    self.advance()?;
                    if self.tok == Tok::Lt {
                        self.advance()?;
                        let Tok::Var(var) = &self.tok else {
                            return Err(self.error_here(format!(
                                "expected a variable inside `{}<...>`, found {}",
                                func.keyword(),
                                self.tok.describe()
                            )));
                        };
                        let var = self.interner.intern(&var.clone());
                        let var_span = self.tok_span;
                        self.advance()?;
                        let gt_span = self.tok_span;
                        self.expect(&Tok::Gt)?;
                        if agg.is_some() {
                            return Err(parse_error_at(
                                self.lexer.text,
                                kw_span.merge(gt_span),
                                "a head may carry at most one aggregate annotation",
                            ));
                        }
                        agg =
                            Some(AggSpec { func, pos: terms.len(), span: kw_span.merge(gt_span) });
                        terms.push(Term::Var(var));
                        term_spans.push(var_span);
                    } else {
                        // `min` etc. used as a plain constant symbol.
                        terms.push(Term::sym(self.interner.intern(func.keyword())));
                        term_spans.push(kw_span);
                    }
                } else {
                    let (term, tspan) = self.parse_term()?;
                    terms.push(term);
                    term_spans.push(tspan);
                }
                match self.tok {
                    Tok::Comma => self.advance()?,
                    Tok::RParen => {
                        span = span.merge(self.tok_span);
                        self.advance()?;
                        break;
                    }
                    _ => {
                        return Err(self.error_here(format!(
                            "expected `,` or `)` in argument list, found {}",
                            self.tok.describe()
                        )))
                    }
                }
            }
        }
        Ok((Atom::with_spans(pred, terms, span, term_spans), agg))
    }

    /// Parses one clause `head.` or `head :- body.`
    pub fn parse_clause(&mut self) -> Result<Rule, AstError> {
        let (head, agg) = self.parse_head_atom()?;
        let start = head.span;
        let body = if self.tok == Tok::Turnstile {
            self.advance()?;
            self.parse_body()?
        } else {
            Vec::new()
        };
        let dot_span = self.tok_span;
        self.expect(&Tok::Dot)?;
        let mut rule = Rule::with_span(head, body, start.merge(dot_span));
        rule.agg = agg;
        Ok(rule)
    }

    /// Parses a whole program (a sequence of clauses) to end of input.
    pub fn parse_program(&mut self) -> Result<Program, AstError> {
        let mut rules = Vec::new();
        while !self.at_eof() {
            rules.push(self.parse_clause()?);
        }
        Ok(Program::new(rules))
    }

    /// Parses a query: either `?- atom.` or `atom?` (the paper writes
    /// `buys(tom, Y)?`).
    pub fn parse_query_clause(&mut self) -> Result<Query, AstError> {
        if self.tok == Tok::QueryTurnstile {
            self.advance()?;
            let atom = self.parse_atom()?;
            self.expect(&Tok::Dot)?;
            return Ok(Query::new(atom));
        }
        let atom = self.parse_atom()?;
        match self.tok {
            Tok::Question => {
                self.advance()?;
                // Optional trailing dot.
                if self.tok == Tok::Dot {
                    self.advance()?;
                }
            }
            Tok::Dot => self.advance()?,
            Tok::Eof => {}
            _ => {
                return Err(self.error_here(format!(
                    "expected `?` or `.` after query atom, found {}",
                    self.tok.describe()
                )))
            }
        }
        Ok(Query::new(atom))
    }
}

/// Parses a program from source text.
///
/// Also validates that every predicate is used with a consistent arity and
/// that every rule is safe.
///
/// ```
/// use sepra_ast::{parse_program, Interner};
///
/// let mut interner = Interner::new();
/// let program = parse_program(
///     "t(X, Y) :- e(X, W), t(W, Y).\n t(X, Y) :- e(X, Y).\n",
///     &mut interner,
/// )
/// .unwrap();
/// let t = interner.intern("t");
/// assert_eq!(program.definition_of(t).len(), 2);
/// assert!(program.rules[0].is_linear_recursive_in(t));
/// ```
pub fn parse_program(src: &str, interner: &mut Interner) -> Result<Program, AstError> {
    let mut parser = Parser::new(src, interner)?;
    let program = parser.parse_program()?;
    validate(&program, interner)?;
    Ok(program)
}

/// Parses a single query such as `buys(tom, Y)?` or `?- buys(tom, Y).`
pub fn parse_query(src: &str, interner: &mut Interner) -> Result<Query, AstError> {
    let mut parser = Parser::new(src, interner)?;
    let query = parser.parse_query_clause()?;
    if !parser.at_eof() {
        return Err(parser.error_here("trailing input after query"));
    }
    Ok(query)
}

/// Parses a program without validating arity consistency or rule safety.
///
/// This is the entry point for the lint subsystem, which reports those
/// problems as structured diagnostics instead of hard errors.
pub fn parse_program_raw(src: &str, interner: &mut Interner) -> Result<Program, AstError> {
    let mut parser = Parser::new(src, interner)?;
    parser.parse_program()
}

/// Checks arity consistency and rule safety for a parsed program.
pub fn validate(program: &Program, interner: &Interner) -> Result<(), AstError> {
    let mut arities: std::collections::HashMap<crate::symbol::Sym, usize> =
        std::collections::HashMap::new();
    let mut check = |atom: &Atom| -> Result<(), AstError> {
        match arities.get(&atom.pred) {
            Some(&expected) if expected != atom.arity() => Err(AstError::ArityMismatch {
                pred: interner.resolve(atom.pred).to_string(),
                expected,
                found: atom.arity(),
                span: atom.span,
            }),
            Some(_) => Ok(()),
            None => {
                arities.insert(atom.pred, atom.arity());
                Ok(())
            }
        }
    };
    for rule in &program.rules {
        check(&rule.head)?;
        for atom in rule.body_atoms() {
            check(atom)?;
        }
        for atom in rule.negated_atoms() {
            check(atom)?;
        }
        if !rule.is_safe() {
            return Err(AstError::UnsafeRule {
                rule: crate::pretty::rule_to_string(rule, interner),
                span: rule.span(),
            });
        }
    }
    // All proper rules defining a predicate must agree on its aggregate
    // annotation (facts are exempt: they seed groups with contributions).
    let mut aggs: std::collections::HashMap<crate::symbol::Sym, Option<AggSpec>> =
        std::collections::HashMap::new();
    for rule in program.proper_rules() {
        match aggs.get(&rule.head.pred) {
            Some(expected) if *expected != rule.agg => {
                return Err(AstError::UnsupportedProgram {
                    msg: format!(
                        "inconsistent aggregate annotations on predicate `{}`: every rule \
                         must use the same aggregate (or none)",
                        interner.resolve(rule.head.pred)
                    ),
                });
            }
            Some(_) => {}
            None => {
                aggs.insert(rule.head.pred, rule.agg.clone());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Const;

    fn parse_ok(src: &str) -> (Program, Interner) {
        let mut i = Interner::new();
        let p = parse_program(src, &mut i).expect("program should parse");
        (p, i)
    }

    #[test]
    fn parses_the_buys_program() {
        let (p, mut i) = parse_ok(
            "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
             buys(X, Y) :- idol(X, W), buys(W, Y).\n\
             buys(X, Y) :- perfectFor(X, Y).\n",
        );
        assert_eq!(p.rules.len(), 3);
        let buys = i.intern("buys");
        assert!(p.rules[0].is_linear_recursive_in(buys));
        assert!(p.rules[1].is_linear_recursive_in(buys));
        assert!(!p.rules[2].is_recursive_in(buys));
    }

    #[test]
    fn accepts_paper_style_ampersand() {
        let (p, _) = parse_ok("t(X, Y) :- a(X, W) & t(W, Y).\nt(X, Y) :- t0(X, Y).\n");
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn parses_facts_and_comments() {
        let (p, mut i) = parse_ok(
            "% the social graph\n\
             friend(tom, sue).  % tom's friend\n\
             friend(sue, joe).\n",
        );
        assert_eq!(p.facts().count(), 2);
        let tom = i.intern("tom");
        assert_eq!(p.rules[0].head.terms[0], Term::sym(tom));
    }

    #[test]
    fn parses_integers_and_negatives() {
        let (p, _) = parse_ok("age(tom, 42).\ntemp(lab, -3).\n");
        assert_eq!(p.rules[0].head.terms[1], Term::int(42));
        assert_eq!(p.rules[1].head.terms[1], Term::int(-3));
    }

    #[test]
    fn parses_equality_literals() {
        let (p, mut i) = parse_ok("p(X, Y) :- q(X), Y = tom.\n");
        let tom = i.intern("tom");
        assert_eq!(p.rules[0].body.len(), 2);
        assert!(matches!(
            &p.rules[0].body[1],
            Literal::Eq(Term::Var(_), Term::Const(Const::Sym(s))) if *s == tom
        ));
    }

    #[test]
    fn parses_queries_in_both_styles() {
        let mut i = Interner::new();
        let q1 = parse_query("buys(tom, Y)?", &mut i).unwrap();
        let q2 = parse_query("?- buys(tom, Y).", &mut i).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(q1.adornment(), "bf");
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut i = Interner::new();
        let err = parse_program("p(a, b).\np(c).\n", &mut i).unwrap_err();
        assert!(matches!(err, AstError::ArityMismatch { .. }), "{err}");
    }

    #[test]
    fn rejects_unsafe_rule() {
        let mut i = Interner::new();
        let err = parse_program("p(X, Y) :- q(X).\n", &mut i).unwrap_err();
        assert!(matches!(err, AstError::UnsafeRule { .. }), "{err}");
    }

    #[test]
    fn rejects_garbage() {
        let mut i = Interner::new();
        for bad in
            ["p(X) :- .", "p(X", "p(X))", ":- p(X).", "p(X) q(X).", "p(#).", "p(X) :- q(X),."]
        {
            assert!(parse_program(bad, &mut i).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_positions_are_one_based() {
        let mut i = Interner::new();
        let err = parse_program("p(a).\nq(", &mut i).unwrap_err();
        match err {
            AstError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn spans_point_into_the_source() {
        let src = "t(X, Y) :- e(X, W), t(W, Y).\n";
        let (p, _) = parse_ok(src);
        let rule = &p.rules[0];
        // Rule span covers the whole clause including the dot.
        assert_eq!(&src[rule.span.start as usize..rule.span.end as usize], src.trim_end());
        // Head atom span covers `t(X, Y)`.
        let h = rule.head.span;
        assert_eq!(&src[h.start as usize..h.end as usize], "t(X, Y)");
        // Per-term spans land on the argument text.
        let ts = rule.head.term_span(1);
        assert_eq!(&src[ts.start as usize..ts.end as usize], "Y");
        // Body atom spans too.
        let e = rule.body_atoms().next().unwrap();
        assert_eq!(&src[e.span.start as usize..e.span.end as usize], "e(X, W)");
        let ws = e.term_span(1);
        assert_eq!(&src[ws.start as usize..ws.end as usize], "W");
    }

    #[test]
    fn zero_arity_atom_span_is_the_name() {
        let src = "p :- q.\n";
        let (p, _) = parse_ok(src);
        let h = p.rules[0].head.span;
        assert_eq!(&src[h.start as usize..h.end as usize], "p");
    }

    #[test]
    fn parse_errors_carry_full_spans() {
        let mut i = Interner::new();
        let src = "p(a).\nq(#).\n";
        let err = parse_program(src, &mut i).unwrap_err();
        let AstError::Parse { line, col, span, .. } = err else { panic!("expected parse error") };
        assert_eq!((line, col), (2, 3));
        assert_eq!(&src[span.start as usize..span.end as usize], "#");
    }

    #[test]
    fn validation_errors_carry_spans() {
        let mut i = Interner::new();
        let src = "p(a, b).\np(c).\n";
        let err = parse_program(src, &mut i).unwrap_err();
        let AstError::ArityMismatch { span, .. } = err else { panic!("expected arity error") };
        assert_eq!(&src[span.start as usize..span.end as usize], "p(c)");
        let src2 = "p(X, Y) :- q(X).\n";
        let err2 = parse_program(src2, &mut i).unwrap_err();
        let AstError::UnsafeRule { span, .. } = err2 else { panic!("expected unsafe rule") };
        assert_eq!(&src2[span.start as usize..span.end as usize], "p(X, Y) :- q(X).");
    }

    #[test]
    fn raw_parse_skips_validation() {
        let mut i = Interner::new();
        // Arity mismatch and unsafe rule both pass the raw parse.
        let p = parse_program_raw("p(a, b).\np(c).\nq(X, Y) :- r(X).\n", &mut i).unwrap();
        assert_eq!(p.rules.len(), 3);
        assert!(parse_program_raw("p(", &mut i).is_err());
    }

    #[test]
    fn underscore_starts_a_variable() {
        let (p, mut i) = parse_ok("p(X) :- q(X, _any).\n");
        let underscore = i.intern("_any");
        let q_atom = p.rules[0].body_atoms().next().unwrap();
        assert_eq!(q_atom.terms[1], Term::Var(underscore));
    }

    #[test]
    fn parses_negated_literals() {
        let (p, mut i) = parse_ok("only(X) :- a(X), !b(X).\n");
        let b = i.intern("b");
        let rule = &p.rules[0];
        assert_eq!(rule.body_atoms().count(), 1);
        let neg = rule.negated_atoms().next().unwrap();
        assert_eq!(neg.pred, b);
        // The negated atom's span points at the atom text (after the `!`).
        let src = "only(X) :- a(X), !b(X).\n";
        assert_eq!(&src[neg.span.start as usize..neg.span.end as usize], "b(X)");
    }

    #[test]
    fn parses_sum_constraints() {
        let (p, _) = parse_ok("d(Y, C) :- d(X, D), e(X, Y, W), C = D + W.\n");
        let rule = &p.rules[0];
        assert!(matches!(rule.body[2], Literal::Sum(Term::Var(_), Term::Var(_), Term::Var(_))));
        // Constant operands also parse.
        let (p2, _) = parse_ok("p(C) :- q(D), C = D + 1.\n");
        assert!(matches!(p2.rules[0].body[1], Literal::Sum(_, _, Term::Const(_))));
    }

    #[test]
    fn parses_aggregate_heads() {
        let src = "shortest(Y, min<C>) :- shortest(X, D), edge(X, Y, W), C = D + W.\n\
                   shortest(Y, min<C>) :- source(X), edge(X, Y, C).\n";
        let (p, mut i) = parse_ok(src);
        let c = i.intern("C");
        for rule in &p.rules {
            let agg = rule.agg.as_ref().expect("aggregate parsed");
            assert_eq!(agg.func, AggFunc::Min);
            assert_eq!(agg.pos, 1);
            assert_eq!(rule.head.terms[1], Term::Var(c));
            // The spec span covers the `min<C>` text.
            assert_eq!(&src[agg.span.start as usize..agg.span.end as usize], "min<C>");
        }
    }

    #[test]
    fn aggregate_keywords_remain_usable_as_constants() {
        let (p, mut i) = parse_ok("kind(tom, min).\np(X) :- q(X, count).\n");
        let min = i.intern("min");
        assert_eq!(p.rules[0].head.terms[1], Term::sym(min));
        assert!(p.rules[0].agg.is_none());
    }

    #[test]
    fn rejects_bad_aggregate_syntax() {
        let mut i = Interner::new();
        for bad in [
            "p(min<c>) :- q(c).",            // constant inside <>
            "p(min<X, Y>) :- q(X, Y).",      // more than one variable
            "p(min<X>, max<Y>) :- q(X, Y).", // two aggregates
            "p(min<X) :- q(X).",             // unclosed
        ] {
            assert!(parse_program(bad, &mut i).is_err(), "should reject {bad:?}");
        }
        // Aggregates have no meaning in body atoms.
        assert!(parse_program("p(X) :- q(min<X>).", &mut i).is_err());
    }

    #[test]
    fn rejects_mixed_aggregate_definitions() {
        let mut i = Interner::new();
        let err =
            parse_program("s(X, min<C>) :- e(X, C).\ns(X, C) :- f(X, C).\n", &mut i).unwrap_err();
        assert!(matches!(err, AstError::UnsupportedProgram { .. }), "{err}");
        // Facts are exempt: they seed aggregate groups.
        assert!(parse_program("s(a, 0).\ns(X, min<C>) :- e(X, C).\n", &mut i).is_ok());
    }

    #[test]
    fn rejects_unsafe_negation() {
        let mut i = Interner::new();
        let err = parse_program("p(X) :- q(X), !r(Y).\n", &mut i).unwrap_err();
        assert!(matches!(err, AstError::UnsafeRule { .. }), "{err}");
    }

    #[test]
    fn negated_atoms_join_arity_checking() {
        let mut i = Interner::new();
        let err = parse_program("r(a, b).\np(X) :- q(X), !r(X).\n", &mut i).unwrap_err();
        assert!(matches!(err, AstError::ArityMismatch { .. }), "{err}");
    }
}
