//! Procedure `Expand` (Figure 1 of the paper) and conjunctive-query
//! containment.
//!
//! The *expansion* of a recursive predicate is the (infinite) set of
//! conjunctions of EDB predicates obtainable by repeated rule application;
//! its elements are called *strings*. [`Expansion`] enumerates strings up to
//! a depth bound, recording each string's *derivation* (the sequence of rule
//! applications that produced it, Definition 2.5).
//!
//! [`contained_in`] and [`equivalent`] implement containment mappings
//! (Chandra–Merlin), used in tests to validate Theorem 2.1: two strings of a
//! separable recursion whose per-class derivation projections agree define
//! the same relation.

use crate::analysis::RecursiveDef;
use crate::atom::Atom;
use crate::rectify::is_head_rectified;
use crate::symbol::{Interner, Sym};
use crate::term::Term;

/// One element of an expansion: a conjunction of nonrecursive atoms plus the
/// derivation that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpansionString {
    /// The conjunction of predicate instances (all nonrecursive).
    pub atoms: Vec<Atom>,
    /// Indices into [`RecursiveDef::recursive_rules`] of the rule
    /// applications that produced this string, in application order
    /// (`D(s)` in Definition 2.5). The final exit-rule application is
    /// recorded separately in `exit_rule`.
    pub derivation: Vec<usize>,
    /// Index into [`RecursiveDef::exit_rules`] of the closing application.
    pub exit_rule: usize,
    /// The distinguished variables (the variables of the initial instance
    /// of `t`), in argument order.
    pub distinguished: Vec<Sym>,
}

impl ExpansionString {
    /// The subsequence of the derivation using only rules in `class`
    /// (`D_i(s)`, Definition 2.5).
    pub fn derivation_projected(&self, class: &[usize]) -> Vec<usize> {
        self.derivation.iter().copied().filter(|r| class.contains(r)).collect()
    }
}

/// Enumerates the expansion of a recursive definition breadth-first.
pub struct Expansion<'a> {
    def: &'a RecursiveDef,
    interner: &'a mut Interner,
}

impl<'a> Expansion<'a> {
    /// Creates an expander for `def`. All rule heads must be rectified.
    pub fn new(def: &'a RecursiveDef, interner: &'a mut Interner) -> Self {
        for r in def.recursive_rules.iter().chain(&def.exit_rules) {
            assert!(is_head_rectified(r), "Expand requires rectified heads");
        }
        Expansion { def, interner }
    }

    /// Generates all strings whose derivations use at most `max_depth`
    /// recursive rule applications (Figure 1, truncated).
    pub fn strings_to_depth(&mut self, max_depth: usize) -> Vec<ExpansionString> {
        // Distinguished variables: fresh names for the initial t-instance.
        let distinguished: Vec<Sym> =
            (0..self.def.arity).map(|i| self.interner.fresh(&format!("D{i}"))).collect();
        let mut out = Vec::new();
        // Fringe elements: (prefix atoms, terms of the current t instance, derivation).
        let mut fringe: Vec<(Vec<Atom>, Vec<Term>, Vec<usize>)> =
            vec![(Vec::new(), distinguished.iter().map(|&v| Term::Var(v)).collect(), Vec::new())];
        for depth in 0..=max_depth {
            let mut next = Vec::new();
            for (prefix, t_terms, derivation) in &fringe {
                // Close with every exit rule.
                for (ei, exit) in self.def.exit_rules.iter().enumerate() {
                    let body = self.instantiate_body(exit, t_terms, depth, usize::MAX);
                    let mut atoms = prefix.clone();
                    atoms.extend(body);
                    out.push(ExpansionString {
                        atoms,
                        derivation: derivation.clone(),
                        exit_rule: ei,
                        distinguished: distinguished.clone(),
                    });
                }
                if depth == max_depth {
                    continue;
                }
                // Extend with every recursive rule.
                for (ri, rule) in self.def.recursive_rules.iter().enumerate() {
                    let rec_atom = rule
                        .recursive_atom(self.def.pred)
                        .expect("recursive rule has a recursive atom")
                        .clone();
                    let subst = self.rule_substitution(rule, t_terms, depth, ri);
                    let mut atoms = prefix.clone();
                    for atom in rule.body_atoms() {
                        if atom.pred != self.def.pred {
                            atoms.push(atom.substitute(&|v| subst(v)));
                        }
                    }
                    let new_t_terms: Vec<Term> =
                        rec_atom.terms.iter().map(|t| t.substitute(&subst)).collect();
                    let mut d = derivation.clone();
                    d.push(ri);
                    next.push((atoms, new_t_terms, d));
                }
            }
            fringe = next;
        }
        out
    }

    /// Builds the substitution for applying `rule` to an instance of `t`
    /// with argument terms `t_terms`: head variables map to the
    /// corresponding instance terms, body-only variables get fresh
    /// subscripted names (line 12 of Figure 1).
    fn rule_substitution(
        &mut self,
        rule: &crate::rule::Rule,
        t_terms: &[Term],
        iteration: usize,
        rule_idx: usize,
    ) -> impl Fn(Sym) -> Option<Term> {
        let head_vars: Vec<Sym> =
            rule.head.terms.iter().map(|t| t.as_var().expect("rectified head")).collect();
        let mut map: Vec<(Sym, Term)> =
            head_vars.iter().zip(t_terms).map(|(&v, &t)| (v, t)).collect();
        for v in rule.vars() {
            if !head_vars.contains(&v) {
                let name = self.interner.resolve(v).to_string();
                let fresh = self.interner.intern(&format!("{name}_i{iteration}_r{rule_idx}"));
                map.push((v, Term::Var(fresh)));
            }
        }
        move |v: Sym| map.iter().find(|(from, _)| *from == v).map(|(_, to)| *to)
    }

    fn instantiate_body(
        &mut self,
        rule: &crate::rule::Rule,
        t_terms: &[Term],
        iteration: usize,
        rule_idx: usize,
    ) -> Vec<Atom> {
        let subst = self.rule_substitution(rule, t_terms, iteration, rule_idx);
        rule.body_atoms().map(|a| a.substitute(&|v| subst(v))).collect()
    }
}

/// Checks for a *containment mapping* from conjunction `s` to conjunction
/// `s'` fixing the `distinguished` variables (Chandra–Merlin 1977): a
/// variable mapping `m` with `m(V) = V` for distinguished `V` such that
/// every atom of `s`, after applying `m`, appears in `s'`.
///
/// Returns `true` iff such a mapping exists. Constants must map to
/// themselves (handled implicitly by term equality).
pub fn contained_in(s: &[Atom], s_prime: &[Atom], distinguished: &[Sym]) -> bool {
    // Collect the variables of s in first-occurrence order.
    let mut vars: Vec<Sym> = Vec::new();
    for a in s {
        for v in a.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    // Backtracking over atoms of s: map each to some atom of s'.
    fn solve(
        s: &[Atom],
        s_prime: &[Atom],
        idx: usize,
        map: &mut Vec<(Sym, Term)>,
        distinguished: &[Sym],
    ) -> bool {
        if idx == s.len() {
            return true;
        }
        let atom = &s[idx];
        'candidates: for cand in s_prime {
            if cand.pred != atom.pred || cand.arity() != atom.arity() {
                continue;
            }
            let saved = map.len();
            for (t, u) in atom.terms.iter().zip(&cand.terms) {
                match t {
                    Term::Const(_) => {
                        if t != u {
                            map.truncate(saved);
                            continue 'candidates;
                        }
                    }
                    Term::Var(v) => {
                        if distinguished.contains(v) {
                            if *u != Term::Var(*v) {
                                map.truncate(saved);
                                continue 'candidates;
                            }
                        } else if let Some((_, bound)) = map.iter().find(|(w, _)| w == v) {
                            if bound != u {
                                map.truncate(saved);
                                continue 'candidates;
                            }
                        } else {
                            map.push((*v, *u));
                        }
                    }
                }
            }
            if solve(s, s_prime, idx + 1, map, distinguished) {
                return true;
            }
            map.truncate(saved);
        }
        false
    }
    let mut map = Vec::new();
    solve(s, s_prime, 0, &mut map, distinguished)
}

/// Whether two conjunctions define the same relation over their
/// distinguished variables: containment mappings exist in both directions.
pub fn equivalent(s: &[Atom], s_prime: &[Atom], distinguished: &[Sym]) -> bool {
    contained_in(s, s_prime, distinguished) && contained_in(s_prime, s, distinguished)
}

/// Minimizes a conjunctive query (Chandra–Merlin): repeatedly drops an atom
/// whenever the full query still folds into the remainder (a containment
/// mapping from the original conjunction into the reduced one exists), so
/// the result defines the same relation with the fewest atoms. The minimal
/// core is unique up to renaming of nondistinguished variables.
///
/// This is the classical companion to the containment test the paper's
/// Theorem 2.1 proof relies on; the engine uses it in tests and exposes it
/// for tooling over expansion strings.
pub fn minimize(atoms: &[Atom], distinguished: &[Sym]) -> Vec<Atom> {
    let mut current: Vec<Atom> = atoms.to_vec();
    loop {
        let mut dropped = None;
        for i in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            // Dropping an atom weakens the query; the reduced query is
            // equivalent iff its results are contained in the original's,
            // i.e. the original folds into the candidate.
            if contained_in(&current, &candidate, distinguished) {
                dropped = Some(i);
                break;
            }
        }
        match dropped {
            Some(i) => {
                current.remove(i);
            }
            None => return current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;
    use crate::pretty::atom_to_string;

    fn buys_def(i: &mut Interner) -> RecursiveDef {
        let p = parse_program(
            "buys(X, Y) :- f(X, W), buys(W, Y).\n\
             buys(X, Y) :- g(X, W), buys(W, Y).\n\
             buys(X, Y) :- p(X, Y).\n",
            i,
        )
        .unwrap();
        let buys = i.intern("buys");
        RecursiveDef::extract(&p, buys, i).unwrap()
    }

    #[test]
    fn expansion_counts_match_example_2_1() {
        // With two recursive rules, depth d contributes 2^d strings; the
        // paper's Example 2.1 lists 1 + 2 + 4 strings through depth 2.
        let mut i = Interner::new();
        let def = buys_def(&mut i);
        let strings = Expansion::new(&def, &mut i).strings_to_depth(2);
        assert_eq!(strings.len(), 1 + 2 + 4);
        // Depth-0 string is just the exit body.
        let zero = strings.iter().find(|s| s.derivation.is_empty()).unwrap();
        assert_eq!(zero.atoms.len(), 1);
        // A depth-2 string has two nonrecursive atoms plus the exit body.
        let two = strings.iter().find(|s| s.derivation.len() == 2).unwrap();
        assert_eq!(two.atoms.len(), 3);
    }

    #[test]
    fn expansion_chains_variables() {
        let mut i = Interner::new();
        let def = buys_def(&mut i);
        let strings = Expansion::new(&def, &mut i).strings_to_depth(2);
        let s = strings.iter().find(|s| s.derivation == vec![0, 1]).unwrap();
        // f(D0, W0) g(W0, W1) p(W1, D1): adjacent atoms share a variable.
        assert_eq!(s.atoms.len(), 3);
        for pair in s.atoms.windows(2) {
            assert!(
                pair[0].shares_var_with(&pair[1]),
                "{} !~ {}",
                atom_to_string(&pair[0], &i),
                atom_to_string(&pair[1], &i)
            );
        }
        // First atom starts at the first distinguished variable.
        assert_eq!(s.atoms[0].terms[0], Term::Var(s.distinguished[0]));
        // Last atom ends at the second distinguished variable.
        assert_eq!(s.atoms[2].terms[1], Term::Var(s.distinguished[1]));
    }

    #[test]
    fn derivation_projection() {
        let mut i = Interner::new();
        let def = buys_def(&mut i);
        let strings = Expansion::new(&def, &mut i).strings_to_depth(3);
        let s = strings.iter().find(|s| s.derivation == vec![0, 1, 0]).unwrap();
        assert_eq!(s.derivation_projected(&[0]), vec![0, 0]);
        assert_eq!(s.derivation_projected(&[1]), vec![1]);
        assert_eq!(s.derivation_projected(&[0, 1]), vec![0, 1, 0]);
    }

    #[test]
    fn containment_mapping_basics() {
        let mut i = Interner::new();
        let p = parse_program(
            "q1(X) :- e(X, Y), e(Y, Z).\n\
             q2(X) :- e(X, Y), e(Y, Y).\n",
            &mut i,
        )
        .unwrap();
        let s1: Vec<Atom> = p.rules[0].body_atoms().cloned().collect();
        let s2: Vec<Atom> = p.rules[1].body_atoms().cloned().collect();
        let x = i.intern("X");
        // q2 ⊆ q1: map Y->Y, Z->Y.
        assert!(contained_in(&s1, &s2, &[x]));
        // q1 ⊄ q2 — wait, actually e(X,Y),e(Y,Z) maps onto e(X,Y),e(Y,Y)?
        // That IS the direction above. The reverse requires mapping e(Y,Y)
        // onto a self-loop in s1, which fails.
        assert!(!contained_in(&s2, &s1, &[x]));
        assert!(!equivalent(&s1, &s2, &[x]));
    }

    #[test]
    fn containment_respects_constants_and_distinguished() {
        let mut i = Interner::new();
        let p = parse_program(
            "q1(X) :- e(X, tom).\n\
             q2(X) :- e(X, Y).\n",
            &mut i,
        )
        .unwrap();
        let s1: Vec<Atom> = p.rules[0].body_atoms().cloned().collect();
        let s2: Vec<Atom> = p.rules[1].body_atoms().cloned().collect();
        let x = i.intern("X");
        // s2 is more general: s2's Y can map to tom, so q1 ⊆ q2 i.e.
        // contained_in(s2_pattern onto s1)...
        assert!(contained_in(&s2, &s1, &[x]));
        assert!(!contained_in(&s1, &s2, &[x]));
    }

    /// Theorem 2.1 sanity check: for the (separable) two-rule `buys`
    /// recursion, strings whose derivations are permutations *within the
    /// single equivalence class* are equivalent only when the projected
    /// sequences match. Here both rules are in one class, so [0,1] and
    /// [1,0] are *different* projections and the strings differ; but any
    /// string equals itself under renaming of nondistinguished vars.
    #[test]
    fn theorem_2_1_shape() {
        let mut i = Interner::new();
        let def = buys_def(&mut i);
        let strings = Expansion::new(&def, &mut i).strings_to_depth(2);
        let s01 = strings.iter().find(|s| s.derivation == vec![0, 1]).unwrap();
        let s10 = strings.iter().find(|s| s.derivation == vec![1, 0]).unwrap();
        assert!(equivalent(&s01.atoms, &s01.atoms, &s01.distinguished));
        assert!(!equivalent(&s01.atoms, &s10.atoms, &s01.distinguished));
    }

    #[test]
    fn minimize_drops_redundant_atoms() {
        let mut i = Interner::new();
        // e(X, Y), e(X, Z): Z can fold onto Y -> one atom.
        let p = parse_program("q(X) :- e(X, Y), e(X, Z).\n", &mut i).unwrap();
        let atoms: Vec<Atom> = p.rules[0].body_atoms().cloned().collect();
        let x = i.intern("X");
        let min = minimize(&atoms, &[x]);
        assert_eq!(min.len(), 1);
    }

    #[test]
    fn minimize_keeps_a_real_path() {
        let mut i = Interner::new();
        // A 2-step path query has no redundant atom.
        let p = parse_program("q(X) :- e(X, Y), e(Y, Z).\n", &mut i).unwrap();
        let atoms: Vec<Atom> = p.rules[0].body_atoms().cloned().collect();
        let x = i.intern("X");
        let min = minimize(&atoms, &[x]);
        assert_eq!(min.len(), 2);
    }

    #[test]
    fn minimize_folds_path_onto_self_loop() {
        let mut i = Interner::new();
        // e(X, Y), e(Y, Y): the first atom folds into the loop only if X
        // is nondistinguished; with X distinguished both stay.
        let p = parse_program("q(X) :- e(X, Y), e(Y, Y).\n", &mut i).unwrap();
        let atoms: Vec<Atom> = p.rules[0].body_atoms().cloned().collect();
        let x = i.intern("X");
        assert_eq!(minimize(&atoms, &[x]).len(), 2);
        // Without distinguished variables everything folds onto the loop.
        assert_eq!(minimize(&atoms, &[]).len(), 1);
    }

    #[test]
    fn minimize_result_is_equivalent() {
        let mut i = Interner::new();
        let p = parse_program("q(X) :- e(X, Y), e(X, Z), f(Z, W), f(Z, W2), e(X, c).\n", &mut i)
            .unwrap();
        let atoms: Vec<Atom> = p.rules[0].body_atoms().cloned().collect();
        let x = i.intern("X");
        let min = minimize(&atoms, &[x]);
        assert!(min.len() < atoms.len());
        assert!(equivalent(&atoms, &min, &[x]));
    }

    /// For a genuinely two-class recursion (Example 1.2 shape), strings that
    /// interleave the classes differently but preserve each projection are
    /// equivalent — the heart of Theorem 2.1.
    #[test]
    fn theorem_2_1_two_classes() {
        let mut i = Interner::new();
        let p = parse_program(
            "t(X, Y) :- f(X, W), t(W, Y).\n\
             t(X, Y) :- t(X, W), c(Y, W).\n\
             t(X, Y) :- p(X, Y).\n",
            &mut i,
        )
        .unwrap();
        let t = i.intern("t");
        let def = RecursiveDef::extract(&p, t, &i).unwrap();
        let strings = Expansion::new(&def, &mut i).strings_to_depth(2);
        let s01 = strings.iter().find(|s| s.derivation == vec![0, 1]).unwrap();
        let s10 = strings.iter().find(|s| s.derivation == vec![1, 0]).unwrap();
        // D_1 = [0] and D_2 = [1] in both; Theorem 2.1 says same relation.
        assert!(
            equivalent(&s01.atoms, &s10.atoms, &s01.distinguished),
            "interleavings with equal class projections must be equivalent"
        );
    }
}
