//! Atoms: predicate instances over terms.

use crate::symbol::Sym;
use crate::term::Term;

/// A predicate instance, e.g. `buys(X, Y)` or `friend(tom, W)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The predicate symbol.
    pub pred: Sym,
    /// The argument terms, in order.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom from a predicate and its arguments.
    pub fn new(pred: Sym, terms: Vec<Term>) -> Self {
        Atom { pred, terms }
    }

    /// The number of arguments.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over the distinct variables of this atom, in first-occurrence
    /// order.
    pub fn vars(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// Whether `var` occurs among the arguments.
    pub fn contains_var(&self, var: Sym) -> bool {
        self.terms.iter().any(|t| t.as_var() == Some(var))
    }

    /// All argument positions (0-based) at which `var` occurs.
    pub fn positions_of(&self, var: Sym) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (t.as_var() == Some(var)).then_some(i))
            .collect()
    }

    /// Whether the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_const)
    }

    /// Whether two atoms share at least one variable.
    pub fn shares_var_with(&self, other: &Atom) -> bool {
        self.terms.iter().any(|t| match t {
            Term::Var(v) => other.contains_var(*v),
            Term::Const(_) => false,
        })
    }

    /// Applies a variable substitution to every argument.
    pub fn substitute(&self, subst: &impl Fn(Sym) -> Option<Term>) -> Atom {
        Atom { pred: self.pred, terms: self.terms.iter().map(|t| t.substitute(subst)).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Interner;

    fn setup() -> (Interner, Atom) {
        let mut i = Interner::new();
        let p = i.intern("p");
        let x = i.intern("X");
        let y = i.intern("Y");
        let tom = i.intern("tom");
        let atom = Atom::new(p, vec![Term::Var(x), Term::sym(tom), Term::Var(y), Term::Var(x)]);
        (i, atom)
    }

    #[test]
    fn vars_are_deduplicated_in_order() {
        let (mut i, atom) = setup();
        let x = i.intern("X");
        let y = i.intern("Y");
        assert_eq!(atom.vars(), vec![x, y]);
    }

    #[test]
    fn positions_of_finds_all_occurrences() {
        let (mut i, atom) = setup();
        let x = i.intern("X");
        assert_eq!(atom.positions_of(x), vec![0, 3]);
        let z = i.intern("Z");
        assert!(atom.positions_of(z).is_empty());
        assert!(atom.contains_var(x));
        assert!(!atom.contains_var(z));
    }

    #[test]
    fn ground_and_sharing() {
        let mut i = Interner::new();
        let p = i.intern("p");
        let q = i.intern("q");
        let x = i.intern("X");
        let a = i.intern("a");
        let ground = Atom::new(p, vec![Term::sym(a), Term::int(1)]);
        assert!(ground.is_ground());
        let with_x = Atom::new(q, vec![Term::Var(x)]);
        assert!(!with_x.is_ground());
        assert!(!ground.shares_var_with(&with_x));
        let also_x = Atom::new(p, vec![Term::Var(x), Term::sym(a)]);
        assert!(with_x.shares_var_with(&also_x));
    }

    #[test]
    fn substitute_rewrites_arguments() {
        let (mut i, atom) = setup();
        let x = i.intern("X");
        let bob = i.intern("bob");
        let out = atom.substitute(&|v| (v == x).then_some(Term::sym(bob)));
        assert_eq!(out.terms[0], Term::sym(bob));
        assert_eq!(out.terms[3], Term::sym(bob));
        assert_eq!(out.terms[2], atom.terms[2]);
    }
}
