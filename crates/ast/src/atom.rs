//! Atoms: predicate instances over terms.

use crate::span::Span;
use crate::symbol::Sym;
use crate::term::Term;

/// A predicate instance, e.g. `buys(X, Y)` or `friend(tom, W)`.
///
/// Atoms carry source spans for diagnostics — one for the whole atom and
/// one per argument term. Spans never participate in equality or hashing,
/// so rectified, standardized, or programmatically built atoms compare
/// equal to parsed ones.
#[derive(Debug, Clone)]
pub struct Atom {
    /// The predicate symbol.
    pub pred: Sym,
    /// The argument terms, in order.
    pub terms: Vec<Term>,
    /// Source span of the whole atom ([`Span::DUMMY`] when synthesized).
    pub span: Span,
    /// Source span of each argument term, parallel to `terms` (empty when
    /// synthesized).
    pub term_spans: Vec<Span>,
}

impl PartialEq for Atom {
    fn eq(&self, other: &Self) -> bool {
        self.pred == other.pred && self.terms == other.terms
    }
}

impl Eq for Atom {}

impl std::hash::Hash for Atom {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.pred.hash(state);
        self.terms.hash(state);
    }
}

impl Atom {
    /// Creates an atom from a predicate and its arguments (no source span).
    pub fn new(pred: Sym, terms: Vec<Term>) -> Self {
        Atom { pred, terms, span: Span::DUMMY, term_spans: Vec::new() }
    }

    /// Creates an atom with full source location information.
    pub fn with_spans(pred: Sym, terms: Vec<Term>, span: Span, term_spans: Vec<Span>) -> Self {
        debug_assert!(term_spans.is_empty() || term_spans.len() == terms.len());
        Atom { pred, terms, span, term_spans }
    }

    /// The span of argument `i`, falling back to the atom span when the
    /// term has no recorded location.
    pub fn term_span(&self, i: usize) -> Span {
        self.term_spans.get(i).copied().unwrap_or(Span::DUMMY).or(self.span)
    }

    /// The number of arguments.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over the distinct variables of this atom, in first-occurrence
    /// order.
    pub fn vars(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// Whether `var` occurs among the arguments.
    pub fn contains_var(&self, var: Sym) -> bool {
        self.terms.iter().any(|t| t.as_var() == Some(var))
    }

    /// All argument positions (0-based) at which `var` occurs.
    pub fn positions_of(&self, var: Sym) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (t.as_var() == Some(var)).then_some(i))
            .collect()
    }

    /// Whether the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_const)
    }

    /// Whether two atoms share at least one variable.
    pub fn shares_var_with(&self, other: &Atom) -> bool {
        self.terms.iter().any(|t| match t {
            Term::Var(v) => other.contains_var(*v),
            Term::Const(_) => false,
        })
    }

    /// Applies a variable substitution to every argument, preserving source
    /// spans (a substituted argument keeps the span of the term it replaced).
    pub fn substitute(&self, subst: &impl Fn(Sym) -> Option<Term>) -> Atom {
        Atom {
            pred: self.pred,
            terms: self.terms.iter().map(|t| t.substitute(subst)).collect(),
            span: self.span,
            term_spans: self.term_spans.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Interner;

    fn setup() -> (Interner, Atom) {
        let mut i = Interner::new();
        let p = i.intern("p");
        let x = i.intern("X");
        let y = i.intern("Y");
        let tom = i.intern("tom");
        let atom = Atom::new(p, vec![Term::Var(x), Term::sym(tom), Term::Var(y), Term::Var(x)]);
        (i, atom)
    }

    #[test]
    fn vars_are_deduplicated_in_order() {
        let (mut i, atom) = setup();
        let x = i.intern("X");
        let y = i.intern("Y");
        assert_eq!(atom.vars(), vec![x, y]);
    }

    #[test]
    fn positions_of_finds_all_occurrences() {
        let (mut i, atom) = setup();
        let x = i.intern("X");
        assert_eq!(atom.positions_of(x), vec![0, 3]);
        let z = i.intern("Z");
        assert!(atom.positions_of(z).is_empty());
        assert!(atom.contains_var(x));
        assert!(!atom.contains_var(z));
    }

    #[test]
    fn ground_and_sharing() {
        let mut i = Interner::new();
        let p = i.intern("p");
        let q = i.intern("q");
        let x = i.intern("X");
        let a = i.intern("a");
        let ground = Atom::new(p, vec![Term::sym(a), Term::int(1)]);
        assert!(ground.is_ground());
        let with_x = Atom::new(q, vec![Term::Var(x)]);
        assert!(!with_x.is_ground());
        assert!(!ground.shares_var_with(&with_x));
        let also_x = Atom::new(p, vec![Term::Var(x), Term::sym(a)]);
        assert!(with_x.shares_var_with(&also_x));
    }

    #[test]
    fn spans_do_not_affect_equality_or_hashing() {
        use crate::span::Span;
        let (_, plain) = setup();
        let spanned = Atom::with_spans(
            plain.pred,
            plain.terms.clone(),
            Span::new(0, 10),
            vec![Span::new(2, 3); plain.terms.len()],
        );
        assert_eq!(plain, spanned);
        let mut set = std::collections::HashSet::new();
        set.insert(plain.clone());
        assert!(set.contains(&spanned));
        assert_eq!(spanned.term_span(1), Span::new(2, 3));
        // Missing per-term spans fall back to the atom span.
        let atom_only = Atom::with_spans(plain.pred, plain.terms.clone(), Span::new(5, 9), vec![]);
        assert_eq!(atom_only.term_span(0), Span::new(5, 9));
        assert!(plain.term_span(0).is_dummy());
    }

    #[test]
    fn substitute_preserves_spans() {
        use crate::span::Span;
        let (mut i, plain) = setup();
        let x = i.intern("X");
        let bob = i.intern("bob");
        let spanned = Atom::with_spans(
            plain.pred,
            plain.terms.clone(),
            Span::new(0, 10),
            (0..plain.terms.len()).map(|k| Span::new(k, k + 1)).collect(),
        );
        let out = spanned.substitute(&|v| (v == x).then_some(Term::sym(bob)));
        assert_eq!(out.span, Span::new(0, 10));
        assert_eq!(out.term_span(3), Span::new(3, 4));
    }

    #[test]
    fn substitute_rewrites_arguments() {
        let (mut i, atom) = setup();
        let x = i.intern("X");
        let bob = i.intern("bob");
        let out = atom.substitute(&|v| (v == x).then_some(Term::sym(bob)));
        assert_eq!(out.terms[0], Term::sym(bob));
        assert_eq!(out.terms[3], Term::sym(bob));
        assert_eq!(out.terms[2], atom.terms[2]);
    }
}
