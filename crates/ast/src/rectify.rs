//! Rule rectification and head standardization.
//!
//! The paper (Section 3.3, following Ullman) assumes *rectified* rules: all
//! rule heads of a definition are identical and contain no repeated
//! variables and no constants. [`rectify_rule`] removes head constants and
//! repeated head variables by introducing fresh variables constrained with
//! body equalities; [`standardize_head`] alpha-renames a rectified rule so
//! its head uses a caller-chosen canonical variable vector.

use crate::atom::Atom;
use crate::rule::{Literal, Rule};
use crate::symbol::{Interner, Sym};
use crate::term::Term;

/// Whether a rule head is rectified: every argument is a variable and no
/// variable repeats.
pub fn is_head_rectified(rule: &Rule) -> bool {
    let mut seen = Vec::new();
    for t in &rule.head.terms {
        match t {
            Term::Var(v) => {
                if seen.contains(v) {
                    return false;
                }
                seen.push(*v);
            }
            Term::Const(_) => return false,
        }
    }
    true
}

/// Rectifies a rule: head constants become fresh variables equated to the
/// constant in the body, and repeated head variables become fresh variables
/// equated to the first occurrence.
///
/// `t(X, X) :- b(X).` becomes `t(X, V) :- b(X), V = X.`
/// `t(tom, Y) :- b(Y).` becomes `t(V, Y) :- b(Y), V = tom.`
///
/// Already-rectified rules are returned unchanged (no fresh symbols are
/// interned).
pub fn rectify_rule(rule: &Rule, interner: &mut Interner) -> Rule {
    if is_head_rectified(rule) {
        return rule.clone();
    }
    let mut seen: Vec<Sym> = Vec::new();
    let mut new_terms = Vec::with_capacity(rule.head.arity());
    let mut extra: Vec<Literal> = Vec::new();
    for t in &rule.head.terms {
        match t {
            Term::Var(v) if !seen.contains(v) => {
                seen.push(*v);
                new_terms.push(*t);
            }
            Term::Var(v) => {
                let fresh = fresh_var(interner, rule, &seen);
                seen.push(fresh);
                new_terms.push(Term::Var(fresh));
                extra.push(Literal::Eq(Term::Var(fresh), Term::Var(*v)));
            }
            Term::Const(c) => {
                let fresh = fresh_var(interner, rule, &seen);
                seen.push(fresh);
                new_terms.push(Term::Var(fresh));
                extra.push(Literal::Eq(Term::Var(fresh), Term::Const(*c)));
            }
        }
    }
    let mut body = rule.body.clone();
    body.extend(extra);
    // Fresh head variables stand in for the original terms at the same
    // positions, so the head keeps its span and per-term spans verbatim.
    let head =
        Atom::with_spans(rule.head.pred, new_terms, rule.head.span, rule.head.term_spans.clone());
    let mut out = Rule::with_span(head, body, rule.span);
    out.agg = rule.agg.clone();
    out
}

/// Rectifies every rule of a program.
pub fn rectify_program(
    program: &crate::program::Program,
    interner: &mut Interner,
) -> crate::program::Program {
    crate::program::Program::new(program.rules.iter().map(|r| rectify_rule(r, interner)).collect())
}

fn fresh_var(interner: &mut Interner, rule: &Rule, also_avoid: &[Sym]) -> Sym {
    let used = rule.vars();
    let mut i = 0u64;
    loop {
        let name = format!("V_{i}");
        let sym = interner.intern(&name);
        if !used.contains(&sym) && !also_avoid.contains(&sym) {
            return sym;
        }
        i += 1;
    }
}

/// Alpha-renames a rectified rule so its head argument vector is exactly
/// `canon` (one distinct variable per position).
///
/// Body-only variables that collide with a canonical name are first renamed
/// to fresh variables so no capture occurs. The result's head is
/// `pred(canon[0], ..., canon[k-1])`.
///
/// # Panics
/// Panics if the rule head is not rectified or if `canon` has the wrong
/// length or repeated names.
pub fn standardize_head(rule: &Rule, canon: &[Sym], interner: &mut Interner) -> Rule {
    assert!(is_head_rectified(rule), "standardize_head requires a rectified head");
    assert_eq!(canon.len(), rule.head.arity(), "canonical vector arity mismatch");
    assert!(
        (1..canon.len()).all(|i| !canon[..i].contains(&canon[i])),
        "canonical vector must have distinct variables"
    );
    let head_vars: Vec<Sym> = rule
        .head
        .terms
        .iter()
        .map(|t| t.as_var().expect("rectified head has only variables"))
        .collect();

    // Step 1: move colliding body-only variables out of the way.
    let all_vars = rule.vars();
    let mut working = rule.clone();
    for &c in canon {
        if all_vars.contains(&c) && !head_vars.contains(&c) {
            let fresh = interner.fresh(&format!("{}_r", interner_name(interner, c)));
            working = working.substitute(&|v| (v == c).then_some(Term::Var(fresh)));
        }
    }

    // Step 2: also protect head variables that appear in `canon` at a
    // *different* position (a swap like head (X, Y) -> canon (Y, X) must not
    // collapse variables). Rename each head var to a unique placeholder
    // first, then to its canonical name.
    let placeholders: Vec<Sym> = head_vars
        .iter()
        .map(|&v| interner.fresh(&format!("{}_p", interner_name(interner, v))))
        .collect();
    let head_vars2: Vec<Sym> =
        working.head.terms.iter().map(|t| t.as_var().expect("rectified head")).collect();
    working = working.substitute(&|v| {
        head_vars2.iter().position(|&h| h == v).map(|i| Term::Var(placeholders[i]))
    });
    working = working
        .substitute(&|v| placeholders.iter().position(|&p| p == v).map(|i| Term::Var(canon[i])));
    working
}

fn interner_name(interner: &Interner, sym: Sym) -> String {
    interner.resolve(sym).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;
    use crate::pretty::rule_to_string;

    fn first_rule(src: &str, i: &mut Interner) -> Rule {
        parse_program(src, i).unwrap().rules.remove(0)
    }

    #[test]
    fn already_rectified_is_unchanged() {
        let mut i = Interner::new();
        let r = first_rule("t(X, Y) :- a(X, W), t(W, Y).\n", &mut i);
        assert!(is_head_rectified(&r));
        assert_eq!(rectify_rule(&r, &mut i), r);
    }

    #[test]
    fn repeated_head_var_gets_equality() {
        let mut i = Interner::new();
        let r = first_rule("t(X, X) :- b(X).\n", &mut i);
        assert!(!is_head_rectified(&r));
        let rect = rectify_rule(&r, &mut i);
        assert!(is_head_rectified(&rect));
        assert_eq!(rect.body.len(), 2);
        assert!(matches!(rect.body[1], Literal::Eq(..)));
        assert!(rect.is_safe());
    }

    #[test]
    fn head_constant_gets_equality() {
        let mut i = Interner::new();
        let r = first_rule("t(tom, Y) :- b(Y).\n", &mut i);
        let rect = rectify_rule(&r, &mut i);
        assert!(is_head_rectified(&rect));
        let rendered = rule_to_string(&rect, &i);
        assert!(rendered.contains("= tom"), "{rendered}");
    }

    #[test]
    fn fresh_vars_avoid_rule_vars() {
        let mut i = Interner::new();
        // V_0 already used in the body; the fresh variable must differ.
        let r = first_rule("t(X, X) :- b(X, V_0).\n", &mut i);
        let rect = rectify_rule(&r, &mut i);
        let head_vars = rect.head.vars();
        let v0 = i.intern("V_0");
        assert!(!head_vars.contains(&v0) || r.head.vars().contains(&v0));
        assert!(is_head_rectified(&rect));
    }

    #[test]
    fn standardize_renames_head_and_body() {
        let mut i = Interner::new();
        let r = first_rule("t(A, B) :- a(A, W), t(W, B).\n", &mut i);
        let x = i.intern("X");
        let y = i.intern("Y");
        let std = standardize_head(&r, &[x, y], &mut i);
        assert_eq!(std.head.terms, vec![Term::Var(x), Term::Var(y)]);
        // Body occurrences renamed consistently.
        let a_atom = std.body_atoms().next().unwrap();
        assert_eq!(a_atom.terms[0], Term::Var(x));
        let rec = std.body_atoms().nth(1).unwrap();
        assert_eq!(rec.terms[1], Term::Var(y));
    }

    #[test]
    fn standardize_handles_collisions() {
        let mut i = Interner::new();
        // Body uses Y for something else; canon head is (Y, X): both a swap
        // and a collision at once.
        let r = first_rule("t(X, Z) :- a(X, Y), b(Y, Z).\n", &mut i);
        let y = i.intern("Y");
        let x = i.intern("X");
        let std = standardize_head(&r, &[y, x], &mut i);
        assert_eq!(std.head.terms, vec![Term::Var(y), Term::Var(x)]);
        // The old body Y must have been renamed away from Y.
        let a_atom = std.body_atoms().next().unwrap();
        assert_eq!(a_atom.terms[0], Term::Var(y)); // old X -> Y
        assert_ne!(a_atom.terms[1], Term::Var(y)); // old Y moved aside
        assert_ne!(a_atom.terms[1], Term::Var(x));
        // Joins remain intact: a.1 == b.0.
        let b_atom = std.body_atoms().nth(1).unwrap();
        assert_eq!(a_atom.terms[1], b_atom.terms[0]);
        assert_eq!(b_atom.terms[1], Term::Var(x)); // old Z -> X
    }

    #[test]
    fn standardize_swap_does_not_collapse() {
        let mut i = Interner::new();
        let r = first_rule("t(X, Y) :- e(X, Y).\n", &mut i);
        let x = i.intern("X");
        let y = i.intern("Y");
        let std = standardize_head(&r, &[y, x], &mut i);
        assert_eq!(std.head.terms, vec![Term::Var(y), Term::Var(x)]);
        let e_atom = std.body_atoms().next().unwrap();
        assert_eq!(e_atom.terms, vec![Term::Var(y), Term::Var(x)]);
    }

    #[test]
    fn rectify_program_covers_all_rules() {
        let mut i = Interner::new();
        let p = parse_program("t(X, X) :- b(X).\nt(a, Y) :- c(Y).\n", &mut i).unwrap();
        let rect = rectify_program(&p, &mut i);
        assert!(rect.rules.iter().all(is_head_rectified));
        assert_eq!(rect.rules.len(), 2);
    }
}
