//! Source spans: half-open byte ranges into the source text a node was
//! parsed from.
//!
//! Spans exist for diagnostics only. They are carried alongside the AST
//! (every [`Atom`](crate::Atom) and [`Rule`](crate::Rule) records where it
//! came from, including one span per argument term) but never participate
//! in equality or hashing, so synthesized nodes — rectification equalities,
//! canonical heads, rewrite output — compare identical to parsed ones.
//! Synthesized nodes carry [`Span::DUMMY`]; consumers fall back to an
//! enclosing span when a node has none.

/// A half-open byte range `[start, end)` into a source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: u32,
    /// Byte offset one past the last byte.
    pub end: u32,
}

impl Span {
    /// The span of a node with no source location (synthesized by
    /// rectification, rewrites, or programmatic construction).
    pub const DUMMY: Span = Span { start: u32::MAX, end: u32::MAX };

    /// Creates a span from byte offsets.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start: start as u32, end: end as u32 }
    }

    /// Whether this span carries no real location.
    pub fn is_dummy(&self) -> bool {
        *self == Span::DUMMY
    }

    /// The smallest span covering both `self` and `other`; dummy spans are
    /// absorbed.
    pub fn merge(self, other: Span) -> Span {
        match (self.is_dummy(), other.is_dummy()) {
            (true, _) => other,
            (_, true) => self,
            _ => Span { start: self.start.min(other.start), end: self.end.max(other.end) },
        }
    }

    /// Replaces a dummy span with `fallback`.
    pub fn or(self, fallback: Span) -> Span {
        if self.is_dummy() {
            fallback
        } else {
            self
        }
    }

    /// Length in bytes (zero for dummy spans).
    pub fn len(&self) -> usize {
        if self.is_dummy() {
            0
        } else {
            (self.end - self.start) as usize
        }
    }

    /// Whether the span is empty (or dummy).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A 1-based line/column position, derived from a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in bytes; source is ASCII-oriented Datalog).
    pub col: usize,
}

/// Computes the 1-based line/column of byte `offset` within `src`.
///
/// Offsets past the end clamp to the end of the text.
pub fn line_col(src: &str, offset: usize) -> LineCol {
    let offset = offset.min(src.len());
    let before = &src.as_bytes()[..offset];
    let line = 1 + before.iter().filter(|&&b| b == b'\n').count();
    let col = 1 + offset - before.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    LineCol { line, col }
}

/// Returns the full text of the (1-based) line containing byte `offset`,
/// without its trailing newline.
pub fn line_text(src: &str, offset: usize) -> &str {
    let offset = offset.min(src.len());
    let start = src.as_bytes()[..offset].iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    let end =
        src.as_bytes()[offset..].iter().position(|&b| b == b'\n').map_or(src.len(), |p| offset + p);
    &src[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_is_absorbed_by_merge() {
        let s = Span::new(3, 9);
        assert_eq!(Span::DUMMY.merge(s), s);
        assert_eq!(s.merge(Span::DUMMY), s);
        assert!(Span::DUMMY.merge(Span::DUMMY).is_dummy());
        assert_eq!(Span::new(1, 4).merge(Span::new(2, 8)), Span::new(1, 8));
    }

    #[test]
    fn or_falls_back_only_on_dummy() {
        let s = Span::new(3, 9);
        assert_eq!(Span::DUMMY.or(s), s);
        assert_eq!(Span::new(0, 1).or(s), Span::new(0, 1));
    }

    #[test]
    fn line_col_is_one_based() {
        let src = "abc\ndef\ngh";
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(src, 2), LineCol { line: 1, col: 3 });
        assert_eq!(line_col(src, 4), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(src, 9), LineCol { line: 3, col: 2 });
        // Past the end clamps.
        assert_eq!(line_col(src, 99), LineCol { line: 3, col: 3 });
    }

    #[test]
    fn line_text_extracts_whole_lines() {
        let src = "abc\ndef\ngh";
        assert_eq!(line_text(src, 0), "abc");
        assert_eq!(line_text(src, 5), "def");
        assert_eq!(line_text(src, 8), "gh");
        assert_eq!(line_text(src, 99), "gh");
    }

    #[test]
    fn span_len() {
        assert_eq!(Span::new(2, 7).len(), 5);
        assert_eq!(Span::DUMMY.len(), 0);
        assert!(Span::DUMMY.is_empty());
        assert!(!Span::new(2, 7).is_empty());
    }
}
