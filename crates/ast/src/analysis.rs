//! Program analysis: dependency graphs, recursion structure, and extraction
//! of the paper's assumed program shape.
//!
//! Section 2 of the paper considers a recursive predicate `t` defined by one
//! or more *linear* recursive rules plus nonrecursive (exit) rules, where the
//! other predicates do not depend on `t`. [`RecursiveDef::extract`] validates
//! exactly these assumptions for a given predicate, and
//! [`DependencyGraph`] provides the general machinery (edges, strongly
//! connected components, stratification order) used by the evaluators.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::AstError;
use crate::program::Program;
use crate::rule::Rule;
use crate::symbol::{Interner, Sym};

/// Classification of a predicate within a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateInfo {
    /// The predicate.
    pub pred: Sym,
    /// Its arity.
    pub arity: usize,
    /// Whether it appears in some rule head (IDB) — facts do not count as
    /// rule heads for this purpose unless the predicate also heads a proper
    /// rule.
    pub is_idb: bool,
    /// Whether it is recursive (reaches itself in the dependency graph).
    pub is_recursive: bool,
}

/// The predicate dependency graph of a program: an edge `p -> q` exists when
/// `q` appears in the body of a rule whose head is `p`.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    preds: Vec<Sym>,
    index: BTreeMap<Sym, usize>,
    edges: Vec<BTreeSet<usize>>,
    /// For each node, its strongly connected component id; components are
    /// numbered in reverse topological order (callees before callers).
    scc_of: Vec<usize>,
    scc_count: usize,
}

impl DependencyGraph {
    /// Builds the dependency graph of `program`.
    pub fn build(program: &Program) -> Self {
        let preds = program.predicates();
        let index: BTreeMap<Sym, usize> = preds.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let mut edges = vec![BTreeSet::new(); preds.len()];
        for rule in &program.rules {
            let from = index[&rule.head.pred];
            for atom in rule.body_atoms() {
                edges[from].insert(index[&atom.pred]);
            }
            // Negated atoms are dependencies too: their predicate must be
            // complete before the head's stratum runs, so the SCC order
            // places them earlier. (Polarity-aware stratification lives in
            // the sepra-strata crate; this graph only fixes the order.)
            for atom in rule.negated_atoms() {
                edges[from].insert(index[&atom.pred]);
            }
        }
        let (scc_of, scc_count) = tarjan(&edges);
        DependencyGraph { preds, index, edges, scc_of, scc_count }
    }

    /// The predicates, in first-occurrence order.
    pub fn predicates(&self) -> &[Sym] {
        &self.preds
    }

    /// Whether `p` depends (directly or transitively) on `q`.
    pub fn depends_on(&self, p: Sym, q: Sym) -> bool {
        let (Some(&pi), Some(&qi)) = (self.index.get(&p), self.index.get(&q)) else {
            return false;
        };
        // DFS from p.
        let mut seen = vec![false; self.preds.len()];
        let mut stack = vec![pi];
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            if n == qi && n != pi {
                return true;
            }
            for &m in &self.edges[n] {
                if m == qi {
                    return true;
                }
                if !seen[m] {
                    stack.push(m);
                }
            }
        }
        false
    }

    /// Whether `p` is recursive (possibly through other predicates).
    pub fn is_recursive(&self, p: Sym) -> bool {
        self.depends_on(p, p)
    }

    /// Whether `p` and `q` are mutually recursive (same nontrivial SCC).
    pub fn mutually_recursive(&self, p: Sym, q: Sym) -> bool {
        let (Some(&pi), Some(&qi)) = (self.index.get(&p), self.index.get(&q)) else {
            return false;
        };
        self.scc_of[pi] == self.scc_of[qi] && (pi == qi || self.is_recursive(p))
    }

    /// Groups predicates into strongly connected components, returned in
    /// dependency order (a component only depends on earlier components).
    /// This is the evaluation order used by the bottom-up engine.
    pub fn strata(&self) -> Vec<Vec<Sym>> {
        let mut groups: Vec<Vec<Sym>> = vec![Vec::new(); self.scc_count];
        for (i, &scc) in self.scc_of.iter().enumerate() {
            groups[scc].push(self.preds[i]);
        }
        groups
    }

    /// Classifies every predicate of `program`.
    pub fn classify(&self, program: &Program) -> Vec<PredicateInfo> {
        let mut arities: BTreeMap<Sym, usize> = BTreeMap::new();
        let mut idb: BTreeSet<Sym> = BTreeSet::new();
        for rule in &program.rules {
            arities.entry(rule.head.pred).or_insert_with(|| rule.head.arity());
            if !rule.is_fact() {
                idb.insert(rule.head.pred);
            }
            for atom in rule.body_atoms() {
                arities.entry(atom.pred).or_insert_with(|| atom.arity());
            }
            for atom in rule.negated_atoms() {
                arities.entry(atom.pred).or_insert_with(|| atom.arity());
            }
        }
        self.preds
            .iter()
            .map(|&p| PredicateInfo {
                pred: p,
                arity: arities.get(&p).copied().unwrap_or(0),
                is_idb: idb.contains(&p),
                is_recursive: self.is_recursive(p),
            })
            .collect()
    }
}

/// Tarjan's strongly-connected-components algorithm (iterative).
///
/// Returns `(scc_of, count)` where components are numbered in reverse
/// topological order: if `p` depends on `q` (and they are in different
/// components), then `scc_of[q] < scc_of[p]`.
fn tarjan(edges: &[BTreeSet<usize>]) -> (Vec<usize>, usize) {
    let n = edges.len();
    let mut index_of = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut scc_count = 0usize;

    // Explicit DFS frames: (node, neighbor iterator position).
    for root in 0..n {
        if index_of[root] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let neighbors: Vec<usize> = edges[root].iter().copied().collect();
        index_of[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, neighbors, 0));

        while let Some((node, neighbors, pos)) = frames.last_mut() {
            if let Some(&next) = neighbors.get(*pos) {
                *pos += 1;
                if index_of[next] == usize::MAX {
                    index_of[next] = next_index;
                    low[next] = next_index;
                    next_index += 1;
                    stack.push(next);
                    on_stack[next] = true;
                    let next_neighbors: Vec<usize> = edges[next].iter().copied().collect();
                    frames.push((next, next_neighbors, 0));
                } else if on_stack[next] {
                    let node = *node;
                    low[node] = low[node].min(index_of[next]);
                }
            } else {
                let node = *node;
                frames.pop();
                if let Some((parent, _, _)) = frames.last() {
                    let parent = *parent;
                    low[parent] = low[parent].min(low[node]);
                }
                if low[node] == index_of[node] {
                    // node is the root of an SCC.
                    loop {
                        let member = stack.pop().expect("scc stack underflow");
                        on_stack[member] = false;
                        scc_of[member] = scc_count;
                        if member == node {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }
    (scc_of, scc_count)
}

/// A recursive definition in the paper's shape (Section 2): a predicate `t`
/// defined by linear recursive rules `r_1..r_n` and nonrecursive exit rules,
/// where no other predicate is mutually recursive with `t`.
#[derive(Debug, Clone)]
pub struct RecursiveDef {
    /// The recursive predicate `t`.
    pub pred: Sym,
    /// Arity of `t`.
    pub arity: usize,
    /// The linear recursive rules, in source order.
    pub recursive_rules: Vec<Rule>,
    /// The nonrecursive (exit) rules, in source order. The paper assumes a
    /// single exit rule `t :- t0.`; we allow any number of nonrecursive
    /// rules and treat them as a union.
    pub exit_rules: Vec<Rule>,
}

impl RecursiveDef {
    /// Extracts and validates the definition of `pred` from `program`.
    ///
    /// Fails when `pred` has a non-linear recursive rule, is mutually
    /// recursive with another predicate, or has no exit rule.
    pub fn extract(
        program: &Program,
        pred: Sym,
        interner: &Interner,
    ) -> Result<RecursiveDef, AstError> {
        let graph = DependencyGraph::build(program);
        let name = || interner.resolve(pred).to_string();
        let def: Vec<&Rule> = program.definition_of(pred);
        if def.is_empty() {
            return Err(AstError::UnsupportedProgram {
                msg: format!("predicate `{}` has no defining rules", name()),
            });
        }
        let arity = def[0].head.arity();
        // Mutual recursion through other predicates.
        for other in graph.predicates() {
            if *other != pred && graph.depends_on(pred, *other) && graph.depends_on(*other, pred) {
                return Err(AstError::UnsupportedProgram {
                    msg: format!(
                        "`{}` is mutually recursive with `{}`; the paper's class excludes \
                         mutually recursive predicates",
                        name(),
                        interner.resolve(*other)
                    ),
                });
            }
        }
        let mut recursive_rules = Vec::new();
        let mut exit_rules = Vec::new();
        for rule in def {
            if rule.agg.is_some() || rule.negated_atoms().next().is_some() {
                return Err(AstError::UnsupportedProgram {
                    msg: format!(
                        "rule `{}` uses negation or aggregation; the paper's class covers \
                         pure positive linear recursions",
                        crate::pretty::rule_to_string(rule, interner)
                    ),
                });
            }
            if rule.is_recursive_in(pred) {
                if !rule.is_linear_recursive_in(pred) {
                    return Err(AstError::UnsupportedProgram {
                        msg: format!(
                            "rule `{}` is non-linear in `{}`",
                            crate::pretty::rule_to_string(rule, interner),
                            name()
                        ),
                    });
                }
                recursive_rules.push(rule.clone());
            } else {
                exit_rules.push(rule.clone());
            }
        }
        if exit_rules.is_empty() {
            return Err(AstError::UnsupportedProgram {
                msg: format!("`{}` has no nonrecursive (exit) rule", name()),
            });
        }
        Ok(RecursiveDef { pred, arity, recursive_rules, exit_rules })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn graph_of(src: &str) -> (Program, DependencyGraph, Interner) {
        let mut i = Interner::new();
        let p = parse_program(src, &mut i).unwrap();
        let g = DependencyGraph::build(&p);
        (p, g, i)
    }

    #[test]
    fn simple_recursion_is_detected() {
        let (_, g, mut i) = graph_of(
            "t(X, Y) :- a(X, W), t(W, Y).\n\
             t(X, Y) :- t0(X, Y).\n",
        );
        let t = i.intern("t");
        let a = i.intern("a");
        assert!(g.is_recursive(t));
        assert!(!g.is_recursive(a));
        assert!(g.depends_on(t, a));
        assert!(!g.depends_on(a, t));
    }

    #[test]
    fn mutual_recursion_is_detected() {
        let (_, g, mut i) = graph_of(
            "p(X) :- e(X, Y), q(Y).\n\
             q(X) :- f(X, Y), p(Y).\n\
             p(X) :- b(X).\n\
             q(X) :- c(X).\n",
        );
        let p = i.intern("p");
        let q = i.intern("q");
        assert!(g.is_recursive(p));
        assert!(g.mutually_recursive(p, q));
    }

    #[test]
    fn strata_respect_dependencies() {
        let (prog, g, mut i) = graph_of(
            "t(X, Y) :- a(X, W), t(W, Y).\n\
             t(X, Y) :- base(X, Y).\n\
             top(X) :- t(X, X).\n",
        );
        let strata = g.strata();
        let t = i.intern("t");
        let top = i.intern("top");
        let a = i.intern("a");
        let pos = |p: Sym| strata.iter().position(|s| s.contains(&p)).unwrap();
        assert!(pos(a) < pos(t));
        assert!(pos(t) < pos(top));
        let info = g.classify(&prog);
        let t_info = info.iter().find(|x| x.pred == t).unwrap();
        assert!(t_info.is_idb && t_info.is_recursive);
        let a_info = info.iter().find(|x| x.pred == a).unwrap();
        assert!(!a_info.is_idb && !a_info.is_recursive);
    }

    #[test]
    fn extract_accepts_the_paper_shape() {
        let (prog, _, mut i) = graph_of(
            "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
             buys(X, Y) :- idol(X, W), buys(W, Y).\n\
             buys(X, Y) :- perfectFor(X, Y).\n",
        );
        let buys = i.intern("buys");
        let def = RecursiveDef::extract(&prog, buys, &i).unwrap();
        assert_eq!(def.recursive_rules.len(), 2);
        assert_eq!(def.exit_rules.len(), 1);
        assert_eq!(def.arity, 2);
    }

    #[test]
    fn extract_rejects_nonlinear() {
        let (prog, _, mut i) = graph_of(
            "t(X, Y) :- t(X, Z), t(Z, Y).\n\
             t(X, Y) :- e(X, Y).\n",
        );
        let t = i.intern("t");
        let err = RecursiveDef::extract(&prog, t, &i).unwrap_err();
        assert!(matches!(err, AstError::UnsupportedProgram { .. }), "{err}");
    }

    #[test]
    fn extract_rejects_mutual_recursion() {
        let (prog, _, mut i) = graph_of(
            "p(X) :- e(X, Y), q(Y).\n\
             q(X) :- f(X, Y), p(Y).\n\
             p(X) :- b(X).\n\
             q(X) :- c(X).\n",
        );
        let p = i.intern("p");
        let err = RecursiveDef::extract(&prog, p, &i).unwrap_err();
        assert!(matches!(err, AstError::UnsupportedProgram { .. }), "{err}");
    }

    #[test]
    fn extract_rejects_missing_exit() {
        let (prog, _, mut i) = graph_of("t(X, Y) :- a(X, W), t(W, Y).\na(u, v).\n");
        let t = i.intern("t");
        assert!(RecursiveDef::extract(&prog, t, &i).is_err());
    }

    #[test]
    fn tarjan_handles_self_loop_and_chain() {
        // p -> p, p -> q, q -> r
        let edges = vec![BTreeSet::from([0usize, 1]), BTreeSet::from([2usize]), BTreeSet::new()];
        let (scc_of, count) = tarjan(&edges);
        assert_eq!(count, 3);
        // reverse topological: r before q before p
        assert!(scc_of[2] < scc_of[1]);
        assert!(scc_of[1] < scc_of[0]);
    }
}
