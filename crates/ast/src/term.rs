//! Terms: variables and constants.

use crate::symbol::Sym;

/// A constant appearing in a program, query, or fact.
///
/// The paper's programs are function-free, so constants are either symbolic
/// (`tom`, `widget_9`) or integer literals. Integers are kept distinct from
/// symbols so the Counting baseline can manipulate its `(I, J, K)` counters
/// without interning astronomically many strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Const {
    /// An interned symbolic constant.
    Sym(Sym),
    /// An integer literal.
    Int(i64),
}

/// A term: either a variable or a constant.
///
/// Variables are identified by their interned name and are scoped to the
/// rule (or query) in which they appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable, e.g. `X`.
    Var(Sym),
    /// A constant, e.g. `tom` or `42`.
    Const(Const),
}

impl Term {
    /// Convenience constructor for a symbolic constant term.
    pub fn sym(s: Sym) -> Self {
        Term::Const(Const::Sym(s))
    }

    /// Convenience constructor for an integer constant term.
    pub fn int(i: i64) -> Self {
        Term::Const(Const::Int(i))
    }

    /// Returns the variable name if this term is a variable.
    pub fn as_var(&self) -> Option<Sym> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant if this term is a constant.
    pub fn as_const(&self) -> Option<Const> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(*c),
        }
    }

    /// Whether this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Whether this term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Applies a variable substitution, leaving constants untouched and
    /// variables not in the substitution unchanged.
    pub fn substitute(&self, subst: &impl Fn(Sym) -> Option<Term>) -> Term {
        match self {
            Term::Var(v) => subst(*v).unwrap_or(*self),
            Term::Const(_) => *self,
        }
    }
}

impl From<Const> for Term {
    fn from(c: Const) -> Self {
        Term::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Interner;

    #[test]
    fn accessors() {
        let mut i = Interner::new();
        let x = i.intern("X");
        let tom = i.intern("tom");
        let v = Term::Var(x);
        let c = Term::sym(tom);
        let n = Term::int(7);
        assert_eq!(v.as_var(), Some(x));
        assert!(v.as_const().is_none());
        assert_eq!(c.as_const(), Some(Const::Sym(tom)));
        assert_eq!(n.as_const(), Some(Const::Int(7)));
        assert!(v.is_var() && !v.is_const());
        assert!(c.is_const() && !c.is_var());
    }

    #[test]
    fn substitute_replaces_only_mapped_vars() {
        let mut i = Interner::new();
        let x = i.intern("X");
        let y = i.intern("Y");
        let tom = i.intern("tom");
        let subst = |v: Sym| if v == x { Some(Term::sym(tom)) } else { None };
        assert_eq!(Term::Var(x).substitute(&subst), Term::sym(tom));
        assert_eq!(Term::Var(y).substitute(&subst), Term::Var(y));
        assert_eq!(Term::int(3).substitute(&subst), Term::int(3));
    }
}
