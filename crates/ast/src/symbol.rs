//! String interning.
//!
//! Every predicate name, constant symbol, and variable name in a program is
//! interned once into a [`Sym`], a dense `u32` handle. All later phases
//! (analysis, rewriting, evaluation) operate on handles, so comparisons are
//! integer comparisons and tuples of constants are vectors of integers.

use std::collections::HashMap;
use std::fmt;

/// An interned string handle.
///
/// `Sym`s are only meaningful relative to the [`Interner`] that produced
/// them; resolving a `Sym` against a different interner yields garbage (or a
/// panic). In practice a single interner is shared by the program, the
/// query, and the database of one engine instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The raw index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A monotone string interner.
///
/// Strings are never removed; `Sym(n)` always resolves to the `n`-th
/// distinct string interned.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<Box<str>>,
    map: HashMap<Box<str>, Sym>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing handle if already present.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.names.len()).expect("interner overflow"));
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a symbol without interning.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// Resolves a handle back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns a fresh symbol guaranteed not to collide with any existing
    /// name, derived from `base` (used for generated variables and
    /// predicates, e.g. rectification and the Lemma 2.1 rewrite).
    pub fn fresh(&mut self, base: &str) -> Sym {
        if self.get(base).is_none() {
            return self.intern(base);
        }
        let mut i: u64 = 0;
        loop {
            let candidate = format!("{base}_{i}");
            if self.get(&candidate).is_none() {
                return self.intern(&candidate);
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("edge");
        let b = i.intern("edge");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_handles() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "a");
        assert_eq!(i.resolve(b), "b");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        i.intern("x");
        assert!(i.get("x").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn fresh_avoids_collisions() {
        let mut i = Interner::new();
        let a = i.intern("v");
        let b = i.fresh("v");
        assert_ne!(a, b);
        assert_ne!(i.resolve(b), "v");
        let c = i.fresh("w");
        assert_eq!(i.resolve(c), "w");
    }

    #[test]
    fn handles_are_dense() {
        let mut i = Interner::new();
        for n in 0..100 {
            let s = i.intern(&format!("s{n}"));
            assert_eq!(s.index(), n);
        }
    }
}
