//! Applied-generation waiting: the primitive behind generation-consistent
//! reads on replicas.
//!
//! A replica applies the primary's WAL stream on one thread while query
//! workers serve reads on others. A client that just mutated through the
//! primary (and got its `generation` stamp back) can ask a replica to
//! answer `{"query": ..., "min_generation": G}` — "don't answer from a
//! state older than my write". The worker parks on [`GenerationGate::
//! wait_for`] until the applier publishes a generation ≥ G or the
//! request's deadline budget runs out; the publish side is one
//! `lock + max + notify_all`, cheap enough to run per applied record.
//!
//! The gate is monotonic by construction (`publish` keeps the max), so a
//! late or duplicated publish can never move the visible generation
//! backwards — matching the WAL's own monotone generation stamps.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A monotonically increasing published generation that threads can wait
/// on. Clones share the same gate.
#[derive(Debug, Clone, Default)]
pub struct GenerationGate {
    inner: Arc<(Mutex<u64>, Condvar)>,
}

impl GenerationGate {
    /// A gate at generation 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recently published generation.
    pub fn current(&self) -> u64 {
        *self.inner.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Publishes `generation`, waking every waiter. Monotonic: publishing
    /// less than the current value is a no-op, so replays and races
    /// cannot regress the gate.
    pub fn publish(&self, generation: u64) {
        let (lock, cvar) = &*self.inner;
        let mut current = lock.lock().unwrap_or_else(|e| e.into_inner());
        if generation > *current {
            *current = generation;
            cvar.notify_all();
        }
    }

    /// Blocks until the published generation reaches `generation` or
    /// `timeout` elapses. Returns the published generation at return
    /// time; the caller checks whether it made the target (a replica
    /// answers `deadline` with its honest generation either way).
    pub fn wait_for(&self, generation: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let (lock, cvar) = &*self.inner;
        let mut current = lock.lock().unwrap_or_else(|e| e.into_inner());
        while *current < generation {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) =
                cvar.wait_timeout(current, deadline - now).unwrap_or_else(|e| e.into_inner());
            current = guard;
        }
        *current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_is_monotonic_and_wakes_waiters() {
        let gate = GenerationGate::new();
        assert_eq!(gate.current(), 0);
        gate.publish(5);
        gate.publish(3); // regression attempt: ignored
        assert_eq!(gate.current(), 5);

        let waiter_gate = gate.clone();
        let waiter = std::thread::spawn(move || waiter_gate.wait_for(10, Duration::from_secs(5)));
        // Give the waiter a moment to park, then release it.
        std::thread::sleep(Duration::from_millis(20));
        gate.publish(12);
        assert_eq!(waiter.join().unwrap(), 12);
    }

    #[test]
    fn wait_for_times_out_with_the_honest_generation() {
        let gate = GenerationGate::new();
        gate.publish(4);
        let start = Instant::now();
        let reached = gate.wait_for(10, Duration::from_millis(50));
        assert_eq!(reached, 4, "timeout reports where the gate actually is");
        assert!(start.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn wait_for_returns_immediately_when_already_satisfied() {
        let gate = GenerationGate::new();
        gate.publish(7);
        let start = Instant::now();
        assert_eq!(gate.wait_for(7, Duration::from_secs(5)), 7);
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
