//! The recursive query processor.
//!
//! The paper closes by noting that, because separable recursions are cheap
//! to detect and much cheaper to evaluate, the specialized algorithm should
//! *supplement* general algorithms inside a query processor rather than
//! replace them. This crate is that processor: it holds a program and a
//! database, and for each query it
//!
//! 1. pre-materializes any supporting (non-recursive-with-`t`) IDB
//!    predicates,
//! 2. tries to detect a separable recursion and a usable selection — if
//!    both hold, runs the compiled Separable algorithm,
//! 3. otherwise falls back to Generalized Magic Sets (for selections on
//!    recursive predicates) or plain semi-naive evaluation.
//!
//! Every result carries the strategy used, the answer relation, wall-clock
//! time, and the paper's relation-size statistics; [`QueryProcessor::explain`]
//! renders the decision (including the instantiated Figure 2 schema, as in
//! the paper's Figures 3 and 4) without running the query.

pub mod gate;
pub mod processor;
pub mod report;

pub use gate::GenerationGate;
pub use processor::{
    MutationOutcome, PlanConj, PlanReport, PlanScan, ProcessorError, QueryProcessor, QueryResult,
    Strategy, StrategyChoice,
};
pub use report::{render_answers, render_answers_csv, render_answers_json};
