//! Strategy selection and query execution.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sepra_ast::{
    parse_program, parse_query, AstError, DependencyGraph, Program, Query, RecursiveDef, Sym,
};
use sepra_core::bounded::{analyze as analyze_bounded, BoundedRecursion};
use sepra_core::cache::PlanCache;
use sepra_core::detect::{detect, SeparableRecursion};
use sepra_core::evaluate::SeparableEvaluator;
use sepra_core::exec::{ExecOptions, ExtraRelations};
use sepra_core::plan::{
    build_plan_with, classify_selection, PlanSelection, SelectionKind, AUX_CARRY1, AUX_CARRY2,
    AUX_SEEN1,
};
use sepra_eval::{
    maintain, naive::naive_with_options, query_answers, seminaive_with_options, ConjPlan,
    EvalError, EvalOptions, PlanLiteral, PlanMode, Planner, PlannerStats, RelKey,
};
use sepra_rewrite::{
    bounded_evaluate_with_options, counting_evaluate, hn_evaluate,
    magic_evaluate_subsumptive_with_options, magic_evaluate_supplementary_with_options,
    magic_evaluate_with_options, CountingOptions, HnOptions,
};
use sepra_storage::{Database, EdbDelta, EvalStats, FxHashMap, Relation, Tuple};

/// The evaluation strategies the processor can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Bounded-recursion elimination: the recursion is provably equivalent
    /// to a k-fold unfolding, evaluated with zero fixpoint iterations
    /// (requires a detected-bounded recursion).
    Bounded,
    /// The paper's specialized algorithm (requires a separable recursion
    /// and a selection).
    Separable,
    /// Generalized Magic Sets.
    MagicSets,
    /// Magic Sets with supplementary predicates (shares rule-body prefixes).
    MagicSupplementary,
    /// Subsumptive Magic Sets: supplementary magic where on-demand
    /// adornment collapses each demand onto the most general already-seen
    /// adornment that subsumes it, pruning redundant adorned copies.
    MagicSubsumptive,
    /// The Generalized Counting Method (requires a full class selection and
    /// acyclic data).
    Counting,
    /// The Henschen-Naqvi iterative algorithm (string-at-a-time; requires
    /// a full class selection and acyclic data).
    HenschenNaqvi,
    /// Stratified semi-naive bottom-up evaluation.
    SemiNaive,
    /// Naive bottom-up evaluation (for comparisons only).
    Naive,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::Bounded => "bounded",
            Strategy::Separable => "separable",
            Strategy::MagicSets => "magic",
            Strategy::MagicSupplementary => "magic-sup",
            Strategy::MagicSubsumptive => "magic-subsumptive",
            Strategy::Counting => "counting",
            Strategy::HenschenNaqvi => "hn",
            Strategy::SemiNaive => "seminaive",
            Strategy::Naive => "naive",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bounded" => Ok(Strategy::Bounded),
            "separable" | "sep" => Ok(Strategy::Separable),
            "magic" | "magic-sets" | "magicsets" => Ok(Strategy::MagicSets),
            "magic-sup" | "supplementary" => Ok(Strategy::MagicSupplementary),
            "magic-subsumptive" | "subsumptive" => Ok(Strategy::MagicSubsumptive),
            "counting" | "count" => Ok(Strategy::Counting),
            "hn" | "henschen-naqvi" => Ok(Strategy::HenschenNaqvi),
            "seminaive" | "semi-naive" => Ok(Strategy::SemiNaive),
            "naive" => Ok(Strategy::Naive),
            other => Err(format!(
                "unknown strategy `{other}` (expected bounded|separable|magic|magic-sup|magic-subsumptive|counting|hn|seminaive|naive)"
            )),
        }
    }
}

/// Either a caller-forced strategy or automatic selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyChoice {
    /// Let the processor pick (Separable when it applies, else Magic Sets,
    /// else semi-naive).
    #[default]
    Auto,
    /// Force a specific strategy (fails if it does not apply).
    Force(Strategy),
}

/// The result of running one query.
#[derive(Debug)]
pub struct QueryResult {
    /// Answers as full tuples of the query predicate, in sorted tuple
    /// order — deterministic across strategies and thread counts.
    pub answers: Relation,
    /// Which strategy actually ran.
    pub strategy: Strategy,
    /// The paper's relation-size statistics for the run.
    pub stats: EvalStats,
    /// Wall-clock evaluation time (excludes parsing).
    pub elapsed: Duration,
}

/// Errors from the processor.
#[derive(Debug)]
pub enum ProcessorError {
    /// Program or query text failed to parse/validate.
    Ast(AstError),
    /// Evaluation failed.
    Eval(EvalError),
    /// Facts failed to load.
    Facts(String),
    /// A forced strategy does not apply to this query.
    StrategyUnavailable(String),
}

impl std::fmt::Display for ProcessorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessorError::Ast(e) => write!(f, "{e}"),
            ProcessorError::Eval(e) => write!(f, "{e}"),
            ProcessorError::Facts(e) => write!(f, "{e}"),
            ProcessorError::StrategyUnavailable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProcessorError {}

impl From<AstError> for ProcessorError {
    fn from(e: AstError) -> Self {
        ProcessorError::Ast(e)
    }
}

impl From<EvalError> for ProcessorError {
    fn from(e: EvalError) -> Self {
        ProcessorError::Eval(e)
    }
}

/// Everything [`QueryProcessor::prepare`] computes up front: recursion
/// detection outcomes and materialized supporting strata, per recursive
/// predicate. Shared read-only across processor clones, so a query server
/// pays for detection and support evaluation once, not per worker.
#[derive(Debug, Default)]
struct Prepared {
    /// Detection outcome per recursive predicate: the separable recursion,
    /// or the reason it is not separable.
    recursions: FxHashMap<Sym, Result<SeparableRecursion, String>>,
    /// Materialized supporting strata for each separable predicate.
    support: FxHashMap<Sym, Arc<ExtraRelations>>,
    /// Recursive predicates proven bounded, with their nonrecursive
    /// replacement chains. A program-only verdict (the analysis never
    /// looks at the EDB), so EDB mutations preserve it.
    bounded: FxHashMap<Sym, Arc<BoundedRecursion>>,
}

/// A program + database pair that answers queries.
///
/// Cloning a processor is cheap: the database clone is a copy-on-write
/// snapshot (see [`Database`]), and the prepared-state and plan caches are
/// shared through [`Arc`] — this is how a query server hands each worker
/// thread its own processor.
#[derive(Debug, Default, Clone)]
pub struct QueryProcessor {
    db: Database,
    program: Program,
    exec_options: ExecOptions,
    /// Everything loaded through [`QueryProcessor::load`], concatenated.
    /// The lint driver re-parses this text so its diagnostics carry spans
    /// into what the user actually wrote (facts inserted programmatically
    /// through [`QueryProcessor::db_mut`] are invisible to it).
    source: String,
    /// Set by [`QueryProcessor::prepare`]; invalidated whenever the
    /// program or database changes.
    prepared: Option<Arc<Prepared>>,
    /// Compiled Figure 2 plans, shared across clones. Only consulted once
    /// the processor is prepared: preparation interns every symbol a
    /// cached plan can mention *before* the processor is cloned, so shared
    /// plans stay meaningful in every clone's symbol space.
    plan_cache: Arc<PlanCache>,
    /// Bumped whenever the program or the EDB changes ([`QueryProcessor::load`],
    /// [`QueryProcessor::db_mut`], effective [`QueryProcessor::apply_mutation`]).
    /// [`QueryProcessor::prepare`] and `apply_mutation` revalidate the shared
    /// plan cache against it, so a post-mutation query can never be served
    /// by a pre-mutation compiled plan.
    generation: u64,
}

/// The result of one [`QueryProcessor::apply_mutation`] call.
#[derive(Debug)]
pub struct MutationOutcome {
    /// Tuples genuinely added to the EDB (duplicates don't count).
    pub inserted: usize,
    /// Tuples genuinely removed from the EDB (absent tuples don't count).
    pub retracted: usize,
    /// The processor generation after the mutation.
    pub generation: u64,
    /// Statistics of the incremental maintenance work (empty when the
    /// processor was not prepared or the mutation was ineffective).
    pub stats: EvalStats,
    /// Wall-clock time of the whole call: parsing (when entered through
    /// [`QueryProcessor::apply_mutation`]; delta entry points have no
    /// parse step), applying, and maintenance.
    pub elapsed: Duration,
    /// The *effective* delta: exactly the tuples added and removed, with
    /// no-op inserts/retracts filtered out. This is what a write-ahead
    /// log records — replaying it reproduces the commit bit for bit.
    pub delta: EdbDelta,
}

impl QueryProcessor {
    /// Creates an empty processor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads source text: proper rules extend the program, facts go to the
    /// database.
    pub fn load(&mut self, src: &str) -> Result<(), ProcessorError> {
        let parsed = parse_program(src, self.db.interner_mut())?;
        let mut rules = Vec::new();
        for rule in parsed.rules {
            if rule.is_fact() {
                self.db
                    .insert_atom(&rule.head)
                    .map_err(|e| ProcessorError::Facts(e.to_string()))?;
            } else {
                rules.push(rule);
            }
        }
        self.program.rules.extend(rules);
        self.source.push_str(src);
        if !src.ends_with('\n') {
            self.source.push('\n');
        }
        self.prepared = None;
        self.generation += 1;
        Ok(())
    }

    /// Runs recursion detection and support materialization for every
    /// recursive predicate up front, and enables the shared plan cache.
    ///
    /// Call this once after loading and before cloning the processor to
    /// worker threads: queries then skip per-call detection, share one
    /// supporting-strata materialization, and reuse compiled plans. The
    /// prepared state is invalidated by further [`QueryProcessor::load`] or
    /// [`QueryProcessor::db_mut`] calls.
    pub fn prepare(&mut self) -> Result<(), ProcessorError> {
        let graph = DependencyGraph::build(&self.program);
        let mut preds: Vec<Sym> = self.program.rules.iter().map(|r| r.head.pred).collect();
        preds.sort_unstable_by_key(|p| p.0);
        preds.dedup();
        let mut prepared = Prepared::default();
        for pred in preds {
            if !graph.is_recursive(pred) {
                continue;
            }
            let outcome = match RecursiveDef::extract(&self.program, pred, self.db.interner()) {
                Ok(def) => {
                    if let Some(bounded) = analyze_bounded(&def, self.db.interner_mut()) {
                        prepared.bounded.insert(pred, Arc::new(bounded));
                    }
                    detect(&def, self.db.interner_mut()).map_err(|ns| ns.to_string())
                }
                Err(e) => Err(e.to_string()),
            };
            if outcome.is_ok() {
                prepared.support.insert(pred, Arc::new(self.materialize_support(pred)?));
            }
            prepared.recursions.insert(pred, outcome);
        }
        self.prepared = Some(Arc::new(prepared));
        // Cached plans from an earlier generation must not survive into
        // this one. The program itself may have changed since they were
        // built, so no statistics drift check applies — drop them all
        // (see `core::cache` on generation invalidation).
        self.plan_cache.validate_generation(self.generation, None);
        Ok(())
    }

    /// The shared plan cache (for observability: entry/hit/miss counts).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The accumulated source text of everything loaded so far.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Lints everything loaded so far (see [`sepra_lint::check_source`]),
    /// optionally relative to a query. `name` is the display name used in
    /// rendered diagnostics (`<repl>`, a file path, …).
    pub fn lint(&self, name: &str, query: Option<&str>) -> sepra_lint::CheckResult {
        sepra_lint::check_source(name, &self.source, query)
    }

    /// The database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access (for programmatic fact loading).
    pub fn db_mut(&mut self) -> &mut Database {
        self.prepared = None;
        self.generation += 1; // conservatively: the caller may mutate
        &mut self.db
    }

    /// Mutable access to the interner only. Interning is append-only — it
    /// can never invalidate prepared materializations or cached plans —
    /// so, unlike [`QueryProcessor::db_mut`], this neither drops the
    /// prepared state nor bumps the processor generation. Replication
    /// uses it to decode streamed delta frames (whose string tables must
    /// be interned locally) without paying a re-prepare per record.
    pub fn interner_mut(&mut self) -> &mut sepra_ast::Interner {
        self.db.interner_mut()
    }

    /// Overwrites the **database** generation without touching prepared
    /// state. A replica applying a streamed WAL record must end at the
    /// primary's stamped generation even when the local effective-tuple
    /// count differs (a record can carry tuples the replica already
    /// holds); recovery does the same via `db_mut`, but a live replica
    /// cannot afford `db_mut`'s invalidate-everything semantics.
    pub fn adopt_db_generation(&mut self, generation: u64) {
        self.db.force_generation(generation);
    }

    /// The program/EDB generation (see the field docs). Query servers use
    /// this to detect stale worker snapshots after a mutation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Applies a batch of live EDB mutations — `retracts` first, then
    /// `inserts`, each a list of ground-fact texts like `"e(a, b)."` — and
    /// incrementally maintains the prepared materializations (semi-naive
    /// delta propagation for insertions, delete-and-rederive for
    /// retractions; see [`sepra_eval::incremental`]).
    ///
    /// All-or-none: changes are staged on copy-on-write snapshots and
    /// committed only after parsing, application, and maintenance all
    /// succeed, so an arity error or an exhausted budget leaves the
    /// processor exactly as it was. On commit the generation advances and
    /// the shared plan cache is revalidated, so no query — on this
    /// processor or any clone sharing the cache — can hit a pre-mutation
    /// plan. Detection outcomes survive (they depend only on the program);
    /// supporting strata are maintained incrementally, not recomputed.
    pub fn apply_mutation(
        &mut self,
        inserts: &[&str],
        retracts: &[&str],
    ) -> Result<MutationOutcome, ProcessorError> {
        let start = Instant::now();
        let mut delta = EdbDelta::default();
        for (sources, bucket, verb) in
            [(retracts, &mut delta.remove, "retract"), (inserts, &mut delta.insert, "insert")]
        {
            for src in sources {
                let parsed = parse_program(src, self.db.interner_mut())?;
                if parsed.rules.is_empty() {
                    return Err(ProcessorError::Facts(format!("{verb} expects facts: `{src}`")));
                }
                for rule in parsed.rules {
                    if !rule.is_fact() {
                        return Err(ProcessorError::Facts(format!(
                            "{verb} expects ground facts, not rules: `{src}`"
                        )));
                    }
                    let tuple = self
                        .db
                        .ground_tuple(&rule.head)
                        .map_err(|e| ProcessorError::Facts(e.to_string()))?;
                    bucket.entry(rule.head.pred).or_default().push(tuple);
                }
            }
        }
        self.apply_delta_from(start, delta)
    }

    /// [`apply_mutation`](Self::apply_mutation) minus the parsing: applies
    /// an already-built [`EdbDelta`] whose tuples reference *this*
    /// processor's interner. WAL replay enters here — recovered deltas are
    /// decoded frames, not fact text — and gets the identical all-or-none
    /// staging, incremental maintenance, and plan-cache revalidation.
    pub fn apply_delta_mutation(
        &mut self,
        delta: EdbDelta,
    ) -> Result<MutationOutcome, ProcessorError> {
        self.apply_delta_from(Instant::now(), delta)
    }

    /// The shared tail of both mutation entry points. `start` is when the
    /// caller began its part of the work — [`apply_mutation`](Self::apply_mutation)
    /// passes its pre-parse timestamp so `elapsed` covers parsing too.
    fn apply_delta_from(
        &mut self,
        start: Instant,
        delta: EdbDelta,
    ) -> Result<MutationOutcome, ProcessorError> {
        // Stage on snapshots: `db_before` → retractions → `db_mid` →
        // insertions → `db`. The clones are cheap (copy-on-write) and give
        // the DRed over-deletion its pre-mutation state.
        let db_before = self.db.clone();
        let mut db = self.db.clone();
        let mut effective = EdbDelta::default();
        let remove_only = EdbDelta { remove: delta.remove, ..Default::default() };
        effective.remove =
            db.apply_delta(&remove_only).map_err(|e| ProcessorError::Facts(e.to_string()))?.remove;
        let db_mid = db.clone();
        let insert_only = EdbDelta { insert: delta.insert, ..Default::default() };
        effective.insert =
            db.apply_delta(&insert_only).map_err(|e| ProcessorError::Facts(e.to_string()))?.insert;

        let retracted = effective.remove.values().map(Vec::len).sum::<usize>();
        let inserted = effective.insert.values().map(Vec::len).sum::<usize>();
        if retracted + inserted == 0 {
            // Nothing actually changed: keep the prepared state and the
            // current generation.
            return Ok(MutationOutcome {
                inserted,
                retracted,
                generation: self.generation,
                stats: EvalStats::new(),
                elapsed: start.elapsed(),
                delta: effective,
            });
        }

        // Incrementally maintain each prepared supporting-strata
        // materialization across the effective delta.
        let mut stats = EvalStats::new();
        let new_prepared = match &self.prepared {
            None => None,
            Some(prepared) => {
                let mut next = Prepared {
                    recursions: prepared.recursions.clone(),
                    support: FxHashMap::default(),
                    bounded: prepared.bounded.clone(),
                };
                for (&pred, old_support) in &prepared.support {
                    let rules: Vec<_> = self
                        .program
                        .rules
                        .iter()
                        .filter(|r| r.head.pred != pred)
                        .cloned()
                        .collect();
                    if rules.is_empty() {
                        next.support.insert(pred, Arc::clone(old_support));
                        continue;
                    }
                    let sub = Program::new(rules);
                    let derived = maintain(
                        &sub,
                        &db_before,
                        &db_mid,
                        &db,
                        old_support,
                        &effective,
                        &self.eval_options(),
                    )?;
                    stats.merge(&derived.stats);
                    next.support.insert(pred, Arc::new(derived.relations));
                }
                Some(Arc::new(next))
            }
        };

        // Commit.
        self.db = db;
        self.prepared = new_prepared;
        self.generation += 1;
        // The program is unchanged here — only the EDB moved — so cached
        // plans stay valid as long as the relations they scan have not
        // drifted past the replanning threshold. Passing the database lets
        // the cache keep structurally sound plans and drop only those
        // whose cost assumptions no longer hold, for every clone sharing
        // the cache.
        self.plan_cache.validate_generation(self.generation, Some(&self.db));
        Ok(MutationOutcome {
            inserted,
            retracted,
            generation: self.generation,
            stats,
            elapsed: start.elapsed(),
            delta: effective,
        })
    }

    /// The loaded rules.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Overrides executor options (dedup / iteration bound / threads).
    pub fn set_exec_options(&mut self, opts: ExecOptions) {
        self.exec_options = opts;
    }

    /// The [`EvalOptions`] mirroring this processor's executor options, for
    /// the strategies that run on the semi-naive engine.
    fn eval_options(&self) -> EvalOptions {
        EvalOptions {
            threads: self.exec_options.threads,
            budget: self.exec_options.budget.clone(),
            plan_mode: self.exec_options.plan_mode,
        }
    }

    /// Parses a query in this processor's symbol space.
    pub fn parse_query(&mut self, src: &str) -> Result<Query, ProcessorError> {
        Ok(parse_query(src, self.db.interner_mut())?)
    }

    /// Runs a query with automatic strategy selection.
    pub fn query(&mut self, src: &str) -> Result<QueryResult, ProcessorError> {
        self.query_with(src, StrategyChoice::Auto)
    }

    /// Runs a query with a forced or automatic strategy.
    pub fn query_with(
        &mut self,
        src: &str,
        choice: StrategyChoice,
    ) -> Result<QueryResult, ProcessorError> {
        let query = self.parse_query(src)?;
        self.run_query(&query, choice)
    }

    /// Runs an already-parsed query.
    pub fn run_query(
        &mut self,
        query: &Query,
        choice: StrategyChoice,
    ) -> Result<QueryResult, ProcessorError> {
        match choice {
            StrategyChoice::Force(s) => self.run_forced(query, s),
            StrategyChoice::Auto => self.run_auto(query),
        }
    }

    /// Materializes every IDB predicate other than `pred` (the supporting
    /// strata), so the specialized evaluators can treat them as base
    /// relations.
    fn materialize_support(&self, pred: Sym) -> Result<ExtraRelations, ProcessorError> {
        let mut rules = Vec::new();
        for rule in &self.program.rules {
            if rule.head.pred != pred {
                rules.push(rule.clone());
            }
        }
        if rules.is_empty() {
            return Ok(ExtraRelations::default());
        }
        let sub = Program::new(rules);
        let derived = seminaive_with_options(&sub, &self.db, &self.eval_options())?;
        Ok(derived.relations)
    }

    /// Answers `query` by bounded-recursion elimination when the query
    /// predicate is provably bounded; `Err(reason)` otherwise. The
    /// rewritten program is nonrecursive in the predicate, so the run
    /// reports zero fixpoint iterations for its stratum.
    fn try_bounded(
        &mut self,
        query: &Query,
    ) -> Result<Result<QueryResult, String>, ProcessorError> {
        let pred = query.atom.pred;
        let bounded = if let Some(prepared) = self.prepared.clone() {
            match prepared.bounded.get(&pred) {
                Some(bounded) => Arc::clone(bounded),
                None => return Ok(Err("query predicate is not provably bounded".into())),
            }
        } else {
            let graph = DependencyGraph::build(&self.program);
            if !graph.is_recursive(pred) {
                return Ok(Err("query predicate is not recursive".into()));
            }
            let def = match RecursiveDef::extract(&self.program, pred, self.db.interner()) {
                Ok(def) => def,
                Err(e) => return Ok(Err(e.to_string())),
            };
            match analyze_bounded(&def, self.db.interner_mut()) {
                Some(bounded) => Arc::new(bounded),
                None => return Ok(Err("query predicate is not provably bounded".into())),
            }
        };
        let start = Instant::now();
        let out = bounded_evaluate_with_options(
            &self.program,
            query,
            &self.db,
            &bounded,
            &self.eval_options(),
        )?;
        Ok(Ok(finish(out.answers, Strategy::Bounded, out.stats, start)))
    }

    fn try_separable(
        &mut self,
        query: &Query,
    ) -> Result<Result<QueryResult, String>, ProcessorError> {
        let pred = query.atom.pred;
        let (sep, extra) = if let Some(prepared) = self.prepared.clone() {
            match prepared.recursions.get(&pred) {
                Some(Ok(sep)) => {
                    let extra = prepared.support.get(&pred).cloned().unwrap_or_default();
                    (sep.clone(), extra)
                }
                Some(Err(reason)) => return Ok(Err(reason.clone())),
                None => return Ok(Err("query predicate is not recursive".into())),
            }
        } else {
            let graph = DependencyGraph::build(&self.program);
            if !graph.is_recursive(pred) {
                return Ok(Err("query predicate is not recursive".into()));
            }
            let def = match RecursiveDef::extract(&self.program, pred, self.db.interner()) {
                Ok(def) => def,
                Err(e) => return Ok(Err(e.to_string())),
            };
            let sep = match detect(&def, self.db.interner_mut()) {
                Ok(sep) => sep,
                Err(ns) => return Ok(Err(ns.to_string())),
            };
            (sep, Arc::new(self.materialize_support(pred)?))
        };
        if matches!(classify_selection(&sep, query), SelectionKind::NoSelection) {
            return Ok(Err("query has no selection constants".into()));
        }
        let mut evaluator = SeparableEvaluator::with_options(sep, self.exec_options.clone());
        if self.prepared.is_some() {
            // The cache is only sound once `prepare` has interned every
            // plan symbol into the pre-clone symbol space.
            evaluator = evaluator.with_plan_cache(Arc::clone(&self.plan_cache));
        }
        let start = Instant::now();
        let outcome = evaluator.evaluate(query, &self.db, &extra)?;
        Ok(Ok(finish(outcome.answers, Strategy::Separable, outcome.stats, start)))
    }

    fn run_auto(&mut self, query: &Query) -> Result<QueryResult, ProcessorError> {
        // Negation and aggregates are evaluated stratum by stratum on the
        // general engine only — the specialized strategies (and the magic
        // rewrites) assume pure positive programs.
        if self.program.uses_stratified_constructs() {
            return self.run_forced(query, Strategy::SemiNaive);
        }
        let pred = query.atom.pred;
        let is_idb = self.program.rules.iter().any(|r| r.head.pred == pred);
        if is_idb {
            // Bounded elimination wins over everything: no fixpoint at all.
            if let Ok(result) = self.try_bounded(query)? {
                return Ok(result);
            }
            match self.try_separable(query)? {
                Ok(result) => return Ok(result),
                Err(_reason) => {}
            }
            if query.has_selection() {
                return self.run_forced(query, Strategy::MagicSets);
            }
        }
        self.run_forced(query, Strategy::SemiNaive)
    }

    fn run_forced(
        &mut self,
        query: &Query,
        strategy: Strategy,
    ) -> Result<QueryResult, ProcessorError> {
        // Refuse, never silently mis-evaluate: only the stratum-aware
        // engines may run a program with negation or aggregates.
        if self.program.uses_stratified_constructs()
            && !matches!(strategy, Strategy::SemiNaive | Strategy::Naive)
        {
            return Err(ProcessorError::StrategyUnavailable(format!(
                "strategy `{strategy}` does not support negation or aggregates; \
                 use `seminaive` or `naive`"
            )));
        }
        match strategy {
            Strategy::Bounded => match self.try_bounded(query)? {
                Ok(r) => Ok(r),
                Err(reason) => Err(ProcessorError::StrategyUnavailable(format!(
                    "bounded elimination unavailable: {reason}"
                ))),
            },
            Strategy::Separable => match self.try_separable(query)? {
                Ok(r) => Ok(r),
                Err(reason) => Err(ProcessorError::StrategyUnavailable(format!(
                    "separable algorithm unavailable: {reason}"
                ))),
            },
            Strategy::MagicSets => {
                let start = Instant::now();
                let out = magic_evaluate_with_options(
                    &self.program,
                    query,
                    &self.db,
                    &self.eval_options(),
                )?;
                Ok(finish(out.answers, Strategy::MagicSets, out.stats, start))
            }
            Strategy::MagicSupplementary => {
                let start = Instant::now();
                let out = magic_evaluate_supplementary_with_options(
                    &self.program,
                    query,
                    &self.db,
                    &self.eval_options(),
                )?;
                Ok(finish(out.answers, Strategy::MagicSupplementary, out.stats, start))
            }
            Strategy::MagicSubsumptive => {
                let start = Instant::now();
                let out = magic_evaluate_subsumptive_with_options(
                    &self.program,
                    query,
                    &self.db,
                    &self.eval_options(),
                )?;
                Ok(finish(out.answers, Strategy::MagicSubsumptive, out.stats, start))
            }
            Strategy::Counting => {
                let pred = query.atom.pred;
                let def = RecursiveDef::extract(&self.program, pred, self.db.interner())
                    .map_err(|e| ProcessorError::StrategyUnavailable(e.to_string()))?;
                let sep = detect(&def, self.db.interner_mut())
                    .map_err(|e| ProcessorError::StrategyUnavailable(e.to_string()))?;
                let start = Instant::now();
                let opts = CountingOptions {
                    exec: self.exec_options.clone(),
                    ..CountingOptions::default()
                };
                let out = counting_evaluate(&sep, query, &self.db, &opts)?;
                Ok(finish(out.answers, Strategy::Counting, out.stats, start))
            }
            Strategy::HenschenNaqvi => {
                let pred = query.atom.pred;
                let def = RecursiveDef::extract(&self.program, pred, self.db.interner())
                    .map_err(|e| ProcessorError::StrategyUnavailable(e.to_string()))?;
                let sep = detect(&def, self.db.interner_mut())
                    .map_err(|e| ProcessorError::StrategyUnavailable(e.to_string()))?;
                let start = Instant::now();
                let opts = HnOptions { exec: self.exec_options.clone(), ..HnOptions::default() };
                let out = hn_evaluate(&sep, query, &self.db, &opts)?;
                Ok(finish(out.answers, Strategy::HenschenNaqvi, out.stats, start))
            }
            Strategy::SemiNaive => {
                let start = Instant::now();
                let derived =
                    seminaive_with_options(&self.program, &self.db, &self.eval_options())?;
                let answers = query_answers(query, &self.db, Some(&derived))?;
                Ok(finish(answers, Strategy::SemiNaive, derived.stats, start))
            }
            Strategy::Naive => {
                let start = Instant::now();
                let derived = naive_with_options(&self.program, &self.db, &self.eval_options())?;
                let answers = query_answers(query, &self.db, Some(&derived))?;
                Ok(finish(answers, Strategy::Naive, derived.stats, start))
            }
        }
    }

    /// Produces a diagnostic report over everything loaded so far: the
    /// general lints plus, for every recursive predicate, either the
    /// separable class structure (`SEP100`) or the violated conditions of
    /// Definition 2.4 (`SEP001`…`SEP004`), rendered as rustc-style text
    /// with source snippets. This is what `sepra --check` and the REPL's
    /// `:check` print; `sepra check <file>` is the richer front door.
    pub fn check_report(&self) -> String {
        if self.source.trim().is_empty() {
            return "no rules loaded\n".to_string();
        }
        self.lint("<program>", None).render_text()
    }

    /// Answers `query` with the Separable algorithm and renders, for every
    /// answer, one justification — the derivation `J(a)` of Lemma 3.1
    /// (why-provenance). Requires a separable recursion and a full
    /// selection.
    pub fn why(&mut self, src: &str) -> Result<String, ProcessorError> {
        use std::fmt::Write as _;
        let query = self.parse_query(src)?;
        let pred = query.atom.pred;
        let def = RecursiveDef::extract(&self.program, pred, self.db.interner())
            .map_err(|e| ProcessorError::StrategyUnavailable(e.to_string()))?;
        let sep = detect(&def, self.db.interner_mut())
            .map_err(|e| ProcessorError::StrategyUnavailable(e.to_string()))?;
        let extra = self.materialize_support(pred)?;
        let evaluator = SeparableEvaluator::with_options(sep, self.exec_options.clone());
        let (outcome, justifications) =
            evaluator.evaluate_with_justifications(&query, &self.db, &extra)?;
        let mut lines: Vec<(String, String)> = justifications
            .iter()
            .map(|(t, j)| {
                (
                    t.display(self.db.interner()).to_string(),
                    j.render(evaluator.recursion(), self.db.interner()),
                )
            })
            .collect();
        lines.sort();
        let mut out = String::new();
        let _ = writeln!(out, "{} answers:", outcome.answers.len());
        for (tuple, derivation) in lines {
            let _ = writeln!(out, "  {tuple}  because  {derivation}");
        }
        Ok(out)
    }

    /// Explains how a query would be evaluated, without evaluating it. For
    /// separable recursions this includes the detected classes and the
    /// instantiated Figure 2 schema (compare the paper's Figures 3 and 4);
    /// every compiled conjunction is shown in its chosen join order with
    /// the planner's per-scan cost estimates.
    pub fn explain(&mut self, src: &str) -> Result<String, ProcessorError> {
        use std::fmt::Write as _;
        let report = self.plan_report(src)?;
        let mut out = report.text;
        if !report.conjunctions.is_empty() {
            let _ = writeln!(out, "join order ({} estimates):", report.plan_mode);
            for conj in &report.conjunctions {
                let _ = writeln!(out, "  {}:", conj.label);
                for s in &conj.scans {
                    let _ = writeln!(
                        out,
                        "    {}  rows {:.0}, keyed {}, est {:.2}",
                        s.rel, s.rows, s.keyed_cols, s.estimate
                    );
                }
            }
        }
        Ok(out)
    }

    /// The structured form of [`QueryProcessor::explain`]: which strategy
    /// would run, in which plan mode, and — for every conjunction the
    /// strategy would compile — the chosen join order with per-scan cost
    /// estimates from the current relation statistics.
    pub fn plan_report(&mut self, src: &str) -> Result<PlanReport, ProcessorError> {
        use std::fmt::Write as _;
        let query = self.parse_query(src)?;
        let pred = query.atom.pred;
        let plan_mode = match self.exec_options.plan_mode {
            PlanMode::CostBased => "cost-based",
            PlanMode::SourceOrder => "source-order",
        };
        let mut pstats = PlannerStats::from_database(&self.db);
        if let Some(prepared) = &self.prepared {
            if let Some(support) = prepared.support.get(&pred) {
                for (&p, r) in support.iter() {
                    pstats.add_relation(p, r);
                }
            }
        }
        let mut report = PlanReport {
            query: sepra_ast::pretty::query_to_string(&query, self.db.interner()),
            strategy: String::new(),
            plan_mode,
            text: String::new(),
            conjunctions: Vec::new(),
        };
        let out = &mut report.text;
        let _ = writeln!(out, "query: {}", report.query);
        let is_idb = self.program.rules.iter().any(|r| r.head.pred == pred);
        if !is_idb {
            let _ = writeln!(out, "strategy: direct EDB scan (predicate has no rules)");
            report.strategy = "edb-scan".into();
            return Ok(report);
        }
        // Stratified programs get their own report: one plan section per
        // stratum, lowest first — the order evaluation runs them in.
        if self.program.uses_stratified_constructs() {
            match sepra_strata::stratify(&self.program) {
                Err(e) => {
                    let _ =
                        writeln!(out, "unstratifiable program: {}", e.describe(self.db.interner()));
                    let _ = writeln!(out, "strategy: refused (every engine rejects this program)");
                    report.strategy = "unstratifiable".into();
                    return Ok(report);
                }
                Ok(strat) if strat.len() > 1 => {
                    let _ = writeln!(
                        out,
                        "stratified program: {} strata (negation/aggregation read only \
                         completed lower strata)",
                        strat.len()
                    );
                    for (level, preds) in strat.strata.iter().enumerate() {
                        let idb: Vec<String> = preds
                            .iter()
                            .filter(|p| self.program.rules.iter().any(|r| r.head.pred == **p))
                            .map(|&p| self.db.interner().resolve(p).to_string())
                            .collect();
                        if idb.is_empty() {
                            continue;
                        }
                        let _ = writeln!(out, "  stratum {level}: {}", idb.join(", "));
                    }
                    let _ = writeln!(out, "strategy: semi-naive, stratum by stratum");
                    report.strategy = "seminaive".into();
                    report.conjunctions = self.stratified_conjunctions(&pstats, &strat);
                    return Ok(report);
                }
                // A single stratum means the constructs are trivially
                // satisfied; the ordinary report reads fine.
                Ok(_) => {}
            }
        }
        let fallback = if query.has_selection() { "magic sets" } else { "semi-naive" };
        if let Ok(def) = RecursiveDef::extract(&self.program, pred, self.db.interner()) {
            if let Some(bounded) = analyze_bounded(&def, self.db.interner_mut()) {
                let _ = writeln!(
                    out,
                    "bounded recursion detected: every derivation needs at most {} recursive \
                     step(s); recursion replaced by {} nonrecursive rule(s)",
                    bounded.depth,
                    bounded.rules.len()
                );
                let _ = writeln!(
                    out,
                    "strategy: bounded({}) — zero fixpoint iterations",
                    bounded.depth
                );
                report.strategy = "bounded".into();
                report.conjunctions = self.rule_body_conjunctions(&pstats);
                return Ok(report);
            }
        }
        let def = match RecursiveDef::extract(&self.program, pred, self.db.interner()) {
            Ok(def) => def,
            Err(e) => {
                let _ = writeln!(out, "not in the paper's shape: {e}");
                let _ = writeln!(out, "strategy: {fallback}");
                report.strategy = if query.has_selection() { "magic" } else { "seminaive" }.into();
                report.conjunctions = self.rule_body_conjunctions(&pstats);
                return Ok(report);
            }
        };
        match detect(&def, self.db.interner_mut()) {
            Err(ns) => {
                let _ = writeln!(out, "{ns}");
                let _ = writeln!(out, "strategy: {fallback}");
                report.strategy = if query.has_selection() { "magic" } else { "seminaive" }.into();
                report.conjunctions = self.rule_body_conjunctions(&pstats);
            }
            Ok(sep) => {
                let _ = writeln!(out, "separable recursion detected:");
                for (i, class) in sep.classes.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "  class e{}: columns {:?}, rules {:?}",
                        i + 1,
                        class.columns,
                        class.rules
                    );
                }
                let _ = writeln!(out, "  persistent columns: {:?}", sep.persistent);
                match classify_selection(&sep, &query) {
                    SelectionKind::NoSelection => {
                        let _ = writeln!(out, "no selection constants; strategy: semi-naive");
                        report.strategy = "seminaive".into();
                        report.conjunctions = self.rule_body_conjunctions(&pstats);
                    }
                    SelectionKind::Partial { class } => {
                        let _ = writeln!(
                            out,
                            "partial selection on class e{} -> Lemma 2.1 decomposition \
                             (t_part u t_full)",
                            class + 1
                        );
                        let _ = writeln!(out, "strategy: separable");
                        report.strategy = "separable".into();
                    }
                    kind => {
                        let selection = match &kind {
                            SelectionKind::FullClass { class } => {
                                let _ = writeln!(out, "full selection on class e{}", class + 1);
                                PlanSelection::Class(*class)
                            }
                            SelectionKind::Persistent { bound } => {
                                let _ =
                                    writeln!(out, "full selection on persistent columns {bound:?}");
                                let consts = bound
                                    .iter()
                                    .map(|&c| match query.atom.terms[c] {
                                        sepra_ast::Term::Const(k) => Ok((
                                            c,
                                            sepra_storage::Value::from_const(k)
                                                .map_err(EvalError::from)?,
                                        )),
                                        _ => Err(EvalError::Planning("not const".into())),
                                    })
                                    .collect::<Result<Vec<_>, _>>()?;
                                PlanSelection::Persistent(consts)
                            }
                            kind => {
                                return Err(ProcessorError::StrategyUnavailable(format!(
                                    "internal: unexpected selection kind {kind:?} while \
                                     explaining a full selection"
                                )))
                            }
                        };
                        let planner = Planner::new(self.exec_options.plan_mode, Some(&pstats));
                        let plan = build_plan_with(&sep, &selection, &planner)?;
                        let _ = writeln!(out, "strategy: separable; compiled schema:");
                        for line in plan.render(&sep, self.db.interner()).lines() {
                            let _ = writeln!(out, "  {line}");
                        }
                        report.strategy = "separable".into();
                        if let Some(p1) = &plan.phase1 {
                            for (ri, step) in &p1.steps {
                                report.conjunctions.push(self.conjunction(
                                    format!("phase 1, rule {ri}"),
                                    step,
                                    &pstats,
                                ));
                            }
                        }
                        for (i, step) in plan.seed.iter().enumerate() {
                            report.conjunctions.push(self.conjunction(
                                format!("seed {i}"),
                                step,
                                &pstats,
                            ));
                        }
                        for (ri, step) in &plan.phase2.steps {
                            report.conjunctions.push(self.conjunction(
                                format!("phase 2, rule {ri}"),
                                step,
                                &pstats,
                            ));
                        }
                    }
                }
            }
        }
        Ok(report)
    }

    /// The join orders the semi-naive engine would compile: one labelled
    /// conjunction per non-fact rule, ordered by a planner over `pstats`.
    fn rule_body_conjunctions(&self, pstats: &PlannerStats) -> Vec<PlanConj> {
        let planner = Planner::new(self.exec_options.plan_mode, Some(pstats));
        let mut out = Vec::new();
        for (i, rule) in self.program.rules.iter().enumerate() {
            if rule.is_fact() {
                continue;
            }
            let body: Vec<PlanLiteral> =
                rule.body.iter().map(|l| PlanLiteral::from_literal(l, &RelKey::Pred)).collect();
            let Ok(plan) = ConjPlan::compile(&[], &planner.order(&[], &body, 0), &rule.head.terms)
            else {
                continue;
            };
            let label = format!("rule {i} ({})", self.db.interner().resolve(rule.head.pred));
            out.push(self.conjunction(label, &plan, pstats));
        }
        out
    }

    /// [`rule_body_conjunctions`](Self::rule_body_conjunctions) grouped by
    /// stratum: sections appear lowest stratum first, each labelled with
    /// the stratum evaluation computes it in.
    fn stratified_conjunctions(
        &self,
        pstats: &PlannerStats,
        strat: &sepra_strata::Stratification,
    ) -> Vec<PlanConj> {
        let planner = Planner::new(self.exec_options.plan_mode, Some(pstats));
        let mut out = Vec::new();
        for (level, preds) in strat.strata.iter().enumerate() {
            for (i, rule) in self.program.rules.iter().enumerate() {
                if rule.is_fact() || !preds.contains(&rule.head.pred) {
                    continue;
                }
                let body: Vec<PlanLiteral> =
                    rule.body.iter().map(|l| PlanLiteral::from_literal(l, &RelKey::Pred)).collect();
                let Ok(plan) =
                    ConjPlan::compile(&[], &planner.order(&[], &body, 0), &rule.head.terms)
                else {
                    continue;
                };
                let label = format!(
                    "stratum {level}, rule {i} ({})",
                    self.db.interner().resolve(rule.head.pred)
                );
                out.push(self.conjunction(label, &plan, pstats));
            }
        }
        out
    }

    fn conjunction(&self, label: String, plan: &ConjPlan, pstats: &PlannerStats) -> PlanConj {
        let interner = self.db.interner();
        let scans = pstats
            .estimate_scans(plan)
            .into_iter()
            .map(|s| PlanScan {
                rel: match s.rel {
                    RelKey::Pred(p) => interner.resolve(p).to_string(),
                    RelKey::Delta(p) => format!("\u{394}{}", interner.resolve(p)),
                    RelKey::Aux(AUX_CARRY1) => "carry_1".into(),
                    RelKey::Aux(AUX_SEEN1) => "seen_1".into(),
                    RelKey::Aux(AUX_CARRY2) => "carry_2".into(),
                    RelKey::Aux(n) => format!("aux_{n}"),
                },
                rows: s.rows,
                estimate: s.estimate,
                keyed_cols: s.keyed_cols,
            })
            .collect();
        PlanConj { label, scans }
    }
}

/// One scanned relation of a compiled conjunction, with the planner's
/// estimates — the numbers `:plan` / `--explain` print.
#[derive(Debug, Clone)]
pub struct PlanScan {
    /// Display name of the scanned relation (`Δname` for semi-naive
    /// deltas, `carry_1`/`seen_1`/`carry_2` for the executor's working
    /// sets).
    pub rel: String,
    /// Rows the planner believes the relation holds.
    pub rows: f64,
    /// Estimated rows the scan emits per execution (rows over the
    /// selectivity of its key columns).
    pub estimate: f64,
    /// Number of index-key columns (0 = outermost full scan).
    pub keyed_cols: usize,
}

/// One compiled conjunction of a [`PlanReport`]: a labelled join order.
#[derive(Debug, Clone)]
pub struct PlanConj {
    /// Where the conjunction sits (`phase 1, rule 0`, `seed 0`,
    /// `rule 2 (reach)`, …).
    pub label: String,
    /// Scans in execution order.
    pub scans: Vec<PlanScan>,
}

/// A query's evaluation plan without evaluating it — the structured form
/// behind [`QueryProcessor::explain`], rendered as JSON by `:plan` and
/// `--explain --json`.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The normalized query text.
    pub query: String,
    /// The strategy automatic selection would run
    /// (`separable`/`magic`/`seminaive`/`edb-scan`).
    pub strategy: String,
    /// `"cost-based"` or `"source-order"`.
    pub plan_mode: &'static str,
    /// The human-readable explanation (detection outcome, schema).
    pub text: String,
    /// Compiled join orders with per-scan cost estimates.
    pub conjunctions: Vec<PlanConj>,
}

/// Finalizes one strategy run into a [`QueryResult`], sorting the answer
/// tuples into their canonical [`Ord`] order. Every strategy (and every
/// thread count) produces the same answer *set* but its own insertion
/// order; sorting here makes downstream rendering stable without each
/// renderer re-sorting.
fn finish(answers: Relation, strategy: Strategy, stats: EvalStats, start: Instant) -> QueryResult {
    let arity = answers.arity();
    let mut tuples: Vec<Tuple> = answers.iter().map(|t| t.to_tuple()).collect();
    tuples.sort_unstable();
    QueryResult {
        answers: Relation::from_tuples(arity, tuples),
        strategy,
        stats,
        elapsed: start.elapsed(),
    }
}

/// Re-export for convenience in match arms.
pub use sepra_core::evaluate::StrategyNote as SeparableStrategyNote;

#[cfg(test)]
mod tests {
    use super::*;

    const EX_1_2: &str = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                          buys(X, Y) :- buys(X, W), cheaper(Y, W).\n\
                          buys(X, Y) :- perfectFor(X, Y).\n\
                          friend(tom, sue). friend(sue, joe).\n\
                          perfectFor(joe, widget).\n\
                          cheaper(bargain, widget).\n";

    #[test]
    fn auto_picks_separable() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        let r = qp.query("buys(tom, Y)?").unwrap();
        assert_eq!(r.strategy, Strategy::Separable);
        assert_eq!(r.answers.len(), 2); // widget and bargain
    }

    #[test]
    fn all_strategies_agree() {
        for strategy in [
            Strategy::Separable,
            Strategy::MagicSets,
            Strategy::Counting,
            Strategy::SemiNaive,
            Strategy::Naive,
        ] {
            let mut qp = QueryProcessor::new();
            qp.load(EX_1_2).unwrap();
            let r = qp
                .query_with("buys(tom, Y)?", StrategyChoice::Force(strategy))
                .unwrap_or_else(|e| panic!("{strategy} failed: {e}"));
            assert_eq!(r.answers.len(), 2, "strategy {strategy}");
        }
    }

    #[test]
    fn auto_falls_back_to_magic_on_nonseparable() {
        let mut qp = QueryProcessor::new();
        qp.load(
            "sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n\
             up(a, p). flat(p, q). down(q, b).\n",
        )
        .unwrap();
        let r = qp.query("sg(a, Y)?").unwrap();
        assert_eq!(r.strategy, Strategy::MagicSets);
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn auto_uses_seminaive_without_selection() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        let r = qp.query("buys(X, Y)?").unwrap();
        assert_eq!(r.strategy, Strategy::SemiNaive);
        assert!(!r.answers.is_empty());
    }

    #[test]
    fn edb_queries_work() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        let r = qp.query("friend(tom, W)?").unwrap();
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn support_predicates_are_materialized() {
        // `knows` is a non-recursive IDB predicate used by the recursion.
        let mut qp = QueryProcessor::new();
        qp.load(
            "knows(X, Y) :- friend(X, Y).\n\
             knows(X, Y) :- colleague(X, Y).\n\
             reach(X, Y) :- knows(X, W), reach(W, Y).\n\
             reach(X, Y) :- knows(X, Y).\n\
             friend(a, b). colleague(b, c).\n",
        )
        .unwrap();
        let r = qp.query("reach(a, Y)?").unwrap();
        assert_eq!(r.strategy, Strategy::Separable);
        assert_eq!(r.answers.len(), 2); // b and c
    }

    const SWAP: &str = "t(X, Y) :- sym(X, Y), t(Y, X).\n\
                        t(X, Y) :- base(X, Y).\n\
                        sym(a, b). sym(b, a). base(b, a). base(c, d).\n";

    #[test]
    fn auto_picks_bounded_over_everything() {
        for query in ["t(X, Y)?", "t(a, Y)?"] {
            let mut qp = QueryProcessor::new();
            qp.load(SWAP).unwrap();
            let r = qp.query(query).unwrap();
            assert_eq!(r.strategy, Strategy::Bounded, "query {query}");
            assert_eq!(r.stats.iterations, 0, "bounded runs must skip the fixpoint");
        }
    }

    #[test]
    fn bounded_agrees_with_seminaive_prepared_or_not() {
        let mut plain = QueryProcessor::new();
        plain.load(SWAP).unwrap();
        let expected = plain.query_with("t(X, Y)?", StrategyChoice::Force(Strategy::SemiNaive));
        let expected = expected.unwrap().answers;
        for prepare in [false, true] {
            let mut qp = QueryProcessor::new();
            qp.load(SWAP).unwrap();
            if prepare {
                qp.prepare().unwrap();
            }
            let r = qp.query_with("t(X, Y)?", StrategyChoice::Force(Strategy::Bounded)).unwrap();
            assert_eq!(r.answers.len(), expected.len(), "prepare={prepare}");
            for t in r.answers.iter() {
                assert!(expected.contains_row(t), "prepare={prepare}");
            }
        }
    }

    #[test]
    fn forced_bounded_fails_gracefully_on_unbounded() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        let err =
            qp.query_with("buys(tom, Y)?", StrategyChoice::Force(Strategy::Bounded)).unwrap_err();
        assert!(matches!(err, ProcessorError::StrategyUnavailable(_)), "{err}");
    }

    #[test]
    fn bounded_verdict_survives_mutations() {
        let mut qp = QueryProcessor::new();
        qp.load(SWAP).unwrap();
        qp.prepare().unwrap();
        // Insert facts of the bounded predicate itself: the verdict is
        // program-only, so the strategy must not change — and the new
        // fact must flow through the t@edb snapshot into the answers.
        let before = qp.query("t(X, Y)?").unwrap().answers.len();
        qp.apply_mutation(&["t(d, c)."], &[]).unwrap();
        let r = qp.query("t(X, Y)?").unwrap();
        assert_eq!(r.strategy, Strategy::Bounded);
        // t(d, c) itself plus the flip through sym? no sym(c, d) fact, so
        // exactly one new answer.
        assert_eq!(r.answers.len(), before + 1);
    }

    #[test]
    fn subsumptive_magic_agrees_with_magic() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        let r = qp
            .query_with("buys(tom, Y)?", StrategyChoice::Force(Strategy::MagicSubsumptive))
            .unwrap();
        assert_eq!(r.strategy, Strategy::MagicSubsumptive);
        assert_eq!(r.answers.len(), 2);
    }

    #[test]
    fn explain_reports_bounded_depth() {
        let mut qp = QueryProcessor::new();
        qp.load(SWAP).unwrap();
        let text = qp.explain("t(X, Y)?").unwrap();
        assert!(text.contains("bounded recursion detected"), "{text}");
        assert!(text.contains("bounded(1)"), "{text}");
        let report = qp.plan_report("t(X, Y)?").unwrap();
        assert_eq!(report.strategy, "bounded");
    }

    #[test]
    fn forced_separable_fails_gracefully() {
        let mut qp = QueryProcessor::new();
        qp.load("p(X) :- e(X).\ne(a).\n").unwrap();
        let err = qp.query_with("p(a)?", StrategyChoice::Force(Strategy::Separable)).unwrap_err();
        assert!(matches!(err, ProcessorError::StrategyUnavailable(_)));
    }

    #[test]
    fn explain_renders_schema() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        let text = qp.explain("buys(tom, Y)?").unwrap();
        assert!(text.contains("separable recursion detected"), "{text}");
        assert!(text.contains("carry_1"), "{text}");
        assert!(text.contains("strategy: separable"), "{text}");
        let text2 = qp.explain("buys(X, Y)?").unwrap();
        assert!(text2.contains("semi-naive"), "{text2}");
    }

    #[test]
    fn explain_persistent_selection() {
        let mut qp = QueryProcessor::new();
        qp.load(
            "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
             buys(X, Y) :- perfectFor(X, Y).\n\
             friend(a, b). perfectFor(b, w).\n",
        )
        .unwrap();
        let text = qp.explain("buys(X, w)?").unwrap();
        assert!(text.contains("persistent columns"), "{text}");
        assert!(text.contains("full selection on persistent columns"), "{text}");
        assert!(text.contains("seen_1("), "{text}");
    }

    #[test]
    fn plan_report_estimates_follow_statistics() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        let report = qp.plan_report("buys(tom, Y)?").unwrap();
        assert_eq!(report.strategy, "separable");
        assert_eq!(report.plan_mode, "cost-based");
        let labels: Vec<&str> = report.conjunctions.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.starts_with("phase 1")), "{labels:?}");
        assert!(labels.iter().any(|l| l.starts_with("seed")), "{labels:?}");
        assert!(labels.iter().any(|l| l.starts_with("phase 2")), "{labels:?}");
        // Sharded execution relies on the carry scan staying outermost.
        for c in report.conjunctions.iter().filter(|c| c.label.starts_with("phase 1")) {
            assert_eq!(c.scans[0].rel, "carry_1", "{:?}", c.scans);
        }
        let text = qp.explain("buys(tom, Y)?").unwrap();
        assert!(text.contains("join order (cost-based estimates):"), "{text}");
        assert!(text.contains("carry_1"), "{text}");
        // Semi-naive fallbacks report the per-rule join orders instead.
        let report = qp.plan_report("buys(X, Y)?").unwrap();
        assert_eq!(report.strategy, "seminaive");
        assert!(report.conjunctions.iter().any(|c| c.label.contains("buys")), "no rule conj");
    }

    #[test]
    fn why_requires_full_selection() {
        let mut qp = QueryProcessor::new();
        qp.load(
            "t(X, Y, Z) :- a(X, Y, U, V), t(U, V, Z).\n\
             t(X, Y, Z) :- t0(X, Y, Z).\n\
             a(c, d, e, f). t0(e, f, w).\n",
        )
        .unwrap();
        let err = qp.why("t(c, Y, Z)?").unwrap_err();
        assert!(matches!(err, ProcessorError::Eval(_)), "{err}");
        // And works on a full selection.
        let text = qp.why("t(c, d, Z)?").unwrap();
        assert!(text.contains("because"), "{text}");
    }

    #[test]
    fn program_facts_for_recursive_pred_become_exit_rules() {
        let mut qp = QueryProcessor::new();
        qp.load(
            "t(X, Y) :- e(X, W), t(W, Y).\n\
             e(a, b). e(b, c). t(c, goal).\n",
        )
        .unwrap();
        let r = qp.query("t(a, Y)?").unwrap();
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn query_on_unknown_predicate_is_empty() {
        let mut qp = QueryProcessor::new();
        qp.load("e(a, b).\n").unwrap();
        let r = qp.query("ghost(a, Y)?").unwrap();
        assert!(r.answers.is_empty());
    }

    #[test]
    fn answers_are_sorted_for_every_strategy() {
        for strategy in
            [Strategy::Separable, Strategy::MagicSets, Strategy::SemiNaive, Strategy::Naive]
        {
            let mut qp = QueryProcessor::new();
            qp.load(EX_1_2).unwrap();
            let r = qp.query_with("buys(tom, Y)?", StrategyChoice::Force(strategy)).unwrap();
            let tuples: Vec<_> = r.answers.iter().map(|t| t.to_tuple()).collect();
            let mut sorted = tuples.clone();
            sorted.sort_unstable();
            assert_eq!(tuples, sorted, "strategy {strategy} answers not sorted");
        }
    }

    #[test]
    fn prepared_processor_matches_unprepared_and_caches_plans() {
        let mut plain = QueryProcessor::new();
        plain.load(EX_1_2).unwrap();
        let expected = plain.query("buys(tom, Y)?").unwrap();

        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        qp.prepare().unwrap();
        let first = qp.query("buys(tom, Y)?").unwrap();
        assert_eq!(first.strategy, Strategy::Separable);
        assert_eq!(first.answers, expected.answers);
        assert_eq!(qp.plan_cache().misses(), 1);

        // A clone (as a server worker would hold) shares the plan cache.
        let mut worker = qp.clone();
        let second = worker.query("buys(sue, Y)?").unwrap();
        assert_eq!(second.strategy, Strategy::Separable);
        assert_eq!(qp.plan_cache().hits(), 1);
        assert_eq!(qp.plan_cache().entries(), 1);
    }

    #[test]
    fn loading_invalidates_prepared_state() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        qp.prepare().unwrap();
        // New facts after prepare() must be visible to later queries.
        qp.load("friend(joe, pat). perfectFor(pat, hat).\n").unwrap();
        let r = qp.query("buys(tom, Y)?").unwrap();
        assert_eq!(r.answers.len(), 3); // widget, bargain, hat
    }

    #[test]
    fn mutation_updates_prepared_answers_incrementally() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        qp.prepare().unwrap();
        assert_eq!(qp.query("buys(tom, Y)?").unwrap().answers.len(), 2);

        let out = qp.apply_mutation(&["friend(joe, pat).", "perfectFor(pat, hat)."], &[]).unwrap();
        assert_eq!(out.inserted, 2);
        assert_eq!(out.retracted, 0);
        let r = qp.query("buys(tom, Y)?").unwrap();
        assert_eq!(r.strategy, Strategy::Separable);
        assert_eq!(r.answers.len(), 3); // widget, bargain, hat

        let out = qp.apply_mutation(&[], &["perfectFor(joe, widget)."]).unwrap();
        assert_eq!(out.retracted, 1);
        let r = qp.query("buys(tom, Y)?").unwrap();
        assert_eq!(r.answers.len(), 1); // only hat: bargain rode on widget
    }

    #[test]
    fn mutation_matches_a_fresh_processor_for_every_strategy() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        qp.prepare().unwrap();
        qp.apply_mutation(
            &["friend(joe, pat).", "perfectFor(pat, hat).", "cheaper(steal, hat)."],
            &["cheaper(bargain, widget)."],
        )
        .unwrap();

        let mut fresh = QueryProcessor::new();
        fresh.load(EX_1_2).unwrap();
        fresh
            .db_mut()
            .load_fact_text("friend(joe, pat). perfectFor(pat, hat). cheaper(steal, hat).")
            .unwrap();
        let widget = {
            let cheaper = fresh.db_mut().intern("cheaper");
            let rel = fresh.db().relation(cheaper).unwrap();
            rel.iter().next().unwrap().to_tuple()
        };
        let cheaper = fresh.db_mut().intern("cheaper");
        fresh.db_mut().retract(cheaper, &widget).unwrap();

        for strategy in [
            Strategy::Separable,
            Strategy::MagicSets,
            Strategy::Counting,
            Strategy::SemiNaive,
            Strategy::Naive,
        ] {
            let a = qp.query_with("buys(tom, Y)?", StrategyChoice::Force(strategy)).unwrap();
            let b = fresh.query_with("buys(tom, Y)?", StrategyChoice::Force(strategy)).unwrap();
            // The two processors interned symbols in different orders, so
            // compare rendered tuples rather than raw `Sym` ids.
            let mut ra: Vec<String> =
                a.answers.iter().map(|t| t.display(qp.db().interner()).to_string()).collect();
            let mut rb: Vec<String> =
                b.answers.iter().map(|t| t.display(fresh.db().interner()).to_string()).collect();
            ra.sort();
            rb.sort();
            assert_eq!(ra, rb, "strategy {strategy} diverged after mutation");
        }
    }

    #[test]
    fn mutation_bumps_generation_and_drift_checks_plan_cache() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        qp.prepare().unwrap();
        let gen0 = qp.generation();
        assert_eq!(qp.plan_cache().generation(), gen0);
        qp.query("buys(tom, Y)?").unwrap();
        assert_eq!(qp.plan_cache().entries(), 1);
        assert_eq!(qp.plan_cache().misses(), 1);

        // A small mutation advances the generation but keeps the cached
        // plan: nothing it scans has drifted past the replan threshold.
        let out = qp.apply_mutation(&["friend(pat, tom)."], &[]).unwrap();
        assert_eq!(out.generation, gen0 + 1);
        assert_eq!(qp.generation(), gen0 + 1);
        assert_eq!(qp.plan_cache().generation(), gen0 + 1);
        assert_eq!(qp.plan_cache().entries(), 1);
        assert_eq!(qp.plan_cache().drift_invalidations(), 0);
        qp.query("buys(tom, Y)?").unwrap();
        assert_eq!(qp.plan_cache().misses(), 1, "retained plan served the query");

        // Growing `friend` far past the size it was planned at (the
        // retained entry keeps its *original* snapshot, so small steps
        // accumulate) invalidates the plan; the next query recompiles.
        let grow: Vec<String> = (0..40).map(|i| format!("friend(extra{i}, tom).")).collect();
        let grow_refs: Vec<&str> = grow.iter().map(String::as_str).collect();
        qp.apply_mutation(&grow_refs, &[]).unwrap();
        assert_eq!(qp.plan_cache().entries(), 0);
        assert_eq!(qp.plan_cache().drift_invalidations(), 1);
        qp.query("buys(tom, Y)?").unwrap();
        assert_eq!(qp.plan_cache().misses(), 2);

        // An ineffective mutation keeps the generation (and the cache).
        let gen2 = qp.generation();
        let out = qp.apply_mutation(&["friend(pat, tom)."], &["ghost(a, b)."]).unwrap();
        assert_eq!(out.inserted, 0);
        assert_eq!(out.retracted, 0);
        assert_eq!(qp.generation(), gen2);
        assert_eq!(qp.plan_cache().entries(), 1);
    }

    #[test]
    fn mutation_rejects_rules_and_non_ground_facts() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        let err = qp.apply_mutation(&["p(X) :- q(X)."], &[]).unwrap_err();
        assert!(matches!(err, ProcessorError::Facts(_)), "{err}");
        // A non-ground fact is already rejected by the parser's safety
        // check (head variable not bound in an empty body).
        let err = qp.apply_mutation(&["friend(X, tom)."], &[]).unwrap_err();
        assert!(matches!(err, ProcessorError::Ast(_)), "{err}");
    }

    #[test]
    fn failed_mutation_is_all_or_none() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        qp.prepare().unwrap();
        let gen0 = qp.generation();
        // The retraction is valid, the insertion has an arity clash: the
        // whole mutation must be rejected and the database untouched.
        let err = qp.apply_mutation(&["friend(solo)."], &["friend(tom, sue)."]).unwrap_err();
        assert!(matches!(err, ProcessorError::Facts(_)), "{err}");
        assert_eq!(qp.generation(), gen0);
        assert_eq!(qp.query("buys(tom, Y)?").unwrap().answers.len(), 2);
    }

    #[test]
    fn unprepared_mutation_still_works() {
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        let out = qp.apply_mutation(&["perfectFor(sue, gift)."], &[]).unwrap();
        assert_eq!(out.inserted, 1);
        assert_eq!(qp.query("buys(tom, Y)?").unwrap().answers.len(), 3);
    }

    const STRATIFIED: &str = "t(X, Y) :- e(X, Y).\n\
                              t(X, Y) :- e(X, W), t(W, Y).\n\
                              unreach(X, Y) :- node(X), node(Y), !t(X, Y).\n\
                              shortest(Y, min<C>) :- source(X), w(X, Y, C).\n\
                              shortest(Y, min<C>) :- shortest(X, D), w(X, Y, W2), C = D + W2.\n\
                              e(a, b). e(b, c). node(a). node(b). node(c). source(a).\n\
                              w(a, b, 1). w(b, c, 1). w(a, c, 5).\n";

    #[test]
    fn auto_routes_stratified_programs_to_seminaive() {
        let mut qp = QueryProcessor::new();
        qp.load(STRATIFIED).unwrap();
        // 3 of the 9 node pairs are reachable, so 6 are not.
        let r = qp.query("unreach(X, Y)?").unwrap();
        assert_eq!(r.strategy, Strategy::SemiNaive);
        assert_eq!(r.answers.len(), 6);
        // min-aggregate shortest paths: b via 1, c via 1+1 (beats direct 5).
        let r = qp.query("shortest(X, C)?").unwrap();
        assert_eq!(r.strategy, Strategy::SemiNaive);
        assert_eq!(r.answers.len(), 2);
        // Even a selection on the pure positive recursion stays on the
        // general engine: the magic rewrite never sees stratified programs.
        let r = qp.query("t(a, Y)?").unwrap();
        assert_eq!(r.strategy, Strategy::SemiNaive);
        assert_eq!(r.answers.len(), 2);
    }

    #[test]
    fn forced_specialized_strategies_refuse_stratified_programs() {
        for strategy in [
            Strategy::Bounded,
            Strategy::Separable,
            Strategy::MagicSets,
            Strategy::MagicSupplementary,
            Strategy::MagicSubsumptive,
            Strategy::Counting,
            Strategy::HenschenNaqvi,
        ] {
            let mut qp = QueryProcessor::new();
            qp.load(STRATIFIED).unwrap();
            let err = qp.query_with("t(a, Y)?", StrategyChoice::Force(strategy)).unwrap_err();
            let ProcessorError::StrategyUnavailable(msg) = err else {
                panic!("{strategy}: expected StrategyUnavailable, got {err}");
            };
            assert!(msg.contains("negation or aggregates"), "{strategy}: {msg}");
        }
    }

    #[test]
    fn naive_and_seminaive_agree_on_stratified_programs() {
        let mut qp = QueryProcessor::new();
        qp.load(STRATIFIED).unwrap();
        for query in ["unreach(X, Y)?", "shortest(X, C)?"] {
            let s = qp.query_with(query, StrategyChoice::Force(Strategy::SemiNaive)).unwrap();
            let n = qp.query_with(query, StrategyChoice::Force(Strategy::Naive)).unwrap();
            assert_eq!(s.answers, n.answers, "{query}");
        }
    }

    #[test]
    fn unstratifiable_programs_are_refused_with_both_rules_named() {
        let mut qp = QueryProcessor::new();
        qp.load("p(X) :- a(X), !q(X).\nq(X) :- p(X).\na(m).\n").unwrap();
        let err = qp.query("p(X)?").unwrap_err();
        let ProcessorError::Eval(EvalError::Unstratifiable(msg)) = err else {
            panic!("expected Unstratifiable, got {err}");
        };
        assert!(msg.contains("`p`") && msg.contains("`q`"), "{msg}");
    }

    #[test]
    fn stratified_mutations_maintain_incrementally() {
        let mut qp = QueryProcessor::new();
        qp.load(STRATIFIED).unwrap();
        qp.prepare().unwrap();
        // Retracting the light edge relaxes the shortest path to c through
        // the direct heavy edge, and b becomes unreachable entirely.
        qp.apply_mutation(&[], &["e(a, b).", "w(a, b, 1)."]).unwrap();
        let mut fresh = QueryProcessor::new();
        fresh
            .load(
                "t(X, Y) :- e(X, Y).\n\
                 t(X, Y) :- e(X, W), t(W, Y).\n\
                 unreach(X, Y) :- node(X), node(Y), !t(X, Y).\n\
                 shortest(Y, min<C>) :- source(X), w(X, Y, C).\n\
                 shortest(Y, min<C>) :- shortest(X, D), w(X, Y, W2), C = D + W2.\n\
                 e(b, c). node(a). node(b). node(c). source(a).\n\
                 w(b, c, 1). w(a, c, 5).\n",
            )
            .unwrap();
        // The two processors have distinct interners, so compare rendered
        // tuples rather than raw symbol ids.
        for query in ["unreach(X, Y)?", "shortest(X, C)?", "t(X, Y)?"] {
            let got = qp.query(query).unwrap();
            let want = fresh.query(query).unwrap();
            let render = |r: &QueryResult, i: &sepra_ast::Interner| -> Vec<String> {
                let mut v: Vec<String> =
                    r.answers.iter().map(|t| t.to_tuple().display(i).to_string()).collect();
                v.sort();
                v
            };
            assert_eq!(
                render(&got, qp.db().interner()),
                render(&want, fresh.db().interner()),
                "{query}"
            );
        }
    }

    #[test]
    fn plan_report_shows_per_stratum_sections() {
        let mut qp = QueryProcessor::new();
        qp.load(STRATIFIED).unwrap();
        let report = qp.plan_report("unreach(X, Y)?").unwrap();
        assert_eq!(report.strategy, "seminaive");
        assert!(report.text.contains("stratified program"), "{}", report.text);
        assert!(report.text.contains("stratum 0: t"), "{}", report.text);
        assert!(report.text.contains("unreach"), "{}", report.text);
        assert!(
            report.conjunctions.iter().any(|c| c.label.starts_with("stratum 0,")),
            "{:?}",
            report.conjunctions
        );
        assert!(
            report.conjunctions.iter().any(|c| c.label.contains("(unreach)")),
            "{:?}",
            report.conjunctions
        );
        // The explain text embeds the same sections.
        let text = qp.explain("unreach(X, Y)?").unwrap();
        assert!(text.contains("stratum by stratum"), "{text}");
    }

    #[test]
    fn plan_report_refuses_unstratifiable_programs() {
        let mut qp = QueryProcessor::new();
        qp.load("p(X) :- a(X), !q(X).\nq(X) :- p(X).\na(m).\n").unwrap();
        let report = qp.plan_report("p(X)?").unwrap();
        assert_eq!(report.strategy, "unstratifiable");
        assert!(report.text.contains("unstratifiable program"), "{}", report.text);
        assert!(report.conjunctions.is_empty());
    }

    #[test]
    fn budget_cuts_off_queries_without_poisoning() {
        use sepra_eval::{Budget, BudgetResource};
        let mut qp = QueryProcessor::new();
        qp.load(EX_1_2).unwrap();
        qp.set_exec_options(ExecOptions {
            budget: Budget::default().iterations(0),
            ..ExecOptions::default()
        });
        let err = qp.query("buys(tom, Y)?").unwrap_err();
        match err {
            ProcessorError::Eval(EvalError::BudgetExceeded { resource, .. }) => {
                assert_eq!(resource, BudgetResource::Iterations);
            }
            other => panic!("expected BudgetExceeded, got {other}"),
        }
        // Lifting the budget on the same processor works again.
        qp.set_exec_options(ExecOptions::default());
        assert_eq!(qp.query("buys(tom, Y)?").unwrap().answers.len(), 2);
    }
}
