//! `sepra` — a small CLI for the separable-recursion query processor.
//!
//! ```text
//! sepra [OPTIONS] [FILE...]
//! sepra check [OPTIONS] FILE...
//!
//! Options:
//!   -q, --query QUERY       run QUERY (e.g. 'buys(tom, Y)?') and exit
//!   -s, --strategy NAME     force a strategy: separable|magic|magic-sup|counting|hn|seminaive|naive
//!   -f, --format FMT        answer output format: text (default) | csv | json
//!   -t, --threads N         worker threads for fixpoint iterations
//!                           (default: available parallelism; 1 = serial)
//!       --stats             print relation-size statistics after each query
//!       --explain           print the evaluation plan instead of running
//!       --check             print the diagnostic report for the loaded program
//!       --repl              start an interactive session (default if no -q)
//!   -h, --help              this message
//! ```
//!
//! `sepra check` is the static-analysis front door: it lints one or more
//! files without evaluating anything, reporting unsafe rules, arity
//! mismatches, unused/undefined predicates (`LNT0xx`) and — per recursive
//! predicate — either the separable structure or the exact condition of
//! the paper's Definition 2.4 that fails (`SEP00x`), with source snippets
//! or as JSON (`--format json`).
//!
//! In the REPL, clauses ending in `.` extend the program/database, atoms
//! ending in `?` are queries, and commands start with `:` (`:help`).

use std::io::{BufRead, Write};
use std::process::ExitCode;

use sepra_core::exec::ExecOptions;
use sepra_engine::{
    render_answers, render_answers_csv, render_answers_json, ProcessorError, QueryProcessor,
    Strategy, StrategyChoice,
};

struct Options {
    files: Vec<String>,
    query: Option<String>,
    strategy: StrategyChoice,
    stats: bool,
    explain: bool,
    check: bool,
    repl: bool,
    format: Format,
    threads: usize,
}

/// Default worker count: whatever the OS reports, falling back to serial.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Csv,
    Json,
}

/// Parses the main CLI's arguments. `Ok(None)` means `--help` was handled
/// and the process should exit successfully.
fn parse_args(args: Vec<String>) -> Result<Option<Options>, String> {
    let mut opts = Options {
        files: Vec::new(),
        query: None,
        strategy: StrategyChoice::Auto,
        stats: false,
        explain: false,
        check: false,
        repl: false,
        format: Format::Text,
        threads: default_threads(),
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-q" | "--query" => {
                opts.query = Some(args.next().ok_or("missing argument for --query")?);
            }
            "-s" | "--strategy" => {
                let name = args.next().ok_or("missing argument for --strategy")?;
                opts.strategy = StrategyChoice::Force(name.parse::<Strategy>()?);
            }
            "--stats" => opts.stats = true,
            "--explain" => opts.explain = true,
            "--check" => opts.check = true,
            "-f" | "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("csv") => Format::Csv,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format expects text|csv|json, got {:?}",
                            other.unwrap_or("<missing>")
                        ))
                    }
                };
            }
            "-t" | "--threads" => {
                let n = args.next().ok_or("missing argument for --threads")?;
                opts.threads =
                    n.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--threads expects a positive integer, got `{n}`")
                    })?;
            }
            "--repl" => opts.repl = true,
            "-h" | "--help" => {
                print!("{}", HELP);
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (try --help)"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    Ok(Some(opts))
}

const HELP: &str = "\
sepra — deductive database engine with compiled separable recursions

Usage: sepra [OPTIONS] [FILE...]
       sepra check [OPTIONS] FILE...     (see `sepra check --help`)

Options:
  -q, --query QUERY     run QUERY (e.g. 'buys(tom, Y)?') and exit
  -s, --strategy NAME   separable|magic|magic-sup|counting|hn|seminaive|naive
  -t, --threads N       worker threads for fixpoint iterations
                        (default: available parallelism; 1 = serial)
      --stats           print relation-size statistics after each query
      --explain         print the evaluation plan instead of running
      --check           print the diagnostic report for the loaded program
  -f, --format FMT      answer output format: text (default) | csv | json
      --repl            interactive session (default when no --query)
  -h, --help            this message
";

const CHECK_HELP: &str = "\
sepra check — static analysis for Datalog programs

Usage: sepra check [OPTIONS] FILE...

Lints each FILE without evaluating it: unsafe rules, arity mismatches,
undefined/unused predicates, duplicate clauses (LNT0xx), and — for every
recursive predicate — either its separable class structure (SEP100) or
the violated condition of Definition 2.4 (SEP001..SEP004), each pointing
at the offending rule and argument positions.

Options:
  -q, --query QUERY     analyze relative to QUERY (reachability, arity)
  -f, --format FMT      report format: text (default) | json
      --deny warnings   exit nonzero on warnings, not just errors
  -h, --help            this message

Exit status: 0 clean, 1 errors (or warnings under --deny warnings),
2 usage or I/O failure.
";

const REPL_HELP: &str = "\
Clauses ending in `.` extend the program or database.
Atoms ending in `?` run as queries.
Commands:
  :strategy NAME   force a strategy (auto|separable|magic|magic-sup|counting|hn|seminaive|naive)
  :explain QUERY   show the evaluation plan for QUERY
  :why QUERY       answer QUERY and show one derivation per answer
  :stats on|off    toggle statistics output
  :lint [QUERY]    diagnostic report, optionally relative to QUERY
  :check           alias for :lint without a query
  :program         list loaded rules
  :help            this message
  :quit            exit
";

/// Renders a load/parse failure. Frontend errors carry spans, so they get
/// the full rustc-style snippet against the text that produced them; other
/// errors fall back to a one-line message.
fn report_ast_error(name: &str, text: &str, e: &ProcessorError) {
    match e {
        ProcessorError::Ast(ast) => {
            let file = sepra_lint::SourceFile::new(name, text);
            let diag = sepra_lint::parse_error_diagnostic(ast);
            eprint!("{}", sepra_lint::render_diagnostic_text(&diag, &file));
        }
        other => eprintln!("error: {other}"),
    }
}

/// The `sepra check FILE...` subcommand: lint-only, no evaluation.
fn run_check(args: &[String]) -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut json = false;
    let mut deny_warnings = false;
    let mut query: Option<String> = None;
    let usage_error = |msg: &str| {
        eprintln!("error: {msg}");
        ExitCode::from(2)
    };
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-f" | "--format" => match args.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    return usage_error(&format!(
                        "--format expects text|json, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--deny" => match args.next().map(String::as_str) {
                Some("warnings") => deny_warnings = true,
                other => {
                    return usage_error(&format!(
                        "--deny expects `warnings`, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "-q" | "--query" => match args.next() {
                Some(q) => query = Some(q.clone()),
                None => return usage_error("missing argument for --query"),
            },
            "-h" | "--help" => {
                print!("{}", CHECK_HELP);
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option `{other}` (try `sepra check --help`)"))
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return usage_error("sepra check needs at least one file (try `sepra check --help`)");
    }
    let mut worst: u8 = 0;
    for (i, file) in files.iter().enumerate() {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                worst = worst.max(2);
                continue;
            }
        };
        let result = sepra_lint::check_source(file, &text, query.as_deref());
        if json {
            // One JSON document per file, newline-separated (JSON lines of
            // pretty-printed objects; single-file invocations emit exactly
            // one object).
            print!("{}", result.render_json());
        } else {
            if i > 0 {
                println!();
            }
            print!("{}", result.render_text());
        }
        worst = worst.max(result.exit_code(deny_warnings) as u8);
    }
    ExitCode::from(worst)
}

fn run_query(
    qp: &mut QueryProcessor,
    src: &str,
    strategy: StrategyChoice,
    stats: bool,
    format: Format,
) {
    let query = match qp.parse_query(src) {
        Ok(q) => q,
        Err(e) => {
            report_ast_error("<query>", src, &e);
            return;
        }
    };
    match qp.run_query(&query, strategy) {
        Ok(result) => match format {
            Format::Text => {
                print!("{}", render_answers(&result.answers, qp.db().interner()));
                println!(
                    "-- {} answers in {:.3?} via {}",
                    result.answers.len(),
                    result.elapsed,
                    result.strategy
                );
                if stats {
                    print!("{}", result.stats);
                }
            }
            Format::Csv => print!("{}", render_answers_csv(&result.answers, qp.db().interner())),
            Format::Json => print!("{}", render_answers_json(&result.answers, qp.db().interner())),
        },
        Err(e) => eprintln!("error: {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check") {
        return run_check(&args[1..]);
    }
    let opts = match parse_args(args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut qp = QueryProcessor::new();
    qp.set_exec_options(ExecOptions { threads: opts.threads, ..ExecOptions::default() });
    for file in &opts.files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = qp.load(&text) {
            report_ast_error(file, &text, &e);
            return ExitCode::FAILURE;
        }
    }

    if opts.check {
        print!("{}", qp.check_report());
        return ExitCode::SUCCESS;
    }

    if let Some(query) = &opts.query {
        if opts.explain {
            match qp.explain(query) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            run_query(&mut qp, query, opts.strategy, opts.stats, opts.format);
        }
        return ExitCode::SUCCESS;
    }

    // REPL.
    println!("sepra — type :help for commands");
    let stdin = std::io::stdin();
    let mut strategy = opts.strategy;
    let mut stats = opts.stats;
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("sepra> ");
        } else {
            print!("   ... ");
        }
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if buffer.is_empty() && line.starts_with(':') {
            let mut parts = line.splitn(2, ' ');
            let cmd = parts.next().unwrap_or_default();
            let rest = parts.next().unwrap_or("").trim();
            match cmd {
                ":quit" | ":q" | ":exit" => break,
                ":help" | ":h" => print!("{REPL_HELP}"),
                ":stats" => {
                    stats = rest != "off";
                    println!("stats {}", if stats { "on" } else { "off" });
                }
                ":strategy" => {
                    if rest == "auto" {
                        strategy = StrategyChoice::Auto;
                        println!("strategy auto");
                    } else {
                        match rest.parse::<Strategy>() {
                            Ok(s) => {
                                strategy = StrategyChoice::Force(s);
                                println!("strategy {s}");
                            }
                            Err(e) => eprintln!("error: {e}"),
                        }
                    }
                }
                ":explain" => match qp.explain(rest) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                },
                ":why" => match qp.why(rest) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                },
                ":lint" => {
                    if qp.source().trim().is_empty() {
                        println!("no rules loaded");
                    } else {
                        let q = if rest.is_empty() { None } else { Some(rest) };
                        print!("{}", qp.lint("<repl>", q).render_text());
                    }
                }
                ":check" => print!("{}", qp.check_report()),
                ":program" => {
                    print!(
                        "{}",
                        sepra_ast::pretty::program_to_string(qp.program(), qp.db().interner())
                    );
                }
                other => eprintln!("error: unknown command {other} (try :help)"),
            }
            continue;
        }
        buffer.push_str(line);
        buffer.push(' ');
        // A statement is complete at a trailing `.` or `?`.
        let complete = line.ends_with('.') || line.ends_with('?');
        if !complete {
            continue;
        }
        let stmt = buffer.trim().to_string();
        buffer.clear();
        if stmt.ends_with('?') {
            run_query(&mut qp, &stmt, strategy, stats, opts.format);
        } else if let Err(e) = qp.load(&stmt) {
            report_ast_error("<repl>", &stmt, &e);
        }
    }
    ExitCode::SUCCESS
}
