//! `sepra` — a small CLI for the separable-recursion query processor.
//!
//! ```text
//! sepra [OPTIONS] [FILE...]
//!
//! Options:
//!   -q, --query QUERY       run QUERY (e.g. 'buys(tom, Y)?') and exit
//!   -s, --strategy NAME     force a strategy: separable|magic|magic-sup|counting|hn|seminaive|naive
//!   -f, --format FMT        answer output format: text (default) | csv | json
//!   -t, --threads N         worker threads for fixpoint iterations
//!                           (default: available parallelism; 1 = serial)
//!       --stats             print relation-size statistics after each query
//!       --explain           print the evaluation plan instead of running
//!       --check             print a separability report for every predicate
//!       --repl              start an interactive session (default if no -q)
//!   -h, --help              this message
//! ```
//!
//! In the REPL, clauses ending in `.` extend the program/database, atoms
//! ending in `?` are queries, and commands start with `:` (`:help`).

use std::io::{BufRead, Write};
use std::process::ExitCode;

use sepra_core::exec::ExecOptions;
use sepra_engine::{
    render_answers, render_answers_csv, render_answers_json, QueryProcessor, Strategy,
    StrategyChoice,
};

struct Options {
    files: Vec<String>,
    query: Option<String>,
    strategy: StrategyChoice,
    stats: bool,
    explain: bool,
    check: bool,
    repl: bool,
    format: Format,
    threads: usize,
}

/// Default worker count: whatever the OS reports, falling back to serial.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Csv,
    Json,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        query: None,
        strategy: StrategyChoice::Auto,
        stats: false,
        explain: false,
        check: false,
        repl: false,
        format: Format::Text,
        threads: default_threads(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-q" | "--query" => {
                opts.query = Some(args.next().ok_or("missing argument for --query")?);
            }
            "-s" | "--strategy" => {
                let name = args.next().ok_or("missing argument for --strategy")?;
                opts.strategy = StrategyChoice::Force(name.parse::<Strategy>()?);
            }
            "--stats" => opts.stats = true,
            "--explain" => opts.explain = true,
            "--check" => opts.check = true,
            "-f" | "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("csv") => Format::Csv,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format expects text|csv|json, got {:?}",
                            other.unwrap_or("<missing>")
                        ))
                    }
                };
            }
            "-t" | "--threads" => {
                let n = args.next().ok_or("missing argument for --threads")?;
                opts.threads =
                    n.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--threads expects a positive integer, got `{n}`")
                    })?;
            }
            "--repl" => opts.repl = true,
            "-h" | "--help" => {
                print!("{}", HELP);
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (try --help)"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    Ok(opts)
}

const HELP: &str = "\
sepra — deductive database engine with compiled separable recursions

Usage: sepra [OPTIONS] [FILE...]

Options:
  -q, --query QUERY     run QUERY (e.g. 'buys(tom, Y)?') and exit
  -s, --strategy NAME   separable|magic|magic-sup|counting|hn|seminaive|naive
  -t, --threads N       worker threads for fixpoint iterations
                        (default: available parallelism; 1 = serial)
      --stats           print relation-size statistics after each query
      --explain         print the evaluation plan instead of running
      --check           print a separability report for every predicate
  -f, --format FMT      answer output format: text (default) | csv | json
      --repl            interactive session (default when no --query)
  -h, --help            this message
";

const REPL_HELP: &str = "\
Clauses ending in `.` extend the program or database.
Atoms ending in `?` run as queries.
Commands:
  :strategy NAME   force a strategy (auto|separable|magic|magic-sup|counting|hn|seminaive|naive)
  :explain QUERY   show the evaluation plan for QUERY
  :why QUERY       answer QUERY and show one derivation per answer
  :stats on|off    toggle statistics output
  :check           separability report for every predicate
  :program         list loaded rules
  :help            this message
  :quit            exit
";

fn run_query(
    qp: &mut QueryProcessor,
    src: &str,
    strategy: StrategyChoice,
    stats: bool,
    format: Format,
) {
    let query = match qp.parse_query(src) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: {e}");
            return;
        }
    };
    match qp.run_query(&query, strategy) {
        Ok(result) => match format {
            Format::Text => {
                print!("{}", render_answers(&result.answers, qp.db().interner()));
                println!(
                    "-- {} answers in {:.3?} via {}",
                    result.answers.len(),
                    result.elapsed,
                    result.strategy
                );
                if stats {
                    print!("{}", result.stats);
                }
            }
            Format::Csv => print!("{}", render_answers_csv(&result.answers, qp.db().interner())),
            Format::Json => print!("{}", render_answers_json(&result.answers, qp.db().interner())),
        },
        Err(e) => eprintln!("error: {e}"),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut qp = QueryProcessor::new();
    qp.set_exec_options(ExecOptions { threads: opts.threads, ..ExecOptions::default() });
    for file in &opts.files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = qp.load(&text) {
            eprintln!("error in {file}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if opts.check {
        print!("{}", qp.check_report());
        return ExitCode::SUCCESS;
    }

    if let Some(query) = &opts.query {
        if opts.explain {
            match qp.explain(query) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            run_query(&mut qp, query, opts.strategy, opts.stats, opts.format);
        }
        return ExitCode::SUCCESS;
    }

    // REPL.
    println!("sepra — type :help for commands");
    let stdin = std::io::stdin();
    let mut strategy = opts.strategy;
    let mut stats = opts.stats;
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("sepra> ");
        } else {
            print!("   ... ");
        }
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if buffer.is_empty() && line.starts_with(':') {
            let mut parts = line.splitn(2, ' ');
            let cmd = parts.next().unwrap_or_default();
            let rest = parts.next().unwrap_or("").trim();
            match cmd {
                ":quit" | ":q" | ":exit" => break,
                ":help" | ":h" => print!("{REPL_HELP}"),
                ":stats" => {
                    stats = rest != "off";
                    println!("stats {}", if stats { "on" } else { "off" });
                }
                ":strategy" => {
                    if rest == "auto" {
                        strategy = StrategyChoice::Auto;
                        println!("strategy auto");
                    } else {
                        match rest.parse::<Strategy>() {
                            Ok(s) => {
                                strategy = StrategyChoice::Force(s);
                                println!("strategy {s}");
                            }
                            Err(e) => eprintln!("error: {e}"),
                        }
                    }
                }
                ":explain" => match qp.explain(rest) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                },
                ":why" => match qp.why(rest) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                },
                ":check" => print!("{}", qp.check_report()),
                ":program" => {
                    print!(
                        "{}",
                        sepra_ast::pretty::program_to_string(qp.program(), qp.db().interner())
                    );
                }
                other => eprintln!("error: unknown command {other} (try :help)"),
            }
            continue;
        }
        buffer.push_str(line);
        buffer.push(' ');
        // A statement is complete at a trailing `.` or `?`.
        let complete = line.ends_with('.') || line.ends_with('?');
        if !complete {
            continue;
        }
        let stmt = buffer.trim().to_string();
        buffer.clear();
        if stmt.ends_with('?') {
            run_query(&mut qp, &stmt, strategy, stats, opts.format);
        } else if let Err(e) = qp.load(&stmt) {
            eprintln!("error: {e}");
        }
    }
    ExitCode::SUCCESS
}
