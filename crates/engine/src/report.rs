//! Rendering query results for humans.

use sepra_ast::Interner;
use sepra_storage::Relation;

/// Renders an answer relation as one tuple per line, sorted
/// lexicographically by rendered text (deterministic output for the CLI and
/// golden tests).
pub fn render_answers(answers: &Relation, interner: &Interner) -> String {
    let mut lines: Vec<String> = answers.iter().map(|t| t.display(interner).to_string()).collect();
    lines.sort();
    let mut out = String::new();
    for line in &lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Renders answers as CSV (one tuple per line, values comma-separated,
/// sorted lexicographically). Values containing commas or quotes are
/// double-quoted with quote doubling per RFC 4180.
pub fn render_answers_csv(answers: &Relation, interner: &Interner) -> String {
    let escape = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut lines: Vec<String> = answers
        .iter()
        .map(|t| {
            t.values()
                .map(|v| escape(&v.display(interner).to_string()))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    lines.sort();
    let mut out = String::new();
    for line in &lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Renders answers as a JSON array of arrays of strings (sorted, stable).
/// Hand-rolled (no serde in the approved dependency set): strings are
/// escaped per JSON's required set.
pub fn render_answers_json(answers: &Relation, interner: &Interner) -> String {
    let escape = |s: &str| -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    };
    let mut rows: Vec<String> = answers
        .iter()
        .map(|t| {
            let cells: Vec<String> = t
                .values()
                .map(|v| format!("\"{}\"", escape(&v.display(interner).to_string())))
                .collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    rows.sort();
    format!("[{}]\n", rows.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_storage::{Database, Tuple, Value};

    #[test]
    fn renders_sorted_tuples() {
        let mut db = Database::new();
        let b = db.intern("b");
        let a = db.intern("a");
        let mut rel = Relation::new(2);
        rel.insert(Tuple::from([Value::sym(b), Value::sym(a)]));
        rel.insert(Tuple::from([Value::sym(a), Value::sym(b)]));
        let text = render_answers(&rel, db.interner());
        assert_eq!(text, "(a, b)\n(b, a)\n");
    }

    #[test]
    fn empty_relation_renders_empty() {
        let db = Database::new();
        let rel = Relation::new(1);
        assert_eq!(render_answers(&rel, db.interner()), "");
        assert_eq!(render_answers_csv(&rel, db.interner()), "");
        assert_eq!(render_answers_json(&rel, db.interner()), "[]\n");
    }

    #[test]
    fn csv_and_json_render_sorted() {
        let mut db = Database::new();
        let b = db.intern("beta");
        let a = db.intern("alpha");
        let mut rel = Relation::new(2);
        rel.insert(Tuple::from([Value::sym(b), Value::int(2).unwrap()]));
        rel.insert(Tuple::from([Value::sym(a), Value::int(1).unwrap()]));
        assert_eq!(render_answers_csv(&rel, db.interner()), "alpha,1\nbeta,2\n");
        assert_eq!(
            render_answers_json(&rel, db.interner()),
            "[[\"alpha\",\"1\"],[\"beta\",\"2\"]]\n"
        );
    }
}
