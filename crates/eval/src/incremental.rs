//! Incremental maintenance of semi-naive materializations under EDB
//! mutation.
//!
//! Given the fixpoint already computed for a program (the `old` relations
//! of a previous [`seminaive`](crate::seminaive::seminaive) run) and an
//! *effective* EDB delta, [`maintain`] produces the fixpoint of the mutated
//! database without recomputing from scratch:
//!
//! * **Insertions** are propagated by a semi-naive continuation: for every
//!   body-atom occurrence of a changed predicate, a delta-rule variant
//!   fires with the new tuples in the delta position and the *full current*
//!   relations everywhere else. Because every newly derived tuple gets its
//!   own delta turn (stratum by stratum, round by round), each rule
//!   instantiation involving at least one new tuple is enumerated at least
//!   once, which is exactly the semi-naive completeness argument.
//! * **Retractions** use delete-and-rederive (DRed). Per stratum: an
//!   over-deletion fixpoint marks every tuple that loses *some* derivation
//!   (delta rules over the **pre-mutation** state, so instantiations
//!   pairing two removed tuples are not missed); the marked tuples are
//!   removed; one full evaluation round over the surviving state — plus a
//!   check against the surviving EDB facts for predicates that are both
//!   stored and derived — puts back every deleted tuple with a remaining
//!   derivation; put-backs then propagate semi-naively. Net removals feed
//!   the deletion deltas of later strata.
//!
//! Both phases check the caller's [`Budget`](crate::budget::Budget) at
//! every round barrier and shard large deltas across threads with
//! [`sharded_delta_round`], exactly like the from-scratch engines. The
//! result is *identical* to re-running semi-naive on the mutated database —
//! `tests` and `tests/incremental_parity.rs` at the workspace root assert
//! this for every interleaving of inserts and retracts they generate.
//!
//! Programs with negation or aggregates take a third, coarser path
//! ([`maintain_stratified`]): strata whose inputs are untouched keep their
//! old relations; affected strata are recomputed from their seed with the
//! same routine the from-scratch engine uses. `tests/stratified_parity.rs`
//! asserts the same parity for those programs.

use sepra_ast::{DependencyGraph, Literal, Program, Rule, Sym};
use sepra_storage::{Database, EdbDelta, EvalStats, FxHashMap, FxHashSet, Relation, Tuple};

use crate::error::EvalError;
use crate::parallel::{sharded_delta_round, MIN_SHARD_TUPLES};
use crate::plan::{ConjPlan, RelKey};
use crate::planner::{Planner, PlannerStats};
use crate::seminaive::{
    agg_specs, build_store, compile_variant, eval_stratum, merge_buffers, Derived, EvalOptions,
    Variant,
};
use crate::store::IndexCache;

/// Incrementally maintains the materialization `old` across the effective
/// EDB delta `delta`, returning relations equal to a from-scratch
/// [`seminaive`](crate::seminaive::seminaive) run over `db_after`.
///
/// The caller provides three cheap copy-on-write snapshots of the database:
/// `db_before` (before any change), `db_mid` (retractions applied), and
/// `db_after` (retractions and insertions applied) — see
/// [`Database::apply_delta`], which also yields the *effective* delta this
/// function expects (tuples genuinely removed/added; passing ineffective
/// tuples is sound but wastes work). `old` must be the complete fixpoint of
/// the program over `db_before`.
pub fn maintain(
    program: &Program,
    db_before: &Database,
    db_mid: &Database,
    db_after: &Database,
    old: &FxHashMap<Sym, Relation>,
    delta: &EdbDelta,
    options: &EvalOptions,
) -> Result<Derived, EvalError> {
    // Negation and aggregation are not derivation-monotone, so the
    // tuple-granular DRed/continuation machinery below (which assumes every
    // derived tuple has a positive derivation tree) does not apply. Such
    // programs take the stratum-granular path instead; pure positive
    // programs keep the existing fine-grained phases untouched.
    if program.uses_stratified_constructs() {
        return maintain_stratified(program, db_after, old, delta, options);
    }
    let mut stats = EvalStats::new();
    // Plan against the post-mutation EDB: that is what every join in both
    // phases (rederivation included) actually runs over.
    let planner_stats = PlannerStats::from_database(db_after);
    let planner = Planner::new(options.plan_mode, Some(&planner_stats));
    let mut derived = seed_derived(program, db_before, old);
    if delta.remove.values().any(|t| !t.is_empty()) {
        retract_phase(
            program,
            db_before,
            db_mid,
            old,
            &mut derived,
            &delta.remove,
            options,
            &planner,
            &mut stats,
        )?;
    }
    if delta.insert.values().any(|t| !t.is_empty()) {
        insert_phase(
            program,
            db_after,
            &mut derived,
            &delta.insert,
            options,
            &planner,
            &mut stats,
        )?;
    }
    for (&pred, rel) in &derived {
        stats.record_size(db_after.interner().resolve(pred), rel.len());
    }
    planner.record_into(&mut stats);
    Ok(Derived { relations: derived, stats })
}

/// Stratum-granular maintenance for programs with negation or aggregates.
///
/// Honest about its granularity: it does not chase individual tuples.
/// Instead it walks the SCC strata in dependency order, keeps every stratum
/// whose inputs (positive, negated, and aggregated dependencies, plus the
/// stratum's own EDB facts) are untouched by the mutation, and recomputes an
/// affected stratum from its seed with the *same* [`eval_stratum`] routine
/// the from-scratch engine runs — so maintenance cannot drift from
/// from-scratch semantics by construction. A recomputed stratum that lands
/// on its old value stops the cascade: downstream strata see no change and
/// are kept as well.
fn maintain_stratified(
    program: &Program,
    db_after: &Database,
    old: &FxHashMap<Sym, Relation>,
    delta: &EdbDelta,
    options: &EvalOptions,
) -> Result<Derived, EvalError> {
    let mut stats = EvalStats::new();
    sepra_strata::stratify(program)
        .map_err(|e| EvalError::Unstratifiable(e.describe(db_after.interner())))?;
    let mut planner_stats = PlannerStats::from_database(db_after);
    let graph = DependencyGraph::build(program);
    let aggs = agg_specs(program);

    // Predicates whose contents differ from the pre-mutation state, seeded
    // by the effective EDB delta.
    let mut changed: FxHashSet<Sym> = FxHashSet::default();
    for (&p, tuples) in delta.remove.iter().chain(delta.insert.iter()) {
        if !tuples.is_empty() {
            changed.insert(p);
        }
    }

    let mut derived = seed_derived(program, db_after, old);
    for stratum in graph.strata() {
        let stratum_idb: Vec<Sym> =
            stratum.iter().copied().filter(|p| derived.contains_key(p)).collect();
        if stratum_idb.is_empty() {
            continue;
        }
        let rules: Vec<&Rule> =
            program.rules.iter().filter(|r| stratum_idb.contains(&r.head.pred)).collect();
        let affected = stratum_idb.iter().any(|p| changed.contains(p))
            || rules.iter().any(|r| {
                r.body_atoms().any(|a| changed.contains(&a.pred))
                    || r.negated_atoms().any(|a| changed.contains(&a.pred))
            });
        if !affected {
            for &p in &stratum_idb {
                planner_stats.add_relation(p, &derived[&p]);
            }
            continue;
        }
        // Reset the stratum to its from-scratch seed and re-run it over the
        // maintained lower strata.
        for &p in &stratum_idb {
            let arity = derived[&p].arity();
            let seed = if aggs.contains_key(&p) {
                Relation::new(arity)
            } else {
                db_after.relation(p).cloned().unwrap_or_else(|| Relation::new(arity))
            };
            derived.insert(p, seed);
        }
        eval_stratum(
            &rules,
            &stratum_idb,
            db_after,
            &mut derived,
            &aggs,
            options,
            &mut stats,
            &planner_stats,
        )?;
        for &p in &stratum_idb {
            let now = &derived[&p];
            if !old.get(&p).is_some_and(|before| before == now) {
                changed.insert(p);
            }
            planner_stats.add_relation(p, now);
        }
    }
    for (&pred, rel) in &derived {
        stats.record_size(db_after.interner().resolve(pred), rel.len());
    }
    Ok(Derived { relations: derived, stats })
}

/// One relation per rule-head predicate, starting from the old fixpoint.
fn seed_derived(
    program: &Program,
    db: &Database,
    old: &FxHashMap<Sym, Relation>,
) -> FxHashMap<Sym, Relation> {
    let mut derived: FxHashMap<Sym, Relation> = FxHashMap::default();
    for rule in &program.rules {
        let pred = rule.head.pred;
        if derived.contains_key(&pred) {
            continue;
        }
        let rel = old.get(&pred).cloned().unwrap_or_else(|| {
            db.relation(pred).cloned().unwrap_or_else(|| Relation::new(rule.head.arity()))
        });
        derived.insert(pred, rel);
    }
    derived
}

/// The delta-rule variants of one stratum, split by what their delta reads:
/// `rec` variants read an in-stratum predicate (fired every round), `ext`
/// variants read an already-final changed predicate (fired once, in the
/// first round).
struct StratumVariants {
    variants: Vec<Variant>,
    rec: Vec<usize>,
    ext: Vec<usize>,
}

fn delta_variants(
    rules: &[&Rule],
    stratum_idb: &[Sym],
    external: impl Fn(Sym) -> bool,
    planner: &Planner<'_>,
) -> Result<StratumVariants, EvalError> {
    let mut sv = StratumVariants { variants: Vec::new(), rec: Vec::new(), ext: Vec::new() };
    for rule in rules {
        for (i, lit) in rule.body.iter().enumerate() {
            let Literal::Atom(atom) = lit else { continue };
            let in_stratum = stratum_idb.contains(&atom.pred);
            if !in_stratum && !external(atom.pred) {
                continue;
            }
            let variant = compile_variant(rule, Some(i), planner)?;
            if in_stratum {
                sv.rec.push(sv.variants.len());
            } else {
                sv.ext.push(sv.variants.len());
            }
            sv.variants.push(variant);
        }
    }
    Ok(sv)
}

/// Runs the variants in `fire` for one round over `store` (which must bind
/// every delta), returning the produced head tuples per predicate.
/// Variants whose delta is unbound or empty this round are skipped. The
/// caller invalidates the delta index keys between rounds.
fn expand_round(
    variants: &[Variant],
    fire: &[usize],
    store: &crate::store::RelStore<'_>,
    indexes: &mut IndexCache,
    options: &EvalOptions,
    scanned: &mut u64,
) -> FxHashMap<Sym, Vec<Tuple>> {
    let threads = options.threads.max(1);
    let mut buffers: FxHashMap<Sym, Vec<Tuple>> = FxHashMap::default();
    let fire: Vec<usize> = fire
        .iter()
        .copied()
        .filter(|&i| {
            let pred = variants[i].delta.expect("maintenance variants always read a delta");
            store.get(RelKey::Delta(pred)).is_some_and(|r| !r.is_empty())
        })
        .collect();
    if threads == 1 {
        for &i in &fire {
            let variant = &variants[i];
            indexes.prepare(&variant.plan, store);
            let buf = buffers.entry(variant.head).or_default();
            variant.plan.execute_counted(
                store,
                indexes,
                &[],
                &mut |row| {
                    buf.push(Tuple::new(row.to_vec()));
                },
                scanned,
            );
        }
    } else {
        for &i in &fire {
            let variant = &variants[i];
            let plan = variant.par_plan.as_ref().unwrap_or(&variant.plan);
            indexes.prepare_where(plan, store, |k| !matches!(k, RelKey::Delta(_)));
        }
        // Delta predicates in first-appearance order over `fire`: fixed by
        // the rule order, so the merged row order is deterministic.
        let mut delta_preds: Vec<Sym> = Vec::new();
        for &i in &fire {
            let pred = variants[i].delta.expect("maintenance variants always read a delta");
            if !delta_preds.contains(&pred) {
                delta_preds.push(pred);
            }
        }
        for pred in delta_preds {
            let group: Vec<usize> =
                fire.iter().copied().filter(|&i| variants[i].delta == Some(pred)).collect();
            let plans: Vec<&ConjPlan> = group
                .iter()
                .map(|&i| variants[i].par_plan.as_ref().unwrap_or(&variants[i].plan))
                .collect();
            let merged = sharded_delta_round(
                &plans,
                RelKey::Delta(pred),
                store,
                indexes,
                threads,
                MIN_SHARD_TUPLES,
                &[],
                &options.budget,
                scanned,
            );
            for (gi, worker_bufs) in merged.into_iter().enumerate() {
                let buf = buffers.entry(variants[group[gi]].head).or_default();
                for wb in worker_bufs {
                    buf.extend(wb);
                }
            }
        }
    }
    buffers
}

/// Semi-naive insertion propagation. `db` is the post-insertion EDB;
/// `inserted` the effective EDB insertions.
fn insert_phase(
    program: &Program,
    db: &Database,
    derived: &mut FxHashMap<Sym, Relation>,
    inserted: &FxHashMap<Sym, Vec<Tuple>>,
    options: &EvalOptions,
    planner: &Planner<'_>,
    stats: &mut EvalStats,
) -> Result<(), EvalError> {
    let graph = DependencyGraph::build(program);
    // Seed the changed set. Insertions into a predicate that is also a rule
    // head land in its derived relation directly; tuples it had already
    // derived are not changes.
    let mut changed: FxHashMap<Sym, Relation> = FxHashMap::default();
    for (&pred, tuples) in inserted {
        let Some(first) = tuples.first() else { continue };
        let mut fresh = Relation::new(first.arity());
        if let Some(rel) = derived.get_mut(&pred) {
            for t in tuples {
                if rel.insert(t.clone()) {
                    stats.record_insert(true);
                    fresh.insert(t.clone());
                }
            }
        } else {
            for t in tuples {
                fresh.insert(t.clone());
            }
        }
        if !fresh.is_empty() {
            changed.insert(pred, fresh);
        }
    }
    if changed.is_empty() {
        return Ok(());
    }

    for stratum in graph.strata() {
        let stratum_idb: Vec<Sym> =
            stratum.iter().copied().filter(|p| derived.contains_key(p)).collect();
        if stratum_idb.is_empty() {
            continue;
        }
        let rules: Vec<&Rule> =
            program.rules.iter().filter(|r| stratum_idb.contains(&r.head.pred)).collect();
        let sv = delta_variants(
            &rules,
            &stratum_idb,
            |p| changed.get(&p).is_some_and(|r| !r.is_empty()),
            planner,
        )?;
        if sv.variants.is_empty() {
            continue;
        }

        // Round 1 deltas: external changes (EDB insertions and earlier
        // strata) plus in-stratum tuples already changed (EDB insertions
        // into predicates this stratum derives).
        let mut delta: FxHashMap<Sym, Relation> = FxHashMap::default();
        for &i in sv.ext.iter().chain(sv.rec.iter()) {
            let pred = sv.variants[i].delta.expect("delta variant");
            if let Some(r) = changed.get(&pred) {
                if !r.is_empty() {
                    delta.entry(pred).or_insert_with(|| r.clone());
                }
            }
        }
        if delta.is_empty() {
            continue;
        }

        let mut indexes = IndexCache::new();
        let mut first = true;
        loop {
            stats.record_iteration();
            options.budget.check(
                "incremental insert maintenance",
                stats.iterations,
                stats.tuples_inserted,
            )?;
            let fire: Vec<usize> = if first {
                sv.ext.iter().chain(sv.rec.iter()).copied().collect()
            } else {
                sv.rec.clone()
            };
            first = false;
            let buffers = {
                let store = build_store(db, derived, &delta);
                let mut scanned = 0u64;
                let buffers =
                    expand_round(&sv.variants, &fire, &store, &mut indexes, options, &mut scanned);
                stats.record_scanned(scanned as usize);
                buffers
            };
            // A worker that observed an exhausted budget truncated its
            // round; re-check so truncation cannot look like convergence.
            options.budget.check(
                "incremental insert maintenance",
                stats.iterations,
                stats.tuples_inserted,
            )?;
            for &pred in delta.keys() {
                indexes.invalidate(RelKey::Delta(pred));
            }
            let mut new_delta: FxHashMap<Sym, Relation> = FxHashMap::default();
            merge_buffers(derived, buffers, stats, Some(&mut new_delta));
            for (&pred, r) in &new_delta {
                if !r.is_empty() {
                    changed
                        .entry(pred)
                        .or_insert_with(|| Relation::new(r.arity()))
                        .union_in_place(r);
                }
            }
            if new_delta.values().all(Relation::is_empty) {
                break;
            }
            delta = new_delta;
        }
    }
    Ok(())
}

/// Delete-and-rederive. `db_before`/`db_after` are the EDB before/after the
/// retractions (insertions not yet applied); `old` is the pre-mutation
/// fixpoint (used read-only as the over-deletion state); `removed` the
/// effective EDB retractions.
#[allow(clippy::too_many_arguments)] // one call site; the phases share this exact state
fn retract_phase(
    program: &Program,
    db_before: &Database,
    db_after: &Database,
    old: &FxHashMap<Sym, Relation>,
    derived: &mut FxHashMap<Sym, Relation>,
    removed: &FxHashMap<Sym, Vec<Tuple>>,
    options: &EvalOptions,
    planner: &Planner<'_>,
    stats: &mut EvalStats,
) -> Result<(), EvalError> {
    let graph = DependencyGraph::build(program);
    // Net removals per predicate, consumed as deletion deltas by later
    // strata. EDB-only predicates contribute their retractions directly;
    // derived predicates contribute `Del \ rederived` once their stratum
    // completes.
    let mut removed_acc: FxHashMap<Sym, Relation> = FxHashMap::default();
    for (&pred, tuples) in removed {
        let Some(first) = tuples.first() else { continue };
        if derived.contains_key(&pred) {
            continue;
        }
        let mut r = Relation::new(first.arity());
        for t in tuples {
            r.insert(t.clone());
        }
        removed_acc.insert(pred, r);
    }

    for stratum in graph.strata() {
        let stratum_idb: Vec<Sym> =
            stratum.iter().copied().filter(|p| derived.contains_key(p)).collect();
        if stratum_idb.is_empty() {
            continue;
        }
        let rules: Vec<&Rule> =
            program.rules.iter().filter(|r| stratum_idb.contains(&r.head.pred)).collect();
        let sv = delta_variants(
            &rules,
            &stratum_idb,
            |p| removed_acc.get(&p).is_some_and(|r| !r.is_empty()),
            planner,
        )?;

        // Everything marked for deletion in this stratum, per predicate.
        // Seeded with retracted EDB facts of predicates this stratum
        // derives (they were part of the old materialization).
        let mut del: FxHashMap<Sym, Relation> = FxHashMap::default();
        for &pred in &stratum_idb {
            if let Some(tuples) = removed.get(&pred) {
                let believed = &derived[&pred];
                let mut seed = Relation::new(believed.arity());
                for t in tuples {
                    if believed.contains(t) {
                        seed.insert(t.clone());
                    }
                }
                if !seed.is_empty() {
                    del.insert(pred, seed);
                }
            }
        }
        if sv.ext.is_empty() && del.is_empty() {
            continue; // nothing upstream changed and no EDB facts retracted
        }

        // --- Over-deletion fixpoint, entirely over the OLD state: a rule
        // instantiation that paired two removed tuples must still be seen,
        // so every non-delta position reads pre-mutation values. ---
        let mut delta: FxHashMap<Sym, Relation> = FxHashMap::default();
        for &i in &sv.ext {
            let pred = sv.variants[i].delta.expect("delta variant");
            if let Some(r) = removed_acc.get(&pred) {
                if !r.is_empty() {
                    delta.entry(pred).or_insert_with(|| r.clone());
                }
            }
        }
        for (&pred, seed) in &del {
            delta.insert(pred, seed.clone());
        }
        let mut indexes = IndexCache::new();
        let mut first = true;
        while !delta.is_empty() {
            stats.record_iteration();
            options.budget.check(
                "incremental over-deletion",
                stats.iterations,
                stats.tuples_inserted,
            )?;
            let fire: Vec<usize> = if first {
                sv.ext.iter().chain(sv.rec.iter()).copied().collect()
            } else {
                sv.rec.clone()
            };
            first = false;
            let buffers = {
                let store = build_store(db_before, old, &delta);
                let mut scanned = 0u64;
                let buffers =
                    expand_round(&sv.variants, &fire, &store, &mut indexes, options, &mut scanned);
                stats.record_scanned(scanned as usize);
                buffers
            };
            options.budget.check(
                "incremental over-deletion",
                stats.iterations,
                stats.tuples_inserted,
            )?;
            for &pred in delta.keys() {
                indexes.invalidate(RelKey::Delta(pred));
            }
            let mut new_delta: FxHashMap<Sym, Relation> = FxHashMap::default();
            for (head, tuples) in buffers {
                let believed = &derived[&head];
                for t in tuples {
                    if !believed.contains(&t) {
                        continue;
                    }
                    let arity = t.arity();
                    let marked =
                        del.entry(head).or_insert_with(|| Relation::new(arity)).insert(t.clone());
                    stats.record_insert(marked);
                    if marked {
                        new_delta.entry(head).or_insert_with(|| Relation::new(arity)).insert(t);
                    }
                }
            }
            delta = new_delta;
        }
        drop(indexes);

        if del.values().all(Relation::is_empty) {
            continue;
        }

        // --- Apply the over-deletion. ---
        for (&pred, marked) in &del {
            let tuples: Vec<Tuple> = marked.iter().map(|t| t.to_tuple()).collect();
            derived.get_mut(&pred).expect("stratum head").remove_batch(&tuples);
        }

        // --- Rederivation: deleted tuples that survive as EDB facts, or
        // that one full evaluation round over the surviving state still
        // produces, go back in. ---
        let mut putbacks: FxHashMap<Sym, Relation> = FxHashMap::default();
        for (&pred, marked) in &del {
            if let Some(edb) = db_after.relation(pred) {
                for t in marked.iter() {
                    if edb.contains_row(t) {
                        putbacks
                            .entry(pred)
                            .or_insert_with(|| Relation::new(marked.arity()))
                            .insert_from(t);
                    }
                }
            }
        }
        {
            let empty_delta = FxHashMap::default();
            let store = build_store(db_after, derived, &empty_delta);
            let mut rindexes = IndexCache::new();
            let mut scanned = 0u64;
            for rule in &rules {
                let Some(marked) = del.get(&rule.head.pred) else { continue };
                if marked.is_empty() {
                    continue;
                }
                let variant = compile_variant(rule, None, planner)?;
                rindexes.prepare(&variant.plan, &store);
                let entry =
                    putbacks.entry(variant.head).or_insert_with(|| Relation::new(marked.arity()));
                variant.plan.execute_counted(
                    &store,
                    &rindexes,
                    &[],
                    &mut |row| {
                        let t = Tuple::new(row.to_vec());
                        if marked.contains(&t) {
                            entry.insert(t);
                        }
                    },
                    &mut scanned,
                );
            }
            stats.record_scanned(scanned as usize);
        }
        options.budget.check(
            "incremental rederivation",
            stats.iterations,
            stats.tuples_inserted,
        )?;

        // --- Put-backs re-enter the materialization and propagate like
        // insertions over the surviving state. ---
        let mut delta: FxHashMap<Sym, Relation> = FxHashMap::default();
        for (&pred, r) in &putbacks {
            let rel = derived.get_mut(&pred).expect("stratum head");
            let mut fresh = Relation::new(r.arity());
            for t in r.iter() {
                if rel.insert_from(t) {
                    stats.record_insert(true);
                    fresh.insert_from(t);
                }
            }
            if !fresh.is_empty() {
                delta.insert(pred, fresh);
            }
        }
        let mut pindexes = IndexCache::new();
        while !delta.is_empty() && !sv.rec.is_empty() {
            stats.record_iteration();
            options.budget.check(
                "incremental rederivation",
                stats.iterations,
                stats.tuples_inserted,
            )?;
            let buffers = {
                let store = build_store(db_after, derived, &delta);
                let mut scanned = 0u64;
                let buffers = expand_round(
                    &sv.variants,
                    &sv.rec,
                    &store,
                    &mut pindexes,
                    options,
                    &mut scanned,
                );
                stats.record_scanned(scanned as usize);
                buffers
            };
            options.budget.check(
                "incremental rederivation",
                stats.iterations,
                stats.tuples_inserted,
            )?;
            for &pred in delta.keys() {
                pindexes.invalidate(RelKey::Delta(pred));
            }
            let mut new_delta: FxHashMap<Sym, Relation> = FxHashMap::default();
            merge_buffers(derived, buffers, stats, Some(&mut new_delta));
            delta = new_delta;
        }

        // --- Net removals feed deletion deltas of later strata. ---
        for (&pred, marked) in &del {
            let rel = &derived[&pred];
            let mut net = Relation::new(marked.arity());
            for t in marked.iter() {
                if !rel.contains_row(t) {
                    net.insert_from(t);
                }
            }
            if !net.is_empty() {
                removed_acc.insert(pred, net);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::seminaive::{seminaive, seminaive_with_options};
    use sepra_ast::parse_program;
    use sepra_storage::Value;

    fn tup(db: &mut Database, names: &[&str]) -> Tuple {
        Tuple::from(names.iter().map(|n| Value::sym(db.intern(n))).collect::<Vec<Value>>())
    }

    /// Applies `delta` in two stages (retract, then insert) and checks that
    /// [`maintain`] over the effective delta matches a from-scratch
    /// semi-naive run on the mutated database, for 1 and 3 threads.
    fn assert_parity(program_src: &str, facts: &str, build: impl Fn(&mut Database) -> EdbDelta) {
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(program_src, db.interner_mut()).unwrap();
        let delta = build(&mut db);
        let old = seminaive(&program, &db).unwrap();

        let db_before = db.clone();
        let mut effective = EdbDelta::default();
        let remove_only = EdbDelta { remove: delta.remove.clone(), ..Default::default() };
        effective.remove = db.apply_delta(&remove_only).unwrap().remove;
        let db_mid = db.clone();
        let insert_only = EdbDelta { insert: delta.insert.clone(), ..Default::default() };
        effective.insert = db.apply_delta(&insert_only).unwrap().insert;

        let scratch = seminaive(&program, &db).unwrap();
        for threads in [1, 3] {
            let options = EvalOptions { threads, ..Default::default() };
            let incr =
                maintain(&program, &db_before, &db_mid, &db, &old.relations, &effective, &options)
                    .unwrap();
            assert_eq!(
                incr.relations.len(),
                scratch.relations.len(),
                "threads={threads}: predicate sets differ"
            );
            for (pred, rel) in &scratch.relations {
                assert_eq!(
                    incr.relations.get(pred),
                    Some(rel),
                    "threads={threads} diverged on {pred:?}"
                );
            }
        }
    }

    const TC: &str = "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n";

    #[test]
    fn insert_extends_transitive_closure() {
        assert_parity(TC, "e(a, b). e(b, c).", |db| {
            let e = db.intern("e");
            let mut delta = EdbDelta::default();
            delta.insert.insert(e, vec![tup(db, &["c", "d"]), tup(db, &["d", "a"])]);
            delta
        });
    }

    #[test]
    fn retract_shrinks_transitive_closure() {
        assert_parity(TC, "e(a, b). e(b, c). e(c, d).", |db| {
            let e = db.intern("e");
            let mut delta = EdbDelta::default();
            delta.remove.insert(e, vec![tup(db, &["b", "c"])]);
            delta
        });
    }

    #[test]
    fn rederivation_keeps_alternative_paths() {
        // Two routes from a to c; deleting one must keep t(a, c) alive, and
        // deleting a tuple only ever reached through it must cascade.
        assert_parity(TC, "e(a, b). e(b, c). e(a, c). e(c, d).", |db| {
            let e = db.intern("e");
            let mut delta = EdbDelta::default();
            delta.remove.insert(e, vec![tup(db, &["b", "c"])]);
            delta
        });
    }

    #[test]
    fn mixed_mutation_on_multi_stratum_program() {
        let src = "t(X, Y) :- e(X, Y).\n\
                   t(X, Y) :- e(X, W), t(W, Y).\n\
                   pair(X, Y) :- t(X, Y), t(Y, X).\n";
        assert_parity(src, "e(a, b). e(b, a). e(b, c). e(c, d).", |db| {
            let e = db.intern("e");
            let mut delta = EdbDelta::default();
            delta.remove.insert(e, vec![tup(db, &["b", "a"])]);
            delta.insert.insert(e, vec![tup(db, &["d", "a"]), tup(db, &["c", "b"])]);
            delta
        });
    }

    #[test]
    fn nonlinear_recursion_parity() {
        let src = "t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).\n";
        assert_parity(src, "e(a, b). e(b, c). e(c, d). e(d, e2). e(e2, f).", |db| {
            let e = db.intern("e");
            let mut delta = EdbDelta::default();
            delta.remove.insert(e, vec![tup(db, &["c", "d"])]);
            delta.insert.insert(e, vec![tup(db, &["f", "g"])]);
            delta
        });
    }

    #[test]
    fn mutual_recursion_parity() {
        let src = "even(X) :- zero(X).\n\
                   even(X) :- succ(Y, X), odd(Y).\n\
                   odd(X) :- succ(Y, X), even(Y).\n";
        assert_parity(src, "zero(n0). succ(n0, n1). succ(n1, n2). succ(n2, n3).", |db| {
            let succ = db.intern("succ");
            let mut delta = EdbDelta::default();
            delta.remove.insert(succ, vec![tup(db, &["n1", "n2"])]);
            delta.insert.insert(succ, vec![tup(db, &["n3", "n4"])]);
            delta
        });
    }

    #[test]
    fn retracting_an_edb_seed_of_a_derived_predicate() {
        // `e` is both stored and derived; retracting its EDB fact must not
        // resurrect it, while the rule-derived tuples survive.
        assert_parity(
            "e(X, Y) :- extra(X, Y).\nt(X, Y) :- e(X, Y).\n",
            "e(a, b). extra(c, d).",
            |db| {
                let e = db.intern("e");
                let mut delta = EdbDelta::default();
                delta.remove.insert(e, vec![tup(db, &["a", "b"])]);
                delta
            },
        );
    }

    #[test]
    fn inserting_a_tuple_already_derived_changes_nothing() {
        // t(a, c) is derivable; asserting it as an EDB fact of `extra`'s
        // sibling predicate is still parity-checked end to end.
        assert_parity(TC, "e(a, b). e(b, c).", |db| {
            let e = db.intern("e");
            let mut delta = EdbDelta::default();
            delta.insert.insert(e, vec![tup(db, &["a", "b"])]); // ineffective
            delta
        });
    }

    #[test]
    fn cyclic_retraction_parity() {
        // Deleting an edge of a cycle over-deletes the whole component and
        // rederivation must rebuild exactly the surviving closure.
        assert_parity(TC, "e(a, b). e(b, c). e(c, a). e(c, d).", |db| {
            let e = db.intern("e");
            let mut delta = EdbDelta::default();
            delta.remove.insert(e, vec![tup(db, &["c", "a"])]);
            delta
        });
    }

    const STRATIFIED: &str = "t(X, Y) :- e(X, Y).\n\
                              t(X, Y) :- e(X, W), t(W, Y).\n\
                              unreach(X, Y) :- node(X), node(Y), !t(X, Y).\n\
                              reach(X, count<Y>) :- t(X, Y).\n";

    #[test]
    fn negation_and_count_survive_inserts() {
        assert_parity(STRATIFIED, "e(a, b). e(b, c). node(a). node(b). node(c).", |db| {
            let e = db.intern("e");
            let mut delta = EdbDelta::default();
            delta.insert.insert(e, vec![tup(db, &["c", "a"])]);
            delta
        });
    }

    #[test]
    fn negation_and_count_survive_retracts() {
        // Retracting an edge makes pairs *unreachable*: the negation's
        // result must grow, which tuple-granular DRed could never express.
        assert_parity(STRATIFIED, "e(a, b). e(b, c). node(a). node(b). node(c).", |db| {
            let e = db.intern("e");
            let mut delta = EdbDelta::default();
            delta.remove.insert(e, vec![tup(db, &["b", "c"])]);
            delta
        });
    }

    #[test]
    fn min_aggregate_survives_mixed_mutation() {
        let src = "shortest(Y, min<C>) :- source(X), w(X, Y, C).\n\
                   shortest(Y, min<C>) :- shortest(X, D), w(X, Y, W2), C = D + W2.\n";
        let facts = "source(a). w(a, b, 1). w(b, c, 1). w(a, c, 5).";
        assert_parity(src, facts, |db| {
            let w = db.intern("w");
            let mut delta = EdbDelta::default();
            // Remove the cheap route to c (its min must relax to 5), and
            // add an edge extending the graph.
            delta.remove.insert(
                w,
                vec![Tuple::from(vec![
                    Value::sym(db.intern("b")),
                    Value::sym(db.intern("c")),
                    Value::int(1).unwrap(),
                ])],
            );
            delta.insert.insert(
                w,
                vec![Tuple::from(vec![
                    Value::sym(db.intern("c")),
                    Value::sym(db.intern("d")),
                    Value::int(2).unwrap(),
                ])],
            );
            delta
        });
    }

    #[test]
    fn unaffected_strata_are_kept() {
        // Mutating `node` only touches `unreach`'s stratum: `t` and `reach`
        // must still be byte-identical to from-scratch (assert_parity), and
        // the maintenance run must do strictly less derivation work than
        // recomputing everything would.
        assert_parity(STRATIFIED, "e(a, b). e(b, c). node(a). node(b). node(c).", |db| {
            let node = db.intern("node");
            let mut delta = EdbDelta::default();
            delta.insert.insert(node, vec![tup(db, &["d"])]);
            delta
        });
    }

    #[test]
    fn maintenance_respects_budget() {
        let mut db = Database::new();
        let mut facts = String::new();
        for i in 0..40 {
            facts.push_str(&format!("e(n{i}, n{}).", i + 1));
        }
        db.load_fact_text(&facts).unwrap();
        let program = parse_program(TC, db.interner_mut()).unwrap();
        let old = seminaive(&program, &db).unwrap();
        let db_before = db.clone();
        let e = db.intern("e");
        let mut delta = EdbDelta::default();
        delta.insert.insert(e, vec![tup(&mut db, &["n41", "n0"])]);
        let effective = db.apply_delta(&delta).unwrap();
        let options = EvalOptions { budget: Budget::unlimited().tuples(5), ..Default::default() };
        let err =
            maintain(&program, &db_before, &db_before, &db, &old.relations, &effective, &options)
                .unwrap_err();
        assert!(matches!(err, EvalError::BudgetExceeded { .. }));
    }

    #[test]
    fn empty_delta_is_identity() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(b, c).").unwrap();
        let program = parse_program(TC, db.interner_mut()).unwrap();
        let old = seminaive(&program, &db).unwrap();
        let incr = maintain(
            &program,
            &db,
            &db,
            &db,
            &old.relations,
            &EdbDelta::default(),
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(incr.relations, old.relations);
    }

    #[test]
    fn parallel_maintenance_matches_serial() {
        let mut db = Database::new();
        let mut facts = String::new();
        for i in 0..30 {
            facts.push_str(&format!("e(n{i}, n{}).", i + 1));
        }
        db.load_fact_text(&facts).unwrap();
        let program = parse_program(TC, db.interner_mut()).unwrap();
        let old = seminaive(&program, &db).unwrap();
        let db_before = db.clone();
        let e = db.intern("e");
        let mut delta = EdbDelta::default();
        delta.remove.insert(e, vec![tup(&mut db, &["n10", "n11"])]);
        delta.insert.insert(e, vec![tup(&mut db, &["n31", "n0"])]);
        let mut effective = EdbDelta::default();
        let remove_only = EdbDelta { remove: delta.remove.clone(), ..Default::default() };
        effective.remove = db.apply_delta(&remove_only).unwrap().remove;
        let db_mid = db.clone();
        let insert_only = EdbDelta { insert: delta.insert.clone(), ..Default::default() };
        effective.insert = db.apply_delta(&insert_only).unwrap().insert;
        let scratch = seminaive_with_options(&program, &db, &EvalOptions::default()).unwrap();
        for threads in [2, 4] {
            let incr = maintain(
                &program,
                &db_before,
                &db_mid,
                &db,
                &old.relations,
                &effective,
                &EvalOptions { threads, ..Default::default() },
            )
            .unwrap();
            for (pred, rel) in &scratch.relations {
                assert_eq!(incr.relations.get(pred), Some(rel), "threads={threads}");
            }
        }
    }
}
