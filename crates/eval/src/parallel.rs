//! Work-sharded parallel delta expansion.
//!
//! One semi-naive (or Separable carry) iteration expands every delta tuple
//! independently: the joins are read-only over the relations computed by
//! *previous* iterations, and new tuples only become visible at the
//! iteration barrier. That makes the delta a natural unit of data
//! parallelism — this module partitions it into contiguous shards, runs the
//! existing [`ConjPlan`] executor over each shard on its own OS thread
//! (`std::thread::scope`, no dependencies), and hands the per-worker output
//! buffers back in a deterministic order for the caller to merge.
//!
//! Sharding is sound only for plans that scan the sharded relation exactly
//! once: partitioning the single occurrence partitions the result rows. A
//! plan scanning it twice (a delta self-join, e.g. from non-linear rules
//! where two occurrences of the same delta meet) would lose cross-shard
//! pairs, so such plans — and plans not scanning it at all — fall back to a
//! serial run over the full relation on the calling thread.

use sepra_storage::{Relation, Tuple, Value};

use crate::budget::Budget;
use crate::plan::{ConjPlan, RelKey};
use crate::store::{IndexCache, LayeredIndexes, RelStore};

/// Default minimum shard size, in delta tuples per worker.
///
/// Spawning a thread, cloning the store, and re-hashing a shard into its
/// own [`Relation`] cost on the order of an index probe over a few hundred
/// tuples, so deltas smaller than `threads * MIN_SHARD_TUPLES` run on
/// fewer workers (possibly one, i.e. serially on the calling thread).
/// Callers pass this as `min_shard`; tests pass smaller grains to force
/// threading on tiny inputs.
pub const MIN_SHARD_TUPLES: usize = 512;

// The parallel round shares plans, the relation store, and the prepared
// index cache across worker threads by reference; none of them may grow
// interior mutability without revisiting this module.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Relation>();
    assert_sync::<ConjPlan>();
    assert_sync::<IndexCache>();
    assert_sync::<RelStore<'static>>();
};

/// Runs `plans` for one iteration with the relation named `shard_key`
/// partitioned across up to `threads` workers.
///
/// `store` must bind `shard_key` to the full delta relation, and
/// `shared_indexes` must hold indexes for every keyed scan of the plans
/// *except* scans of `shard_key` (workers index their own shards locally
/// and layer them over the shared cache). `min_shard` is the grain size:
/// the worker count is capped at `delta_len / min_shard` so tiny deltas
/// (where spawn and shard-construction overhead would dominate) fall back
/// to fewer workers or a serial run — [`MIN_SHARD_TUPLES`] is the
/// production default.
///
/// Returns one buffer list per plan, in plan order; within a plan the
/// buffers are in worker (shard) order, so concatenating them yields
/// exactly the serial production order of that plan. Buffers are *not*
/// deduplicated — the caller's merge into the derived relation performs
/// the dedup, just as it does for the serial engines' row streams. Tuples
/// scanned by all workers are added to `scanned`, worker-minor, so the
/// total matches a serial run of the same probes.
///
/// `budget` is probed between plans (see [`Budget::is_exhausted`]): once
/// the deadline passes or cancellation is requested, workers skip their
/// remaining plans and the round returns whatever was produced so far.
/// The round itself cannot return an error — the caller must re-check the
/// budget at the barrier, otherwise a cut-off round's truncated output
/// would be indistinguishable from convergence.
#[allow(clippy::too_many_arguments)] // one call site per engine; a params struct would obscure the barrier contract
pub fn sharded_delta_round(
    plans: &[&ConjPlan],
    shard_key: RelKey,
    store: &RelStore<'_>,
    shared_indexes: &IndexCache,
    threads: usize,
    min_shard: usize,
    init: &[Value],
    budget: &Budget,
    scanned: &mut u64,
) -> Vec<Vec<Vec<Tuple>>> {
    let mut out: Vec<Vec<Vec<Tuple>>> = plans.iter().map(|_| Vec::new()).collect();

    let mut shardable: Vec<usize> = Vec::new();
    let mut serial: Vec<usize> = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        if plan.scans_of(shard_key) == 1 {
            shardable.push(i);
        } else {
            serial.push(i);
        }
    }

    let delta = store.get(shard_key);
    let delta_len = delta.map_or(0, Relation::len);
    // Grain guard: never hand a worker fewer than `min_shard` tuples.
    let workers = threads.max(1).min((delta_len / min_shard.max(1)).max(1)).min(delta_len.max(1));
    if workers <= 1 {
        // Not worth threading — run everything on the calling thread.
        serial.append(&mut shardable);
        serial.sort_unstable();
    }

    if !shardable.is_empty() && delta_len > 0 {
        let delta = delta.expect("non-empty delta is bound");
        let chunk = delta_len.div_ceil(workers);
        // Contiguous shards preserve within-shard insertion order, so the
        // merged row order is a fixed interleaving of the serial order.
        let shards: Vec<Relation> = (0..workers)
            .map(|w| (w * chunk, ((w + 1) * chunk).min(delta_len)))
            .filter(|&(start, end)| start < end)
            .map(|(start, end)| delta.slice_range(start..end))
            .collect();
        let shardable = &shardable;
        let results: Vec<(Vec<Vec<Tuple>>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| {
                    let mut wstore = store.clone();
                    wstore.bind(shard_key, shard);
                    scope.spawn(move || {
                        let mut local = IndexCache::new();
                        for &pi in shardable {
                            local.prepare_where(plans[pi], &wstore, |k| k == shard_key);
                        }
                        let layered = LayeredIndexes::new(&local, shared_indexes);
                        let mut worker_scanned = 0u64;
                        let mut bufs: Vec<Vec<Tuple>> = Vec::with_capacity(shardable.len());
                        for &pi in shardable {
                            if budget.is_exhausted() {
                                bufs.push(Vec::new());
                                continue;
                            }
                            let plan = plans[pi];
                            let mut buf = Vec::new();
                            plan.execute_counted(
                                &wstore,
                                &layered,
                                init,
                                &mut |row| {
                                    buf.push(Tuple::new(row.to_vec()));
                                },
                                &mut worker_scanned,
                            );
                            bufs.push(buf);
                        }
                        (bufs, worker_scanned)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("delta expansion worker panicked"))
                .collect()
        });
        for (bufs, worker_scanned) in results {
            *scanned += worker_scanned;
            for (&pi, buf) in shardable.iter().zip(bufs) {
                out[pi].push(buf);
            }
        }
    }

    // Non-shardable plans run over the full relation on this thread, with a
    // local index over the full delta layered onto the shared cache.
    if !serial.is_empty() {
        let mut local = IndexCache::new();
        for &pi in &serial {
            local.prepare_where(plans[pi], store, |k| k == shard_key);
        }
        let layered = LayeredIndexes::new(&local, shared_indexes);
        for &pi in &serial {
            if budget.is_exhausted() {
                out[pi].push(Vec::new());
                continue;
            }
            let plan = plans[pi];
            let mut buf = Vec::new();
            plan.execute_counted(
                store,
                &layered,
                init,
                &mut |row| {
                    buf.push(Tuple::new(row.to_vec()));
                },
                scanned,
            );
            out[pi].push(buf);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanAtom, PlanLiteral};
    use sepra_ast::{Interner, Term};

    fn t2(a: u32, b: u32) -> Tuple {
        Tuple::from([Value::sym(sepra_ast::Sym(a)), Value::sym(sepra_ast::Sym(b))])
    }

    /// `t(X, Z) :- delta(X, Y), e(Y, Z).` with `delta` as [`RelKey::Aux`] 0
    /// and `e` as [`RelKey::Aux`] 1.
    fn linear_plan(i: &mut Interner) -> ConjPlan {
        let (x, y, z) = (i.intern("X"), i.intern("Y"), i.intern("Z"));
        let body = vec![
            PlanLiteral::Atom(PlanAtom {
                rel: RelKey::Aux(0),
                terms: vec![Term::Var(x), Term::Var(y)],
            }),
            PlanLiteral::Atom(PlanAtom {
                rel: RelKey::Aux(1),
                terms: vec![Term::Var(y), Term::Var(z)],
            }),
        ];
        ConjPlan::compile(&[], &body, &[Term::Var(x), Term::Var(z)]).unwrap()
    }

    /// `t(X, Z) :- delta(X, Y), delta(Y, Z).` — a delta self-join.
    fn self_join_plan(i: &mut Interner) -> ConjPlan {
        let (x, y, z) = (i.intern("X"), i.intern("Y"), i.intern("Z"));
        let body = vec![
            PlanLiteral::Atom(PlanAtom {
                rel: RelKey::Aux(0),
                terms: vec![Term::Var(x), Term::Var(y)],
            }),
            PlanLiteral::Atom(PlanAtom {
                rel: RelKey::Aux(0),
                terms: vec![Term::Var(y), Term::Var(z)],
            }),
        ];
        ConjPlan::compile(&[], &body, &[Term::Var(x), Term::Var(z)]).unwrap()
    }

    fn chain(n: u32) -> Relation {
        Relation::from_tuples(2, (0..n).map(|i| t2(i, i + 1)))
    }

    fn run_parallel(plan: &ConjPlan, delta: &Relation, e: &Relation, threads: usize) -> Vec<Tuple> {
        let mut store = RelStore::new();
        store.bind(RelKey::Aux(0), delta);
        store.bind(RelKey::Aux(1), e);
        let mut shared = IndexCache::new();
        shared.prepare_where(plan, &store, |k| k != RelKey::Aux(0));
        let mut scanned = 0u64;
        let merged = sharded_delta_round(
            &[plan],
            RelKey::Aux(0),
            &store,
            &shared,
            threads,
            1, // grain of one tuple: force real threading on tiny inputs
            &[],
            &Budget::default(),
            &mut scanned,
        );
        merged.into_iter().next().unwrap().into_iter().flatten().collect()
    }

    fn run_serial(plan: &ConjPlan, delta: &Relation, e: &Relation) -> Vec<Tuple> {
        let mut store = RelStore::new();
        store.bind(RelKey::Aux(0), delta);
        store.bind(RelKey::Aux(1), e);
        let mut indexes = IndexCache::new();
        indexes.prepare(plan, &store);
        let mut rows = Vec::new();
        plan.execute(&store, &indexes, &[], &mut |row| {
            rows.push(Tuple::new(row.to_vec()));
        });
        rows
    }

    #[test]
    fn sharded_round_matches_serial_answers() {
        let mut i = Interner::new();
        let plan = linear_plan(&mut i);
        let delta = chain(40);
        let e = chain(41);
        let serial = run_serial(&plan, &delta, &e);
        for threads in [1, 2, 3, 8] {
            // Concatenating contiguous shards in order reproduces the
            // serial row stream exactly, duplicates included.
            assert_eq!(run_parallel(&plan, &delta, &e, threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn merged_order_is_deterministic_across_runs() {
        let mut i = Interner::new();
        let plan = linear_plan(&mut i);
        let delta = chain(100);
        let e = chain(101);
        let a = run_parallel(&plan, &delta, &e, 4);
        let b = run_parallel(&plan, &delta, &e, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn self_join_falls_back_to_serial_and_keeps_cross_shard_pairs() {
        let mut i = Interner::new();
        let plan = self_join_plan(&mut i);
        assert_eq!(plan.scans_of(RelKey::Aux(0)), 2);
        let delta = chain(30);
        let e = Relation::new(2);
        let serial = run_serial(&plan, &delta, &e);
        // 29 composed pairs; with naive sharding at 4 threads the pairs
        // straddling shard boundaries would be lost.
        assert_eq!(serial.len(), 29);
        assert_eq!(run_parallel(&plan, &delta, &e, 4), serial);
    }

    #[test]
    fn more_threads_than_tuples_is_fine() {
        let mut i = Interner::new();
        let plan = linear_plan(&mut i);
        let delta = chain(2);
        let e = chain(3);
        let rows = run_parallel(&plan, &delta, &e, 64);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn grain_guard_serializes_small_deltas() {
        // With the production grain, a 40-tuple delta is far below one
        // shard's worth of work: the round must still produce exactly the
        // serial rows (it runs them on the calling thread).
        let mut i = Interner::new();
        let plan = linear_plan(&mut i);
        let delta = chain(40);
        let e = chain(41);
        let mut store = RelStore::new();
        store.bind(RelKey::Aux(0), &delta);
        store.bind(RelKey::Aux(1), &e);
        let mut shared = IndexCache::new();
        shared.prepare_where(&plan, &store, |k| k != RelKey::Aux(0));
        let mut scanned = 0u64;
        let merged = sharded_delta_round(
            &[&plan],
            RelKey::Aux(0),
            &store,
            &shared,
            8,
            MIN_SHARD_TUPLES,
            &[],
            &Budget::default(),
            &mut scanned,
        );
        let rows: Vec<Tuple> = merged[0].iter().flatten().cloned().collect();
        assert_eq!(rows, run_serial(&plan, &delta, &e));
    }

    #[test]
    fn empty_delta_produces_no_rows() {
        let mut i = Interner::new();
        let plan = linear_plan(&mut i);
        let delta = Relation::new(2);
        let e = chain(3);
        assert!(run_parallel(&plan, &delta, &e, 4).is_empty());
    }
}
