//! Stratified semi-naive evaluation.
//!
//! The general-purpose bottom-up engine: predicates are evaluated one
//! strongly connected component at a time in dependency order; within a
//! recursive component, delta rules ensure each join only considers tuples
//! produced in the previous iteration. This engine evaluates ordinary
//! programs, the Magic-Sets-rewritten programs, and serves as the ground
//! truth against which the specialized Separable algorithm is validated.
//!
//! It is also the reference engine for *stratified* programs: negated
//! literals read the completed relations of lower strata (the dependency
//! graph includes negation edges, so SCC order already sequences them), and
//! aggregate heads (`shortest(Y, min<C>) :- ...`) merge candidate rows
//! through an [`AggState`] that keeps exactly one stored tuple per group.
//! `min`/`max` improve monotonically under the sanctioned direct
//! self-recursion; `count`/`sum` fold distinct contributions in their own
//! (non-recursive) stratum. Programs with no stratified model are rejected
//! up front with [`EvalError::Unstratifiable`] — never silently
//! mis-evaluated.

use sepra_ast::{AggFunc, AggSpec, DependencyGraph, Literal, Program, Rule, Sym};
use sepra_storage::{Database, EvalStats, FxHashMap, FxHashSet, Relation, Tuple, Value};

use crate::budget::Budget;
use crate::error::EvalError;
use crate::parallel::{sharded_delta_round, MIN_SHARD_TUPLES};
use crate::plan::{ConjPlan, PlanAtom, PlanLiteral, RelKey};
use crate::planner::{PlanMode, Planner, PlannerStats};
use crate::store::{IndexCache, RelStore};

/// Tuning knobs for the semi-naive engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOptions {
    /// Number of worker threads used to expand each iteration's deltas.
    /// `1` (the default) runs the exact serial algorithm; higher values
    /// shard every delta across that many workers at each iteration
    /// barrier. Answer sets are identical either way.
    pub threads: usize,
    /// Resource budget checked at every iteration barrier (unlimited by
    /// default).
    pub budget: Budget,
    /// How rule bodies are ordered before compilation: cost-based from
    /// relation statistics (the default) or exactly as written.
    pub plan_mode: PlanMode,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { threads: 1, budget: Budget::default(), plan_mode: PlanMode::default() }
    }
}

/// The result of a bottom-up evaluation: one relation per IDB predicate,
/// plus the cost statistics the paper compares algorithms by.
#[derive(Debug)]
pub struct Derived {
    /// Final contents of every IDB predicate.
    pub relations: FxHashMap<Sym, Relation>,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl Derived {
    /// The derived relation for `pred`, if it was computed.
    pub fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.relations.get(&pred)
    }
}

/// Evaluates `program` over `db` with semi-naive iteration.
///
/// ```
/// use sepra_eval::seminaive;
/// use sepra_storage::Database;
///
/// let mut db = Database::new();
/// db.load_fact_text("e(a, b). e(b, c).").unwrap();
/// let program = sepra_ast::parse_program(
///     "t(X, Y) :- e(X, Y).\n t(X, Y) :- e(X, W), t(W, Y).\n",
///     db.interner_mut(),
/// )
/// .unwrap();
/// let derived = seminaive(&program, &db).unwrap();
/// let t = db.intern("t");
/// assert_eq!(derived.relation(t).unwrap().len(), 3); // ab, bc, ac
/// ```
pub fn seminaive(program: &Program, db: &Database) -> Result<Derived, EvalError> {
    seminaive_with_options(program, db, &EvalOptions::default())
}

/// [`seminaive`] with explicit [`EvalOptions`] (notably the thread count).
pub fn seminaive_with_options(
    program: &Program,
    db: &Database,
    options: &EvalOptions,
) -> Result<Derived, EvalError> {
    let mut stats = EvalStats::new();
    let relations = run(program, db, options, &mut stats)?;
    // Record final sizes under the predicates' display names.
    for (&pred, rel) in &relations {
        stats.record_size(db.interner().resolve(pred), rel.len());
    }
    Ok(Derived { relations, stats })
}

/// One compiled delta-rule variant. Shared with the incremental
/// maintenance engine ([`crate::incremental`]), whose delta rounds are the
/// same shape with externally seeded deltas.
pub(crate) struct Variant {
    pub(crate) head: Sym,
    /// The predicate whose delta this variant reads (`None` for base rules).
    pub(crate) delta: Option<Sym>,
    pub(crate) plan: ConjPlan,
    /// Delta-first reordering of `plan`, used by the parallel path: with
    /// the delta atom as the outermost scan, sharding the delta partitions
    /// the whole join's work, whereas sharding an inner delta scan would
    /// leave every worker repeating the full outer scan. `None` for base
    /// rules.
    pub(crate) par_plan: Option<ConjPlan>,
}

/// Iteration cap for fixpoints that can generate fresh values (sums and
/// aggregates): a `min` over a negative-weight cycle, or a sum feeding its
/// own input, would otherwise improve forever. Pure positive programs
/// cannot diverge (finite Herbrand base) and are not capped.
const VALUE_ITERATION_CAP: usize = 100_000;

fn run(
    program: &Program,
    db: &Database,
    options: &EvalOptions,
    stats: &mut EvalStats,
) -> Result<FxHashMap<Sym, Relation>, EvalError> {
    // Negation/aggregation only have a meaning under a stratified model;
    // reject programs without one up front, before any fixpoint runs.
    if program.uses_stratified_constructs() {
        sepra_strata::stratify(program)
            .map_err(|e| EvalError::Unstratifiable(e.describe(db.interner())))?;
    }
    // Statistics start from the EDB and grow as strata materialize: once a
    // stratum is complete, its relations' true sizes inform the join
    // orders of every later stratum — this is what lets a Magic-rewritten
    // program keep its (small, derived) guard predicates outermost.
    let mut planner_stats = PlannerStats::from_database(db);
    let graph = DependencyGraph::build(program);
    // Arity of every predicate (head first, then body, then EDB).
    let mut arity: FxHashMap<Sym, usize> = FxHashMap::default();
    for rule in &program.rules {
        arity.entry(rule.head.pred).or_insert_with(|| rule.head.arity());
        for atom in rule.body_atoms() {
            arity.entry(atom.pred).or_insert_with(|| atom.arity());
        }
        for atom in rule.negated_atoms() {
            arity.entry(atom.pred).or_insert_with(|| atom.arity());
        }
    }

    let aggs = agg_specs(program);
    // IDB predicates: anything heading a rule (facts included — a ground
    // fact seeds its predicate's derived relation). Aggregate heads start
    // empty: their EDB facts are *contributions* to fold through the merge
    // state (eval_stratum does that), not rows to copy verbatim.
    let mut derived: FxHashMap<Sym, Relation> = FxHashMap::default();
    for rule in &program.rules {
        let pred = rule.head.pred;
        derived.entry(pred).or_insert_with(|| {
            if aggs.contains_key(&pred) {
                Relation::new(arity[&pred])
            } else {
                // If the program derives into a predicate that also has EDB
                // facts, start from those facts.
                db.relation(pred).cloned().unwrap_or_else(|| Relation::new(arity[&pred]))
            }
        });
    }

    for stratum in graph.strata() {
        let stratum_idb: Vec<Sym> =
            stratum.iter().copied().filter(|p| derived.contains_key(p)).collect();
        if stratum_idb.is_empty() {
            continue;
        }
        let rules: Vec<&Rule> =
            program.rules.iter().filter(|r| stratum_idb.contains(&r.head.pred)).collect();
        eval_stratum(
            &rules,
            &stratum_idb,
            db,
            &mut derived,
            &aggs,
            options,
            stats,
            &planner_stats,
        )?;
        // The stratum is final: record its true sizes for later strata.
        for &p in &stratum_idb {
            planner_stats.add_relation(p, &derived[&p]);
        }
    }
    Ok(derived)
}

/// The aggregate annotation of every aggregate head in `program`
/// (parse-time validation guarantees all rules of a predicate agree).
pub(crate) fn agg_specs(program: &Program) -> FxHashMap<Sym, AggSpec> {
    program.rules.iter().filter_map(|r| r.agg.clone().map(|a| (r.head.pred, a))).collect()
}

/// Evaluates one stratum (one SCC of the dependency graph) to fixpoint.
///
/// `derived` must already hold the *completed* relations of every lower
/// stratum — negated literals read them directly — and pre-seeded relations
/// for `stratum_idb` itself: EDB rows for plain predicates, **empty** for
/// aggregate heads (their EDB facts are folded as contributions here).
/// Callers are responsible for ordering: the strata loop in [`run`], and
/// stratum-granular recomputation in [`crate::incremental`], which re-runs
/// this very function so maintenance cannot drift from from-scratch.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_stratum(
    rules: &[&Rule],
    stratum_idb: &[Sym],
    db: &Database,
    derived: &mut FxHashMap<Sym, Relation>,
    aggs: &FxHashMap<Sym, AggSpec>,
    options: &EvalOptions,
    stats: &mut EvalStats,
    planner_stats: &PlannerStats,
) -> Result<(), EvalError> {
    let threads = options.threads.max(1);
    let mut base_plans: Vec<Variant> = Vec::new();
    let mut rec_plans: Vec<Variant> = Vec::new();
    {
        let planner = Planner::new(options.plan_mode, Some(planner_stats));
        for rule in rules {
            let occurrences: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter_map(|(i, l)| match l {
                    // Only *positive* occurrences drive deltas: negation
                    // reads completed strata, never a delta (stratification
                    // guarantees no same-stratum negation anyway).
                    Literal::Atom(a) if stratum_idb.contains(&a.pred) => Some(i),
                    _ => None,
                })
                .collect();
            if occurrences.is_empty() {
                base_plans.push(compile_variant(rule, None, &planner)?);
            } else {
                for &occ in &occurrences {
                    rec_plans.push(compile_variant(rule, Some(occ), &planner)?);
                }
            }
        }
        planner.record_into(stats);
    }

    // Aggregate merge state for this stratum's aggregate heads, seeded by
    // folding the predicate's own EDB facts as contributions.
    let mut agg_states: FxHashMap<Sym, AggState> = FxHashMap::default();
    for &p in stratum_idb {
        let Some(spec) = aggs.get(&p) else { continue };
        let mut state = AggState::new(spec);
        if let Some(edb) = db.relation(p) {
            let rel = derived.get_mut(&p).expect("derived relation exists");
            for row in edb.iter() {
                state.absorb_into(&row.to_vec(), rel, stats, None);
            }
        }
        agg_states.insert(p, state);
    }
    // Sums and aggregates can mint fresh values; cap those fixpoints.
    let capped = !agg_states.is_empty()
        || rules.iter().any(|r| r.body.iter().any(|l| matches!(l, Literal::Sum(..))));

    let mut indexes = IndexCache::new();

    // Evaluate base rules once.
    let empty_delta = FxHashMap::default();
    {
        let store = build_store(db, derived, &empty_delta);
        let mut buffers: FxHashMap<Sym, Vec<Tuple>> = FxHashMap::default();
        let mut scanned = 0u64;
        for variant in &base_plans {
            indexes.prepare(&variant.plan, &store);
            let buf = buffers.entry(variant.head).or_default();
            variant.plan.execute_counted(
                &store,
                &indexes,
                &[],
                &mut |row| {
                    buf.push(Tuple::new(row.to_vec()));
                },
                &mut scanned,
            );
        }
        stats.record_scanned(scanned as usize);
        drop(store);
        merge_buffers_agg(derived, buffers, stats, None, &mut agg_states);
    }
    options.budget.check("semi-naive fixpoint", stats.iterations, stats.tuples_inserted)?;

    // Initial deltas = everything known so far for the stratum.
    let mut delta: FxHashMap<Sym, Relation> =
        stratum_idb.iter().map(|&p| (p, derived[&p].clone())).collect();

    if rec_plans.is_empty() {
        return Ok(());
    }

    let mut rounds = 0usize;
    loop {
        stats.record_iteration();
        rounds += 1;
        if capped && rounds > VALUE_ITERATION_CAP {
            return Err(EvalError::Diverged {
                what: "fixpoint over sums/aggregates".into(),
                bound: VALUE_ITERATION_CAP,
            });
        }
        options.budget.check("semi-naive fixpoint", stats.iterations, stats.tuples_inserted)?;
        let mut buffers: FxHashMap<Sym, Vec<Tuple>> = FxHashMap::default();
        {
            let store = build_store(db, derived, &delta);
            let mut scanned = 0u64;
            if threads == 1 {
                for variant in &rec_plans {
                    indexes.prepare(&variant.plan, &store);
                    let buf = buffers.entry(variant.head).or_default();
                    variant.plan.execute_counted(
                        &store,
                        &indexes,
                        &[],
                        &mut |row| {
                            buf.push(Tuple::new(row.to_vec()));
                        },
                        &mut scanned,
                    );
                }
            } else {
                // Shared cache: every keyed scan of the delta-first
                // plans except deltas themselves, which each worker
                // indexes over its own shard (usually not even that —
                // the rotated plans full-scan the delta keylessly).
                for variant in &rec_plans {
                    let plan = variant.par_plan.as_ref().unwrap_or(&variant.plan);
                    indexes.prepare_where(plan, &store, |k| !matches!(k, RelKey::Delta(_)));
                }
                // One sharded round per delta predicate, in stable
                // stratum order; variant and worker order fix the merge
                // order, so results are deterministic for a given
                // thread count.
                for &p in stratum_idb {
                    let group: Vec<usize> = rec_plans
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| v.delta == Some(p))
                        .map(|(i, _)| i)
                        .collect();
                    if group.is_empty() {
                        continue;
                    }
                    let plans: Vec<&ConjPlan> = group
                        .iter()
                        .map(|&i| rec_plans[i].par_plan.as_ref().unwrap_or(&rec_plans[i].plan))
                        .collect();
                    let merged = sharded_delta_round(
                        &plans,
                        RelKey::Delta(p),
                        &store,
                        &indexes,
                        threads,
                        MIN_SHARD_TUPLES,
                        &[],
                        &options.budget,
                        &mut scanned,
                    );
                    for (gi, worker_bufs) in merged.into_iter().enumerate() {
                        let buf = buffers.entry(rec_plans[group[gi]].head).or_default();
                        for wb in worker_bufs {
                            buf.extend(wb);
                        }
                    }
                }
                // A worker that observed an exhausted budget stopped
                // expanding early; re-check here so a truncated delta
                // cannot masquerade as convergence.
                options.budget.check(
                    "semi-naive fixpoint",
                    stats.iterations,
                    stats.tuples_inserted,
                )?;
            }
            stats.record_scanned(scanned as usize);
        }
        let mut new_delta: FxHashMap<Sym, Relation> = FxHashMap::default();
        merge_buffers_agg(derived, buffers, stats, Some(&mut new_delta), &mut agg_states);
        for &p in stratum_idb {
            indexes.invalidate(RelKey::Delta(p));
        }
        if new_delta.values().all(Relation::is_empty) {
            break;
        }
        delta = new_delta;
    }
    Ok(())
}

/// Compiles one rule with body-atom occurrence `delta_occ` (a body index)
/// reading the delta relation instead of the full one. The `planner`
/// orders each body before compilation (a no-op in source-order mode).
pub(crate) fn compile_variant(
    rule: &Rule,
    delta_occ: Option<usize>,
    planner: &Planner<'_>,
) -> Result<Variant, EvalError> {
    let mut delta = None;
    let body: Vec<PlanLiteral> = rule
        .body
        .iter()
        .enumerate()
        .map(|(i, lit)| match lit {
            Literal::Atom(a) => {
                let key = if Some(i) == delta_occ {
                    delta = Some(a.pred);
                    RelKey::Delta(a.pred)
                } else {
                    RelKey::Pred(a.pred)
                };
                PlanLiteral::Atom(PlanAtom { rel: key, terms: a.terms.clone() })
            }
            Literal::Eq(l, r) => PlanLiteral::Eq(*l, *r),
            // Negation always reads the full (completed, lower-stratum)
            // relation — never a delta.
            Literal::Neg(a) => {
                PlanLiteral::Neg(PlanAtom { rel: RelKey::Pred(a.pred), terms: a.terms.clone() })
            }
            Literal::Sum(d, x, y) => PlanLiteral::Sum(*d, *x, *y),
        })
        .collect();
    let plan = ConjPlan::compile(&[], &planner.order(&[], &body, 0), &rule.head.terms)?;
    // Parallel variant: rotate the delta occurrence to the front and pin it
    // there — sharding the delta only partitions the join's work when the
    // delta is the outermost scan. The planner orders the rest.
    let par_plan = delta_occ
        .map(|occ| {
            let mut rotated = Vec::with_capacity(body.len());
            rotated.push(body[occ].clone());
            rotated
                .extend(body.iter().enumerate().filter(|&(i, _)| i != occ).map(|(_, l)| l.clone()));
            ConjPlan::compile(&[], &planner.order(&[], &rotated, 1), &rule.head.terms)
        })
        .transpose()?;
    Ok(Variant { head: rule.head.pred, delta, plan, par_plan })
}

pub(crate) fn build_store<'a>(
    db: &'a Database,
    derived: &'a FxHashMap<Sym, Relation>,
    delta: &'a FxHashMap<Sym, Relation>,
) -> RelStore<'a> {
    let mut store = RelStore::new();
    for (p, r) in db.relations() {
        store.bind(RelKey::Pred(p), r);
    }
    // Derived shadows EDB.
    for (&p, r) in derived {
        store.bind(RelKey::Pred(p), r);
    }
    for (&p, r) in delta {
        store.bind(RelKey::Delta(p), r);
    }
    store
}

pub(crate) fn merge_buffers(
    derived: &mut FxHashMap<Sym, Relation>,
    buffers: FxHashMap<Sym, Vec<Tuple>>,
    stats: &mut EvalStats,
    mut new_delta: Option<&mut FxHashMap<Sym, Relation>>,
) {
    for (pred, tuples) in buffers {
        let rel = derived.get_mut(&pred).expect("derived relation exists");
        for t in tuples {
            let arity = t.arity();
            let was_new = rel.insert(t.clone());
            stats.record_insert(was_new);
            if was_new {
                if let Some(nd) = new_delta.as_deref_mut() {
                    nd.entry(pred).or_insert_with(|| Relation::new(arity)).insert(t);
                }
            }
        }
    }
}

/// Merge state for one aggregate head: keeps the current aggregate value
/// per group (the row minus the aggregate column) so the stored relation
/// holds exactly one tuple per group at all times.
///
/// Aggregates fold over **distinct** contribution rows (set semantics, like
/// everything else in the engine): `count`/`sum` count each distinct
/// `(group, value)` row once, and a rule deriving the same row twice
/// contributes once. Non-integer contributions to `min`/`max`/`sum` derive
/// nothing, matching the partial-function reading of `C = A + B`.
pub(crate) struct AggState {
    func: AggFunc,
    pos: usize,
    /// Group key → current stored aggregate value.
    groups: FxHashMap<Vec<Value>, Value>,
    /// Distinct contribution rows already folded (`count`/`sum` only).
    seen: FxHashSet<Vec<Value>>,
}

impl AggState {
    pub(crate) fn new(spec: &AggSpec) -> Self {
        AggState {
            func: spec.func,
            pos: spec.pos,
            groups: FxHashMap::default(),
            seen: FxHashSet::default(),
        }
    }

    fn key_of(&self, row: &[Value]) -> Vec<Value> {
        let mut key = row.to_vec();
        key.remove(self.pos);
        key
    }

    fn tuple_for(&self, key: &[Value], v: Value) -> Tuple {
        let mut row = Vec::with_capacity(key.len() + 1);
        row.extend_from_slice(&key[..self.pos]);
        row.push(v);
        row.extend_from_slice(&key[self.pos..]);
        Tuple::new(row)
    }

    /// Folds one candidate row; when the group's stored tuple changes,
    /// returns `(old stored tuple if any, new stored tuple)`.
    fn absorb(&mut self, row: &[Value]) -> Option<(Option<Tuple>, Tuple)> {
        match self.func {
            AggFunc::Min | AggFunc::Max => {
                let v = row[self.pos];
                let n = v.as_int()?;
                let key = self.key_of(row);
                let cur = self.groups.get(&key).copied();
                let improved = match cur {
                    None => true,
                    Some(c) => {
                        let c = c.as_int().expect("stored aggregate is an integer");
                        if self.func == AggFunc::Min {
                            n < c
                        } else {
                            n > c
                        }
                    }
                };
                if !improved {
                    return None;
                }
                self.groups.insert(key.clone(), v);
                Some((cur.map(|c| self.tuple_for(&key, c)), self.tuple_for(&key, v)))
            }
            AggFunc::Count => {
                if !self.seen.insert(row.to_vec()) {
                    return None;
                }
                let key = self.key_of(row);
                let cur = self.groups.get(&key).copied();
                let n = cur.map_or(0, |c| c.as_int().expect("count is an integer")) + 1;
                let v = Value::int(n).ok()?;
                self.groups.insert(key.clone(), v);
                Some((cur.map(|c| self.tuple_for(&key, c)), self.tuple_for(&key, v)))
            }
            AggFunc::Sum => {
                let add = row[self.pos].as_int()?;
                if !self.seen.insert(row.to_vec()) {
                    return None;
                }
                let key = self.key_of(row);
                let cur = self.groups.get(&key).copied();
                let base = cur.map_or(0, |c| c.as_int().expect("sum is an integer"));
                // Out-of-range sums drop the contribution rather than wrap.
                let v = Value::int(base.checked_add(add)?).ok()?;
                if cur == Some(v) {
                    return None; // zero contribution: value unchanged
                }
                self.groups.insert(key.clone(), v);
                Some((cur.map(|c| self.tuple_for(&key, c)), self.tuple_for(&key, v)))
            }
        }
    }

    /// Folds one candidate row into `rel`, replacing the group's stored
    /// tuple when the aggregate changes. Returns whether the relation
    /// changed; the new stored tuple joins `delta` when one is given.
    pub(crate) fn absorb_into(
        &mut self,
        row: &[Value],
        rel: &mut Relation,
        stats: &mut EvalStats,
        delta: Option<&mut Relation>,
    ) -> bool {
        match self.absorb(row) {
            None => {
                stats.record_insert(false);
                false
            }
            Some((old, new)) => {
                if let Some(old) = old {
                    rel.remove(&old);
                }
                rel.insert(new.clone());
                stats.record_insert(true);
                if let Some(d) = delta {
                    d.insert(new);
                }
                true
            }
        }
    }
}

/// [`merge_buffers`] for strata that may contain aggregate heads: plain
/// predicates merge as usual; rows for an aggregate head are folded through
/// its [`AggState`].
pub(crate) fn merge_buffers_agg(
    derived: &mut FxHashMap<Sym, Relation>,
    buffers: FxHashMap<Sym, Vec<Tuple>>,
    stats: &mut EvalStats,
    mut new_delta: Option<&mut FxHashMap<Sym, Relation>>,
    agg_states: &mut FxHashMap<Sym, AggState>,
) {
    for (pred, tuples) in buffers {
        let Some(state) = agg_states.get_mut(&pred) else {
            let mut single = FxHashMap::default();
            single.insert(pred, tuples);
            merge_buffers(derived, single, stats, new_delta.as_deref_mut());
            continue;
        };
        let rel = derived.get_mut(&pred).expect("derived relation exists");
        let arity = rel.arity();
        for t in tuples {
            let delta_rel = new_delta
                .as_deref_mut()
                .map(|nd| nd.entry(pred).or_insert_with(|| Relation::new(arity)));
            state.absorb_into(t.values(), rel, stats, delta_rel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::parse_program;

    fn eval(program_src: &str, facts: &str) -> (Derived, Database) {
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(program_src, db.interner_mut()).unwrap();
        let derived = seminaive(&program, &db).unwrap();
        (derived, db)
    }

    #[test]
    fn transitive_closure_on_a_chain() {
        let (d, mut db) = eval(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n",
            "e(a, b). e(b, c). e(c, d).",
        );
        let t = db.intern("t");
        // Closure of a 3-edge chain has 3+2+1 = 6 pairs.
        assert_eq!(d.relation(t).unwrap().len(), 6);
    }

    #[test]
    fn transitive_closure_terminates_on_cycles() {
        let (d, mut db) = eval(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n",
            "e(a, b). e(b, c). e(c, a).",
        );
        let t = db.intern("t");
        assert_eq!(d.relation(t).unwrap().len(), 9); // complete on {a,b,c}
    }

    #[test]
    fn nonlinear_recursion_is_supported() {
        let (d, mut db) = eval(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).\n",
            "e(a, b). e(b, c). e(c, d). e(d, e).",
        );
        let t = db.intern("t");
        assert_eq!(d.relation(t).unwrap().len(), 4 + 3 + 2 + 1);
    }

    #[test]
    fn multi_stratum_programs() {
        let (d, mut db) = eval(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             pair(X, Y) :- t(X, Y), t(Y, X).\n",
            "e(a, b). e(b, a). e(b, c).",
        );
        let pair = db.intern("pair");
        let rel = d.relation(pair).unwrap();
        // a<->b loop: pairs (a,a),(a,b),(b,a),(b,b).
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn program_facts_seed_idb() {
        let (d, mut db) = eval("t(X, Y) :- e(X, W), t(W, Y).\nt(seed, goal).\n", "e(a, seed).");
        let t = db.intern("t");
        assert_eq!(d.relation(t).unwrap().len(), 2); // (seed,goal), (a,goal)
    }

    #[test]
    fn idb_on_top_of_edb_same_predicate() {
        // `e` has EDB facts AND a rule deriving into it.
        let (d, mut db) = eval("e(X, Y) :- extra(X, Y).\n", "e(a, b). extra(c, d).");
        let e = db.intern("e");
        assert_eq!(d.relation(e).unwrap().len(), 2);
    }

    #[test]
    fn mutual_recursion_same_stratum() {
        let (d, mut db) = eval(
            "even(X) :- zero(X).\n\
             even(X) :- succ(Y, X), odd(Y).\n\
             odd(X) :- succ(Y, X), even(Y).\n",
            "zero(n0). succ(n0, n1). succ(n1, n2). succ(n2, n3).",
        );
        let even = db.intern("even");
        let odd = db.intern("odd");
        assert_eq!(d.relation(even).unwrap().len(), 2); // n0, n2
        assert_eq!(d.relation(odd).unwrap().len(), 2); // n1, n3
    }

    #[test]
    fn same_generation() {
        let (d, mut db) = eval(
            "sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n",
            "up(a, p). up(b, q). flat(p, q). down(p, a2). down(q, b2).",
        );
        let sg = db.intern("sg");
        let rel = d.relation(sg).unwrap();
        // flat(p,q) plus derived sg(a, b2).
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn nonrecursive_strata_run_zero_iterations() {
        // Base rules are evaluated once, before the fixpoint loop; only
        // rounds of the recursive loop count as iterations. Bounded-
        // recursion elimination (sepra-rewrite) leans on this: rewriting
        // a bounded recursion to nonrecursive rules is what makes its
        // "zero fixpoint iterations" claim literal, not approximate.
        let (d, mut db) = eval("t(X, Y) :- e(X, Y).\np(X) :- t(X, _).\n", "e(a, b). e(b, c).");
        assert_eq!(d.stats.iterations, 0);
        let p = db.intern("p");
        assert_eq!(d.relation(p).unwrap().len(), 2);
    }

    #[test]
    fn stats_are_populated() {
        let (d, _) =
            eval("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n", "e(a, b). e(b, c).");
        assert!(d.stats.iterations >= 2);
        assert!(d.stats.tuples_inserted >= 3);
        assert_eq!(d.stats.relation_sizes["t"], 3);
    }

    #[test]
    fn parallel_threads_match_serial_answers() {
        let src = "t(X, Y) :- e(X, Y).\n\
                   t(X, Y) :- e(X, W), t(W, Y).\n\
                   pair(X, Y) :- t(X, Y), t(Y, X).\n";
        let facts = "e(a, b). e(b, c). e(c, a). e(c, d). e(d, e). e(e, f).";
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(src, db.interner_mut()).unwrap();
        let serial = seminaive(&program, &db).unwrap();
        for threads in [2, 4, 8] {
            let par = seminaive_with_options(
                &program,
                &db,
                &EvalOptions { threads, ..Default::default() },
            )
            .unwrap();
            for (pred, rel) in &serial.relations {
                assert_eq!(par.relations.get(pred), Some(rel), "threads={threads} diverged");
            }
            assert_eq!(par.relations.len(), serial.relations.len());
        }
    }

    #[test]
    fn parallel_nonlinear_recursion_matches_serial() {
        // Non-linear rules make delta self-joins, exercising the serial
        // fallback inside the parallel round.
        let src = "t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).\n";
        let facts = "e(a, b). e(b, c). e(c, d). e(d, e). e(e, f). e(f, g).";
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(src, db.interner_mut()).unwrap();
        let serial = seminaive(&program, &db).unwrap();
        let par = seminaive_with_options(
            &program,
            &db,
            &EvalOptions { threads: 3, ..Default::default() },
        )
        .unwrap();
        let t = db.intern("t");
        assert_eq!(par.relations[&t], serial.relations[&t]);
        assert_eq!(serial.relations[&t].len(), 6 + 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn stratified_negation_set_difference() {
        let (d, mut db) = eval("only(X) :- a(X), !b(X).\n", "a(x). a(y). a(z). b(y).");
        let only = db.intern("only");
        assert_eq!(d.relation(only).unwrap().len(), 2);
    }

    #[test]
    fn negation_reads_completed_lower_stratum() {
        let (d, mut db) = eval(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             unreach(X, Y) :- node(X), node(Y), !t(X, Y).\n",
            "e(a, b). e(b, c). node(a). node(b). node(c).",
        );
        let unreach = db.intern("unreach");
        // 9 pairs minus the 3 reachable ones (ab, bc, ac).
        assert_eq!(d.relation(unreach).unwrap().len(), 6);
    }

    #[test]
    fn min_aggregate_shortest_path() {
        let (d, mut db) = eval(
            "shortest(Y, min<C>) :- source(X), edge(X, Y, C).\n\
             shortest(Y, min<C>) :- shortest(X, D), edge(X, Y, W), C = D + W.\n",
            "source(a). edge(a, b, 1). edge(b, c, 1). edge(a, c, 5). edge(c, d, 1).",
        );
        let shortest = db.intern("shortest");
        let rel = d.relation(shortest).unwrap();
        // One stored tuple per reachable node, holding the min distance:
        // b=1, c=2 (not 5), d=3.
        assert_eq!(rel.len(), 3);
        for (node, dist) in [("b", 1), ("c", 2), ("d", 3)] {
            let n = db.intern(node);
            assert!(
                rel.contains_values(&[Value::sym(n), Value::int(dist).unwrap()]),
                "expected shortest({node}, {dist})"
            );
        }
    }

    #[test]
    fn count_aggregate_over_closure() {
        let (d, mut db) = eval(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             reach(X, count<Y>) :- t(X, Y).\n",
            "e(a, b). e(b, c).",
        );
        let reach = db.intern("reach");
        let rel = d.relation(reach).unwrap();
        assert_eq!(rel.len(), 2);
        let a = db.intern("a");
        let b = db.intern("b");
        assert!(rel.contains_values(&[Value::sym(a), Value::int(2).unwrap()]));
        assert!(rel.contains_values(&[Value::sym(b), Value::int(1).unwrap()]));
    }

    #[test]
    fn sum_aggregate_folds_distinct_contributions() {
        // Set semantics: sum<C> sums the *distinct* values of C per group —
        // the two sales at price 3 project to the same (shop, 3) row, which
        // contributes once. Group by item to sum per item.
        let (d, mut db) = eval(
            "total(X, sum<C>) :- sale(X, _, C).\n",
            "sale(shop, i1, 3). sale(shop, i2, 4). sale(shop, i3, 3).",
        );
        let total = db.intern("total");
        let shop = db.intern("shop");
        let rel = d.relation(total).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rel.contains_values(&[Value::sym(shop), Value::int(7).unwrap()]));
    }

    #[test]
    fn edb_facts_seed_aggregate_heads_as_contributions() {
        // shortest also has EDB facts: they fold through the min, they are
        // not copied verbatim alongside the derived tuple.
        let (d, mut db) = eval(
            "shortest(Y, min<C>) :- source(X), edge(X, Y, C).\n\
             shortest(Y, min<C>) :- shortest(X, D), edge(X, Y, W), C = D + W.\n\
             shortest(b, 7).\n",
            "source(a). edge(a, b, 3). shortest(c, 9).",
        );
        let shortest = db.intern("shortest");
        let rel = d.relation(shortest).unwrap();
        let b = db.intern("b");
        let c = db.intern("c");
        assert_eq!(rel.len(), 2, "one tuple per group");
        assert!(rel.contains_values(&[Value::sym(b), Value::int(3).unwrap()]));
        assert!(rel.contains_values(&[Value::sym(c), Value::int(9).unwrap()]));
    }

    #[test]
    fn unstratifiable_negation_is_refused() {
        let mut db = Database::new();
        db.load_fact_text("a(x).").unwrap();
        let program =
            parse_program("p(X) :- a(X), !q(X).\nq(X) :- p(X).\n", db.interner_mut()).unwrap();
        let err = seminaive(&program, &db).unwrap_err();
        assert!(matches!(err, EvalError::Unstratifiable(_)), "got {err:?}");
    }

    #[test]
    fn count_in_recursion_is_refused() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b).").unwrap();
        let program =
            parse_program("reach(X, count<C>) :- reach(Y, C), e(Y, X).\n", db.interner_mut())
                .unwrap();
        let err = seminaive(&program, &db).unwrap_err();
        assert!(matches!(err, EvalError::Unstratifiable(_)), "got {err:?}");
    }

    #[test]
    fn parallel_threads_match_serial_on_stratified_program() {
        let src = "t(X, Y) :- e(X, Y).\n\
                   t(X, Y) :- e(X, W), t(W, Y).\n\
                   unreach(X, Y) :- node(X), node(Y), !t(X, Y).\n\
                   shortest(Y, min<C>) :- source(X), w(X, Y, C).\n\
                   shortest(Y, min<C>) :- shortest(X, D), w(X, Y, W2), C = D + W2.\n";
        let facts = "e(a, b). e(b, c). e(c, a). node(a). node(b). node(c). node(d). \
                     source(a). w(a, b, 2). w(b, c, 2). w(a, c, 5). w(c, d, 1).";
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(src, db.interner_mut()).unwrap();
        let serial = seminaive(&program, &db).unwrap();
        for threads in [2, 4] {
            let par = seminaive_with_options(
                &program,
                &db,
                &EvalOptions { threads, ..Default::default() },
            )
            .unwrap();
            for (pred, rel) in &serial.relations {
                assert_eq!(par.relations.get(pred), Some(rel), "threads={threads} diverged");
            }
        }
    }

    #[test]
    fn empty_edb_yields_empty_idb() {
        let (d, mut db) = eval("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n", "other(a).");
        let t = db.intern("t");
        assert!(d.relation(t).unwrap().is_empty());
    }
}
