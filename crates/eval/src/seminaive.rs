//! Stratified semi-naive evaluation.
//!
//! The general-purpose bottom-up engine: predicates are evaluated one
//! strongly connected component at a time in dependency order; within a
//! recursive component, delta rules ensure each join only considers tuples
//! produced in the previous iteration. This engine evaluates ordinary
//! programs, the Magic-Sets-rewritten programs, and serves as the ground
//! truth against which the specialized Separable algorithm is validated.

use sepra_ast::{DependencyGraph, Literal, Program, Rule, Sym};
use sepra_storage::{Database, EvalStats, FxHashMap, Relation, Tuple};

use crate::budget::Budget;
use crate::error::EvalError;
use crate::parallel::{sharded_delta_round, MIN_SHARD_TUPLES};
use crate::plan::{ConjPlan, PlanAtom, PlanLiteral, RelKey};
use crate::planner::{PlanMode, Planner, PlannerStats};
use crate::store::{IndexCache, RelStore};

/// Tuning knobs for the semi-naive engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOptions {
    /// Number of worker threads used to expand each iteration's deltas.
    /// `1` (the default) runs the exact serial algorithm; higher values
    /// shard every delta across that many workers at each iteration
    /// barrier. Answer sets are identical either way.
    pub threads: usize,
    /// Resource budget checked at every iteration barrier (unlimited by
    /// default).
    pub budget: Budget,
    /// How rule bodies are ordered before compilation: cost-based from
    /// relation statistics (the default) or exactly as written.
    pub plan_mode: PlanMode,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { threads: 1, budget: Budget::default(), plan_mode: PlanMode::default() }
    }
}

/// The result of a bottom-up evaluation: one relation per IDB predicate,
/// plus the cost statistics the paper compares algorithms by.
#[derive(Debug)]
pub struct Derived {
    /// Final contents of every IDB predicate.
    pub relations: FxHashMap<Sym, Relation>,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl Derived {
    /// The derived relation for `pred`, if it was computed.
    pub fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.relations.get(&pred)
    }
}

/// Evaluates `program` over `db` with semi-naive iteration.
///
/// ```
/// use sepra_eval::seminaive;
/// use sepra_storage::Database;
///
/// let mut db = Database::new();
/// db.load_fact_text("e(a, b). e(b, c).").unwrap();
/// let program = sepra_ast::parse_program(
///     "t(X, Y) :- e(X, Y).\n t(X, Y) :- e(X, W), t(W, Y).\n",
///     db.interner_mut(),
/// )
/// .unwrap();
/// let derived = seminaive(&program, &db).unwrap();
/// let t = db.intern("t");
/// assert_eq!(derived.relation(t).unwrap().len(), 3); // ab, bc, ac
/// ```
pub fn seminaive(program: &Program, db: &Database) -> Result<Derived, EvalError> {
    seminaive_with_options(program, db, &EvalOptions::default())
}

/// [`seminaive`] with explicit [`EvalOptions`] (notably the thread count).
pub fn seminaive_with_options(
    program: &Program,
    db: &Database,
    options: &EvalOptions,
) -> Result<Derived, EvalError> {
    let mut stats = EvalStats::new();
    let relations = run(program, db, options, &mut stats)?;
    // Record final sizes under the predicates' display names.
    for (&pred, rel) in &relations {
        stats.record_size(db.interner().resolve(pred), rel.len());
    }
    Ok(Derived { relations, stats })
}

/// One compiled delta-rule variant. Shared with the incremental
/// maintenance engine ([`crate::incremental`]), whose delta rounds are the
/// same shape with externally seeded deltas.
pub(crate) struct Variant {
    pub(crate) head: Sym,
    /// The predicate whose delta this variant reads (`None` for base rules).
    pub(crate) delta: Option<Sym>,
    pub(crate) plan: ConjPlan,
    /// Delta-first reordering of `plan`, used by the parallel path: with
    /// the delta atom as the outermost scan, sharding the delta partitions
    /// the whole join's work, whereas sharding an inner delta scan would
    /// leave every worker repeating the full outer scan. `None` for base
    /// rules.
    pub(crate) par_plan: Option<ConjPlan>,
}

fn run(
    program: &Program,
    db: &Database,
    options: &EvalOptions,
    stats: &mut EvalStats,
) -> Result<FxHashMap<Sym, Relation>, EvalError> {
    let threads = options.threads.max(1);
    // Statistics start from the EDB and grow as strata materialize: once a
    // stratum is complete, its relations' true sizes inform the join
    // orders of every later stratum — this is what lets a Magic-rewritten
    // program keep its (small, derived) guard predicates outermost.
    let mut planner_stats = PlannerStats::from_database(db);
    let graph = DependencyGraph::build(program);
    // Arity of every predicate (head first, then body, then EDB).
    let mut arity: FxHashMap<Sym, usize> = FxHashMap::default();
    for rule in &program.rules {
        arity.entry(rule.head.pred).or_insert_with(|| rule.head.arity());
        for atom in rule.body_atoms() {
            arity.entry(atom.pred).or_insert_with(|| atom.arity());
        }
    }

    // IDB predicates: anything heading a rule (facts included — a ground
    // fact seeds its predicate's derived relation).
    let mut derived: FxHashMap<Sym, Relation> = FxHashMap::default();
    for rule in &program.rules {
        let pred = rule.head.pred;
        derived.entry(pred).or_insert_with(|| {
            // If the program derives into a predicate that also has EDB
            // facts, start from those facts.
            db.relation(pred).cloned().unwrap_or_else(|| Relation::new(arity[&pred]))
        });
    }

    for stratum in graph.strata() {
        let stratum_idb: Vec<Sym> =
            stratum.iter().copied().filter(|p| derived.contains_key(p)).collect();
        if stratum_idb.is_empty() {
            continue;
        }
        let rules: Vec<&Rule> =
            program.rules.iter().filter(|r| stratum_idb.contains(&r.head.pred)).collect();

        let mut base_plans: Vec<Variant> = Vec::new();
        let mut rec_plans: Vec<Variant> = Vec::new();
        {
            let planner = Planner::new(options.plan_mode, Some(&planner_stats));
            for rule in &rules {
                let occurrences: Vec<usize> = rule
                    .body
                    .iter()
                    .enumerate()
                    .filter_map(|(i, l)| match l {
                        Literal::Atom(a) if stratum_idb.contains(&a.pred) => Some(i),
                        _ => None,
                    })
                    .collect();
                if occurrences.is_empty() {
                    base_plans.push(compile_variant(rule, None, &planner)?);
                } else {
                    for &occ in &occurrences {
                        rec_plans.push(compile_variant(rule, Some(occ), &planner)?);
                    }
                }
            }
            planner.record_into(stats);
        }

        let mut indexes = IndexCache::new();

        // Evaluate base rules once.
        let empty_delta = FxHashMap::default();
        {
            let store = build_store(db, &derived, &empty_delta);
            let mut buffers: FxHashMap<Sym, Vec<Tuple>> = FxHashMap::default();
            let mut scanned = 0u64;
            for variant in &base_plans {
                indexes.prepare(&variant.plan, &store);
                let buf = buffers.entry(variant.head).or_default();
                variant.plan.execute_counted(
                    &store,
                    &indexes,
                    &[],
                    &mut |row| {
                        buf.push(Tuple::new(row.to_vec()));
                    },
                    &mut scanned,
                );
            }
            stats.record_scanned(scanned as usize);
            drop(store);
            merge_buffers(&mut derived, buffers, stats, None);
        }
        options.budget.check("semi-naive fixpoint", stats.iterations, stats.tuples_inserted)?;

        // Initial deltas = everything known so far for the stratum.
        let mut delta: FxHashMap<Sym, Relation> =
            stratum_idb.iter().map(|&p| (p, derived[&p].clone())).collect();

        if rec_plans.is_empty() {
            for &p in &stratum_idb {
                planner_stats.add_relation(p, &derived[&p]);
            }
            continue;
        }

        loop {
            stats.record_iteration();
            options.budget.check("semi-naive fixpoint", stats.iterations, stats.tuples_inserted)?;
            let mut buffers: FxHashMap<Sym, Vec<Tuple>> = FxHashMap::default();
            {
                let store = build_store(db, &derived, &delta);
                let mut scanned = 0u64;
                if threads == 1 {
                    for variant in &rec_plans {
                        indexes.prepare(&variant.plan, &store);
                        let buf = buffers.entry(variant.head).or_default();
                        variant.plan.execute_counted(
                            &store,
                            &indexes,
                            &[],
                            &mut |row| {
                                buf.push(Tuple::new(row.to_vec()));
                            },
                            &mut scanned,
                        );
                    }
                } else {
                    // Shared cache: every keyed scan of the delta-first
                    // plans except deltas themselves, which each worker
                    // indexes over its own shard (usually not even that —
                    // the rotated plans full-scan the delta keylessly).
                    for variant in &rec_plans {
                        let plan = variant.par_plan.as_ref().unwrap_or(&variant.plan);
                        indexes.prepare_where(plan, &store, |k| !matches!(k, RelKey::Delta(_)));
                    }
                    // One sharded round per delta predicate, in stable
                    // stratum order; variant and worker order fix the merge
                    // order, so results are deterministic for a given
                    // thread count.
                    for &p in &stratum_idb {
                        let group: Vec<usize> = rec_plans
                            .iter()
                            .enumerate()
                            .filter(|(_, v)| v.delta == Some(p))
                            .map(|(i, _)| i)
                            .collect();
                        if group.is_empty() {
                            continue;
                        }
                        let plans: Vec<&ConjPlan> = group
                            .iter()
                            .map(|&i| rec_plans[i].par_plan.as_ref().unwrap_or(&rec_plans[i].plan))
                            .collect();
                        let merged = sharded_delta_round(
                            &plans,
                            RelKey::Delta(p),
                            &store,
                            &indexes,
                            threads,
                            MIN_SHARD_TUPLES,
                            &[],
                            &options.budget,
                            &mut scanned,
                        );
                        for (gi, worker_bufs) in merged.into_iter().enumerate() {
                            let buf = buffers.entry(rec_plans[group[gi]].head).or_default();
                            for wb in worker_bufs {
                                buf.extend(wb);
                            }
                        }
                    }
                    // A worker that observed an exhausted budget stopped
                    // expanding early; re-check here so a truncated delta
                    // cannot masquerade as convergence.
                    options.budget.check(
                        "semi-naive fixpoint",
                        stats.iterations,
                        stats.tuples_inserted,
                    )?;
                }
                stats.record_scanned(scanned as usize);
            }
            let mut new_delta: FxHashMap<Sym, Relation> = FxHashMap::default();
            merge_buffers(&mut derived, buffers, stats, Some(&mut new_delta));
            for &p in &stratum_idb {
                indexes.invalidate(RelKey::Delta(p));
            }
            if new_delta.values().all(Relation::is_empty) {
                break;
            }
            delta = new_delta;
        }
        // The stratum is final: record its true sizes for later strata.
        for &p in &stratum_idb {
            planner_stats.add_relation(p, &derived[&p]);
        }
    }
    Ok(derived)
}

/// Compiles one rule with body-atom occurrence `delta_occ` (a body index)
/// reading the delta relation instead of the full one. The `planner`
/// orders each body before compilation (a no-op in source-order mode).
pub(crate) fn compile_variant(
    rule: &Rule,
    delta_occ: Option<usize>,
    planner: &Planner<'_>,
) -> Result<Variant, EvalError> {
    let mut delta = None;
    let body: Vec<PlanLiteral> = rule
        .body
        .iter()
        .enumerate()
        .map(|(i, lit)| match lit {
            Literal::Atom(a) => {
                let key = if Some(i) == delta_occ {
                    delta = Some(a.pred);
                    RelKey::Delta(a.pred)
                } else {
                    RelKey::Pred(a.pred)
                };
                PlanLiteral::Atom(PlanAtom { rel: key, terms: a.terms.clone() })
            }
            Literal::Eq(l, r) => PlanLiteral::Eq(*l, *r),
        })
        .collect();
    let plan = ConjPlan::compile(&[], &planner.order(&[], &body, 0), &rule.head.terms)?;
    // Parallel variant: rotate the delta occurrence to the front and pin it
    // there — sharding the delta only partitions the join's work when the
    // delta is the outermost scan. The planner orders the rest.
    let par_plan = delta_occ
        .map(|occ| {
            let mut rotated = Vec::with_capacity(body.len());
            rotated.push(body[occ].clone());
            rotated
                .extend(body.iter().enumerate().filter(|&(i, _)| i != occ).map(|(_, l)| l.clone()));
            ConjPlan::compile(&[], &planner.order(&[], &rotated, 1), &rule.head.terms)
        })
        .transpose()?;
    Ok(Variant { head: rule.head.pred, delta, plan, par_plan })
}

pub(crate) fn build_store<'a>(
    db: &'a Database,
    derived: &'a FxHashMap<Sym, Relation>,
    delta: &'a FxHashMap<Sym, Relation>,
) -> RelStore<'a> {
    let mut store = RelStore::new();
    for (p, r) in db.relations() {
        store.bind(RelKey::Pred(p), r);
    }
    // Derived shadows EDB.
    for (&p, r) in derived {
        store.bind(RelKey::Pred(p), r);
    }
    for (&p, r) in delta {
        store.bind(RelKey::Delta(p), r);
    }
    store
}

pub(crate) fn merge_buffers(
    derived: &mut FxHashMap<Sym, Relation>,
    buffers: FxHashMap<Sym, Vec<Tuple>>,
    stats: &mut EvalStats,
    mut new_delta: Option<&mut FxHashMap<Sym, Relation>>,
) {
    for (pred, tuples) in buffers {
        let rel = derived.get_mut(&pred).expect("derived relation exists");
        for t in tuples {
            let arity = t.arity();
            let was_new = rel.insert(t.clone());
            stats.record_insert(was_new);
            if was_new {
                if let Some(nd) = new_delta.as_deref_mut() {
                    nd.entry(pred).or_insert_with(|| Relation::new(arity)).insert(t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::parse_program;

    fn eval(program_src: &str, facts: &str) -> (Derived, Database) {
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(program_src, db.interner_mut()).unwrap();
        let derived = seminaive(&program, &db).unwrap();
        (derived, db)
    }

    #[test]
    fn transitive_closure_on_a_chain() {
        let (d, mut db) = eval(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n",
            "e(a, b). e(b, c). e(c, d).",
        );
        let t = db.intern("t");
        // Closure of a 3-edge chain has 3+2+1 = 6 pairs.
        assert_eq!(d.relation(t).unwrap().len(), 6);
    }

    #[test]
    fn transitive_closure_terminates_on_cycles() {
        let (d, mut db) = eval(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n",
            "e(a, b). e(b, c). e(c, a).",
        );
        let t = db.intern("t");
        assert_eq!(d.relation(t).unwrap().len(), 9); // complete on {a,b,c}
    }

    #[test]
    fn nonlinear_recursion_is_supported() {
        let (d, mut db) = eval(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).\n",
            "e(a, b). e(b, c). e(c, d). e(d, e).",
        );
        let t = db.intern("t");
        assert_eq!(d.relation(t).unwrap().len(), 4 + 3 + 2 + 1);
    }

    #[test]
    fn multi_stratum_programs() {
        let (d, mut db) = eval(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             pair(X, Y) :- t(X, Y), t(Y, X).\n",
            "e(a, b). e(b, a). e(b, c).",
        );
        let pair = db.intern("pair");
        let rel = d.relation(pair).unwrap();
        // a<->b loop: pairs (a,a),(a,b),(b,a),(b,b).
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn program_facts_seed_idb() {
        let (d, mut db) = eval("t(X, Y) :- e(X, W), t(W, Y).\nt(seed, goal).\n", "e(a, seed).");
        let t = db.intern("t");
        assert_eq!(d.relation(t).unwrap().len(), 2); // (seed,goal), (a,goal)
    }

    #[test]
    fn idb_on_top_of_edb_same_predicate() {
        // `e` has EDB facts AND a rule deriving into it.
        let (d, mut db) = eval("e(X, Y) :- extra(X, Y).\n", "e(a, b). extra(c, d).");
        let e = db.intern("e");
        assert_eq!(d.relation(e).unwrap().len(), 2);
    }

    #[test]
    fn mutual_recursion_same_stratum() {
        let (d, mut db) = eval(
            "even(X) :- zero(X).\n\
             even(X) :- succ(Y, X), odd(Y).\n\
             odd(X) :- succ(Y, X), even(Y).\n",
            "zero(n0). succ(n0, n1). succ(n1, n2). succ(n2, n3).",
        );
        let even = db.intern("even");
        let odd = db.intern("odd");
        assert_eq!(d.relation(even).unwrap().len(), 2); // n0, n2
        assert_eq!(d.relation(odd).unwrap().len(), 2); // n1, n3
    }

    #[test]
    fn same_generation() {
        let (d, mut db) = eval(
            "sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n",
            "up(a, p). up(b, q). flat(p, q). down(p, a2). down(q, b2).",
        );
        let sg = db.intern("sg");
        let rel = d.relation(sg).unwrap();
        // flat(p,q) plus derived sg(a, b2).
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn nonrecursive_strata_run_zero_iterations() {
        // Base rules are evaluated once, before the fixpoint loop; only
        // rounds of the recursive loop count as iterations. Bounded-
        // recursion elimination (sepra-rewrite) leans on this: rewriting
        // a bounded recursion to nonrecursive rules is what makes its
        // "zero fixpoint iterations" claim literal, not approximate.
        let (d, mut db) = eval("t(X, Y) :- e(X, Y).\np(X) :- t(X, _).\n", "e(a, b). e(b, c).");
        assert_eq!(d.stats.iterations, 0);
        let p = db.intern("p");
        assert_eq!(d.relation(p).unwrap().len(), 2);
    }

    #[test]
    fn stats_are_populated() {
        let (d, _) =
            eval("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n", "e(a, b). e(b, c).");
        assert!(d.stats.iterations >= 2);
        assert!(d.stats.tuples_inserted >= 3);
        assert_eq!(d.stats.relation_sizes["t"], 3);
    }

    #[test]
    fn parallel_threads_match_serial_answers() {
        let src = "t(X, Y) :- e(X, Y).\n\
                   t(X, Y) :- e(X, W), t(W, Y).\n\
                   pair(X, Y) :- t(X, Y), t(Y, X).\n";
        let facts = "e(a, b). e(b, c). e(c, a). e(c, d). e(d, e). e(e, f).";
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(src, db.interner_mut()).unwrap();
        let serial = seminaive(&program, &db).unwrap();
        for threads in [2, 4, 8] {
            let par = seminaive_with_options(
                &program,
                &db,
                &EvalOptions { threads, ..Default::default() },
            )
            .unwrap();
            for (pred, rel) in &serial.relations {
                assert_eq!(par.relations.get(pred), Some(rel), "threads={threads} diverged");
            }
            assert_eq!(par.relations.len(), serial.relations.len());
        }
    }

    #[test]
    fn parallel_nonlinear_recursion_matches_serial() {
        // Non-linear rules make delta self-joins, exercising the serial
        // fallback inside the parallel round.
        let src = "t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).\n";
        let facts = "e(a, b). e(b, c). e(c, d). e(d, e). e(e, f). e(f, g).";
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(src, db.interner_mut()).unwrap();
        let serial = seminaive(&program, &db).unwrap();
        let par = seminaive_with_options(
            &program,
            &db,
            &EvalOptions { threads: 3, ..Default::default() },
        )
        .unwrap();
        let t = db.intern("t");
        assert_eq!(par.relations[&t], serial.relations[&t]);
        assert_eq!(serial.relations[&t].len(), 6 + 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn empty_edb_yields_empty_idb() {
        let (d, mut db) = eval("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n", "other(a).");
        let t = db.intern("t");
        assert!(d.relation(t).unwrap().is_empty());
    }
}
