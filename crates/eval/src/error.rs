//! Evaluation errors.

use std::fmt;

use sepra_storage::value::ValueError;

use crate::budget::BudgetResource;

/// Errors raised while planning or running an evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A body could not be compiled into an executable plan.
    Planning(String),
    /// A constant could not be represented as a runtime value.
    Value(ValueError),
    /// A fixpoint failed to terminate within a configured bound
    /// (only possible when deduplication is disabled, or for the Counting
    /// method on cyclic data).
    Diverged {
        /// Which loop diverged.
        what: String,
        /// The iteration bound that was exceeded.
        bound: usize,
    },
    /// A [`Budget`](crate::budget::Budget) limit was hit: the evaluation was
    /// cut off by a deadline, a tuple/iteration cap, or cancellation —
    /// distinct from [`EvalError::Diverged`], which reports an engine-level
    /// safety bound rather than a caller-imposed resource limit.
    BudgetExceeded {
        /// Which loop was cut off.
        what: String,
        /// Which limit was hit.
        resource: BudgetResource,
    },
    /// The program shape is outside what this algorithm supports.
    Unsupported(String),
    /// The program mixes negation or aggregation with recursion in a way
    /// that has no stratified model (see `sepra_strata::stratify`); no
    /// engine may evaluate it.
    Unstratifiable(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Planning(msg) => write!(f, "planning error: {msg}"),
            EvalError::Value(e) => write!(f, "value error: {e}"),
            EvalError::Diverged { what, bound } => {
                write!(f, "{what} exceeded {bound} iterations without converging")
            }
            EvalError::BudgetExceeded { what, resource } => {
                let why = match resource {
                    BudgetResource::Deadline => "the deadline passed",
                    BudgetResource::Tuples => "the tuple limit was reached",
                    BudgetResource::Iterations => "the iteration limit was reached",
                    BudgetResource::Cancelled => "the evaluation was cancelled",
                };
                write!(f, "budget exceeded in {what}: {why}")
            }
            EvalError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            EvalError::Unstratifiable(msg) => write!(f, "unstratifiable program: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ValueError> for EvalError {
    fn from(e: ValueError) -> Self {
        EvalError::Value(e)
    }
}
