//! Compilation of conjunctions into executable join plans.
//!
//! A [`ConjPlan`] evaluates a conjunction of atoms (plus equality literals)
//! left to right, exactly as the paper's algorithms describe: each atom is
//! scanned with whatever columns are already bound used as an index key, and
//! unbound columns bind new variable slots. The same machinery drives
//! ordinary rule bodies in the semi-naive engine, the magic-rewritten rules,
//! and the carry-extension operators `f_1`/`f_2` of the Separable algorithm
//! (Figure 2), which are compiled as conjunctions whose first atom is a
//! synthetic `carry` relation.

use sepra_ast::{Literal, Sym, Term};
use sepra_storage::{Row, Value};

use crate::error::EvalError;
use crate::store::{IndexSource, RelStore};

/// An abstract name for a relation consulted during execution; resolved to a
/// concrete [`sepra_storage::Relation`] through a [`RelStore`] at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelKey {
    /// The current value of a predicate (derived if present, else EDB).
    Pred(Sym),
    /// The semi-naive delta of a predicate.
    Delta(Sym),
    /// An auxiliary working relation (carry/seen/magic seeds and the like),
    /// identified by a small integer chosen by the evaluator.
    Aux(u32),
}

/// What a column of a scanned atom (or an output column) refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermSpec {
    /// A fixed constant value.
    Const(Value),
    /// A variable slot.
    Slot(usize),
}

/// One step of a compiled plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Scan (or index-probe) a relation.
    Scan {
        /// Which relation to consult.
        rel: RelKey,
        /// Per-column specification.
        cols: Vec<TermSpec>,
        /// Columns statically known to be bound before this step, in
        /// ascending order — used as the index key.
        key_cols: Vec<usize>,
        /// Slot-boundness before this step (`bound_before[s]` is true when
        /// slot `s` has a value when the step starts).
        bound_before: Vec<bool>,
    },
    /// Bind a currently-unbound slot from a bound spec.
    EqBind {
        /// Destination slot (unbound before this step).
        slot: usize,
        /// Source (bound) specification.
        from: TermSpec,
    },
    /// Check two bound specifications for equality.
    EqCheck {
        /// Left operand.
        a: TermSpec,
        /// Right operand.
        b: TermSpec,
    },
    /// Negation-as-failure over a completed relation: succeed iff the row
    /// formed by the (all-bound) column specs is absent. An absent relation
    /// has no rows, so the check passes. Always probes [`RelKey::Pred`] —
    /// negation reads a *completed lower stratum*, never a delta.
    NegCheck {
        /// Which relation to probe.
        rel: RelKey,
        /// Per-column specification (every slot bound before this step).
        cols: Vec<TermSpec>,
    },
    /// Bind an unbound slot to the integer sum of two bound operands.
    /// A non-integer operand or an out-of-range sum derives nothing (the
    /// partial-function reading of `dst = a + b`).
    SumBind {
        /// Destination slot (unbound before this step).
        slot: usize,
        /// Left addend (bound).
        a: TermSpec,
        /// Right addend (bound).
        b: TermSpec,
    },
    /// Check that a bound destination equals the sum of two bound operands.
    SumCheck {
        /// Expected sum (bound).
        dst: TermSpec,
        /// Left addend (bound).
        a: TermSpec,
        /// Right addend (bound).
        b: TermSpec,
    },
}

/// An atom to be compiled: an abstract relation key plus argument terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanAtom {
    /// Which relation the atom scans.
    pub rel: RelKey,
    /// The argument terms.
    pub terms: Vec<Term>,
}

/// A literal to be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanLiteral {
    /// A positive atom.
    Atom(PlanAtom),
    /// A negated atom (compiled to a [`Step::NegCheck`] once its variables
    /// are bound).
    Neg(PlanAtom),
    /// An equality constraint.
    Eq(Term, Term),
    /// A sum constraint `dst = a + b`.
    Sum(Term, Term, Term),
}

impl PlanLiteral {
    /// Lifts an AST literal, mapping its predicate through `key_of`.
    /// Negated atoms always resolve to [`RelKey::Pred`]: negation reads the
    /// completed relation of a lower stratum, never a delta.
    pub fn from_literal(lit: &Literal, key_of: &impl Fn(Sym) -> RelKey) -> Self {
        match lit {
            Literal::Atom(a) => {
                PlanLiteral::Atom(PlanAtom { rel: key_of(a.pred), terms: a.terms.clone() })
            }
            Literal::Neg(a) => {
                PlanLiteral::Neg(PlanAtom { rel: RelKey::Pred(a.pred), terms: a.terms.clone() })
            }
            Literal::Eq(l, r) => PlanLiteral::Eq(*l, *r),
            Literal::Sum(d, a, b) => PlanLiteral::Sum(*d, *a, *b),
        }
    }
}

/// A compiled conjunction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjPlan {
    /// The execution steps, in order.
    pub steps: Vec<Step>,
    /// Total number of variable slots.
    pub n_slots: usize,
    /// Number of leading slots that must be supplied by the caller at
    /// execution time (the pre-bound input variables).
    pub n_inputs: usize,
    /// Output row specification.
    pub output: Vec<TermSpec>,
    /// Slot → variable name, for diagnostics.
    pub var_names: Vec<Sym>,
}

impl ConjPlan {
    /// Compiles `body` into a plan.
    ///
    /// * `inputs` — variables bound by the caller before execution (slots
    ///   `0..inputs.len()` in input order);
    /// * `body` — literals, evaluated in the given order (equalities are
    ///   hoisted to the earliest point at which they are executable);
    /// * `output` — terms (variables or constants) forming the emitted row.
    ///
    /// Fails if an output variable is never bound, or an equality involves
    /// variables bound by no atom.
    pub fn compile(
        inputs: &[Sym],
        body: &[PlanLiteral],
        output: &[Term],
    ) -> Result<ConjPlan, EvalError> {
        let mut builder = Builder::new(inputs)?;
        let mut pending = Pending::default();
        builder.flush_pending(&mut pending)?;
        for lit in body {
            match lit {
                PlanLiteral::Atom(atom) => builder.push_scan(atom)?,
                PlanLiteral::Neg(atom) => pending.negs.push(atom.clone()),
                PlanLiteral::Eq(l, r) => pending.eqs.push((*l, *r)),
                PlanLiteral::Sum(d, a, b) => pending.sums.push((*d, *a, *b)),
            }
            builder.flush_pending(&mut pending)?;
        }
        if !pending.eqs.is_empty() || !pending.sums.is_empty() {
            return Err(EvalError::Planning(
                "equality or sum literal over variables that are never bound".into(),
            ));
        }
        if !pending.negs.is_empty() {
            return Err(EvalError::Planning(
                "negated literal over variables that are never bound positively".into(),
            ));
        }
        builder.finish(output)
    }

    /// Compiles `body` like [`ConjPlan::compile`], but first greedily
    /// reorders the atoms *bound-first*: at each step the executable literal
    /// binding the most columns (constants or already-bound variables) is
    /// chosen, which turns accidental cartesian prefixes into indexable
    /// probes. Equality literals keep their hoisting behavior. The paper's
    /// algorithms assume source order, so the engine uses this only where
    /// order is not semantically meaningful.
    pub fn compile_reordered(
        inputs: &[Sym],
        body: &[PlanLiteral],
        output: &[Term],
    ) -> Result<ConjPlan, EvalError> {
        let reordered = reorder_bound_first(inputs, body);
        ConjPlan::compile(inputs, &reordered, output)
    }

    /// Executes the plan, calling `emit` once per result row.
    ///
    /// `init` supplies values for the input slots (`init.len()` must equal
    /// [`ConjPlan::n_inputs`]). Indexes for every keyed scan must have been
    /// prepared via [`crate::store::IndexCache::prepare`]; any
    /// [`IndexSource`] works, so parallel workers can pass layered
    /// shard-local indexes.
    pub fn execute<I: IndexSource + ?Sized>(
        &self,
        store: &RelStore<'_>,
        indexes: &I,
        init: &[Value],
        emit: &mut dyn FnMut(&[Value]),
    ) {
        let mut scanned = 0u64;
        self.execute_counted(store, indexes, init, emit, &mut scanned);
    }

    /// [`ConjPlan::execute`], additionally counting every tuple considered
    /// by a scan or index probe into `scanned` (the join-work metric).
    pub fn execute_counted<I: IndexSource + ?Sized>(
        &self,
        store: &RelStore<'_>,
        indexes: &I,
        init: &[Value],
        emit: &mut dyn FnMut(&[Value]),
        scanned: &mut u64,
    ) {
        assert_eq!(init.len(), self.n_inputs, "wrong number of input values");
        let mut slots = vec![Value::sym(sepra_ast::Sym(0)); self.n_slots];
        slots[..init.len()].copy_from_slice(init);
        let mut out_row = vec![Value::sym(sepra_ast::Sym(0)); self.output.len()];
        // One key buffer shared by every scan step of this execution; each
        // step rebuilds it, so probing allocates nothing per delta tuple.
        let mut key_scratch: Vec<Value> = Vec::new();
        self.run_step(0, store, indexes, &mut slots, &mut out_row, &mut key_scratch, emit, scanned);
    }

    #[allow(clippy::too_many_arguments)]
    fn run_step<I: IndexSource + ?Sized>(
        &self,
        step_idx: usize,
        store: &RelStore<'_>,
        indexes: &I,
        slots: &mut [Value],
        out_row: &mut [Value],
        key_scratch: &mut Vec<Value>,
        emit: &mut dyn FnMut(&[Value]),
        scanned: &mut u64,
    ) {
        let Some(step) = self.steps.get(step_idx) else {
            for (i, spec) in self.output.iter().enumerate() {
                out_row[i] = match spec {
                    TermSpec::Const(v) => *v,
                    TermSpec::Slot(s) => slots[*s],
                };
            }
            emit(out_row);
            return;
        };
        match step {
            Step::EqBind { slot, from } => {
                slots[*slot] = match from {
                    TermSpec::Const(v) => *v,
                    TermSpec::Slot(s) => slots[*s],
                };
                self.run_step(
                    step_idx + 1,
                    store,
                    indexes,
                    slots,
                    out_row,
                    key_scratch,
                    emit,
                    scanned,
                );
            }
            Step::EqCheck { a, b } => {
                let va = match a {
                    TermSpec::Const(v) => *v,
                    TermSpec::Slot(s) => slots[*s],
                };
                let vb = match b {
                    TermSpec::Const(v) => *v,
                    TermSpec::Slot(s) => slots[*s],
                };
                if va == vb {
                    self.run_step(
                        step_idx + 1,
                        store,
                        indexes,
                        slots,
                        out_row,
                        key_scratch,
                        emit,
                        scanned,
                    );
                }
            }
            Step::NegCheck { rel, cols } => {
                let pass = match store.get(*rel) {
                    None => true, // absent relation has no rows
                    Some(relation) => {
                        key_scratch.clear();
                        for spec in cols {
                            key_scratch.push(match spec {
                                TermSpec::Const(v) => *v,
                                TermSpec::Slot(s) => slots[*s],
                            });
                        }
                        *scanned += 1;
                        !relation.contains_values(key_scratch)
                    }
                };
                if pass {
                    self.run_step(
                        step_idx + 1,
                        store,
                        indexes,
                        slots,
                        out_row,
                        key_scratch,
                        emit,
                        scanned,
                    );
                }
            }
            Step::SumBind { slot, a, b } => {
                let va = match a {
                    TermSpec::Const(v) => *v,
                    TermSpec::Slot(s) => slots[*s],
                };
                let vb = match b {
                    TermSpec::Const(v) => *v,
                    TermSpec::Slot(s) => slots[*s],
                };
                // Non-integer operands or an unrepresentable sum derive
                // nothing: `dst = a + b` is a partial function.
                let sum = va
                    .as_int()
                    .zip(vb.as_int())
                    .and_then(|(x, y)| x.checked_add(y))
                    .and_then(|n| Value::int(n).ok());
                if let Some(v) = sum {
                    slots[*slot] = v;
                    self.run_step(
                        step_idx + 1,
                        store,
                        indexes,
                        slots,
                        out_row,
                        key_scratch,
                        emit,
                        scanned,
                    );
                }
            }
            Step::SumCheck { dst, a, b } => {
                let value_of = |spec: &TermSpec, slots: &[Value]| match spec {
                    TermSpec::Const(v) => *v,
                    TermSpec::Slot(s) => slots[*s],
                };
                let vd = value_of(dst, slots);
                let va = value_of(a, slots);
                let vb = value_of(b, slots);
                let sum = va
                    .as_int()
                    .zip(vb.as_int())
                    .and_then(|(x, y)| x.checked_add(y))
                    .and_then(|n| Value::int(n).ok());
                if sum == Some(vd) {
                    self.run_step(
                        step_idx + 1,
                        store,
                        indexes,
                        slots,
                        out_row,
                        key_scratch,
                        emit,
                        scanned,
                    );
                }
            }
            Step::Scan { rel, cols, key_cols, bound_before } => {
                let Some(relation) = store.get(*rel) else {
                    return; // absent relation: no tuples
                };
                // Assemble the index key in the shared scratch buffer.
                // Deeper scan steps clobber it, which is fine: the indexed
                // path only needs the key for the initial lookup, and the
                // fallback path takes a private copy.
                key_scratch.clear();
                for &c in key_cols {
                    key_scratch.push(match &cols[c] {
                        TermSpec::Const(v) => *v,
                        TermSpec::Slot(s) => slots[*s],
                    });
                }
                let mut newly: Vec<usize> = Vec::new();
                let mut consider = |tuple: Row<'_>,
                                    slots: &mut [Value],
                                    newly: &mut Vec<usize>,
                                    this: &ConjPlan,
                                    key_scratch: &mut Vec<Value>,
                                    emit: &mut dyn FnMut(&[Value]),
                                    scanned: &mut u64| {
                    *scanned += 1;
                    newly.clear();
                    let mut ok = true;
                    for (c, spec) in cols.iter().enumerate() {
                        match spec {
                            TermSpec::Const(v) => {
                                if tuple[c] != *v {
                                    ok = false;
                                    break;
                                }
                            }
                            TermSpec::Slot(s) => {
                                if bound_before[*s] || newly.contains(s) {
                                    if slots[*s] != tuple[c] {
                                        ok = false;
                                        break;
                                    }
                                } else {
                                    slots[*s] = tuple[c];
                                    newly.push(*s);
                                }
                            }
                        }
                    }
                    if ok {
                        this.run_step(
                            step_idx + 1,
                            store,
                            indexes,
                            slots,
                            out_row,
                            key_scratch,
                            emit,
                            scanned,
                        );
                    }
                };
                if key_cols.is_empty() {
                    for tuple in relation.iter() {
                        consider(tuple, slots, &mut newly, self, key_scratch, emit, scanned);
                    }
                } else if let Some(index) = indexes.get_index(*rel, key_cols) {
                    // `lookup` returns positions borrowed from the index,
                    // not from the key, so the scratch buffer is free for
                    // reuse by deeper steps during iteration.
                    for &pos in index.lookup(key_scratch) {
                        let tuple = relation.get(pos as usize).expect("index within relation");
                        consider(tuple, slots, &mut newly, self, key_scratch, emit, scanned);
                    }
                } else {
                    // Fallback: filter a full scan (index not prepared).
                    let key: Vec<Value> = key_scratch.clone();
                    for tuple in relation.iter() {
                        if key_cols.iter().zip(&key).all(|(&c, v)| &tuple[c] == v) {
                            consider(tuple, slots, &mut newly, self, key_scratch, emit, scanned);
                        }
                    }
                }
            }
        }
    }

    /// The keyed scans of this plan, for index preparation:
    /// `(relation, key columns)` pairs.
    pub fn keyed_scans(&self) -> impl Iterator<Item = (RelKey, &[usize])> {
        self.steps.iter().filter_map(|s| match s {
            Step::Scan { rel, key_cols, .. } if !key_cols.is_empty() => {
                Some((*rel, key_cols.as_slice()))
            }
            _ => None,
        })
    }

    /// Number of `Scan` steps consulting `rel`.
    ///
    /// Parallel rounds shard a plan over a relation only when the plan scans
    /// it exactly once: with one occurrence, partitioning the relation
    /// partitions the plan's result rows, whereas a self-join of the sharded
    /// relation would lose the cross-shard pairs.
    pub fn scans_of(&self, rel: RelKey) -> usize {
        self.steps.iter().filter(|s| matches!(s, Step::Scan { rel: r, .. } if *r == rel)).count()
    }
}

/// Greedily reorders literals bound-first (see
/// [`ConjPlan::compile_reordered`]). Equality literals are left interleaved
/// relative to the atoms they follow; only atoms are reordered.
///
/// This is the *zero-statistics fallback* of the cost-based planner: when
/// [`crate::planner::Planner`] has no [`crate::planner::PlannerStats`] (or
/// an empty snapshot), it delegates here, so this ordering must stay
/// correct on its own. In particular, constants count as bound columns
/// exactly like already-bound variables — an atom such as `q(c, X)` is a
/// keyed probe even before any variable is bound, and an equality against
/// a constant is executable immediately.
pub fn reorder_bound_first(inputs: &[Sym], body: &[PlanLiteral]) -> Vec<PlanLiteral> {
    let mut bound: Vec<Sym> = inputs.to_vec();
    let mut remaining: Vec<&PlanLiteral> = body.iter().collect();
    let mut out: Vec<PlanLiteral> = Vec::with_capacity(body.len());
    while !remaining.is_empty() {
        // Pick the best-scoring atom; an executable equality always goes
        // first (it is a filter or a free binding).
        let mut best: Option<(usize, i64)> = None;
        for (i, lit) in remaining.iter().enumerate() {
            let is_bound = |t: &Term| match t {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(v),
            };
            let score = match lit {
                PlanLiteral::Eq(l, r) => {
                    if is_bound(l) || is_bound(r) {
                        i64::MAX
                    } else {
                        i64::MIN // not yet executable
                    }
                }
                // A fully-bound negation is a cheap filter: run it as soon
                // as possible. Unbound, it cannot execute (it never binds).
                PlanLiteral::Neg(atom) => {
                    if atom.terms.iter().all(is_bound) {
                        i64::MAX
                    } else {
                        i64::MIN
                    }
                }
                // A sum is executable once both operands are bound.
                PlanLiteral::Sum(_, a, b) => {
                    if is_bound(a) && is_bound(b) {
                        i64::MAX
                    } else {
                        i64::MIN
                    }
                }
                PlanLiteral::Atom(atom) => {
                    let mut bound_cols = 0i64;
                    for t in &atom.terms {
                        match t {
                            Term::Const(_) => bound_cols += 1,
                            Term::Var(v) if bound.contains(v) => bound_cols += 1,
                            Term::Var(_) => {}
                        }
                    }
                    // Prefer more bound columns; among ties prefer fewer
                    // free columns (smaller expected fanout).
                    bound_cols * 16 - atom.terms.len() as i64
                }
            };
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((i, score));
            }
        }
        let (idx, _) = best.expect("remaining non-empty");
        let lit = remaining.remove(idx);
        for v in lit.vars_for_reorder() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        out.push(lit.clone());
    }
    out
}

impl PlanLiteral {
    pub(crate) fn vars_for_reorder(&self) -> Vec<Sym> {
        let of_terms = |terms: &[&Term]| {
            terms
                .iter()
                .filter_map(|t| match t {
                    Term::Var(v) => Some(*v),
                    Term::Const(_) => None,
                })
                .collect()
        };
        match self {
            // A negation binds nothing, but it is only ever picked once its
            // variables are bound, so reporting them is harmless.
            PlanLiteral::Atom(a) | PlanLiteral::Neg(a) => {
                of_terms(&a.terms.iter().collect::<Vec<_>>())
            }
            PlanLiteral::Eq(l, r) => of_terms(&[l, r]),
            PlanLiteral::Sum(d, a, b) => of_terms(&[d, a, b]),
        }
    }
}

/// Literals seen but not yet executable: equalities and sums wait for a
/// bound side, negations wait for every variable to be bound.
#[derive(Default)]
struct Pending {
    eqs: Vec<(Term, Term)>,
    sums: Vec<(Term, Term, Term)>,
    negs: Vec<PlanAtom>,
}

struct Builder {
    steps: Vec<Step>,
    var_names: Vec<Sym>,
    bound: Vec<bool>,
    n_inputs: usize,
}

impl Builder {
    fn new(inputs: &[Sym]) -> Result<Self, EvalError> {
        let mut b = Builder {
            steps: Vec::new(),
            var_names: Vec::new(),
            bound: Vec::new(),
            n_inputs: inputs.len(),
        };
        for &v in inputs {
            if b.var_names.contains(&v) {
                return Err(EvalError::Planning(format!("duplicate input variable slot for {v}")));
            }
            b.var_names.push(v);
            b.bound.push(true);
        }
        Ok(b)
    }

    fn slot_of(&mut self, v: Sym) -> usize {
        if let Some(i) = self.var_names.iter().position(|&n| n == v) {
            return i;
        }
        self.var_names.push(v);
        self.bound.push(false);
        self.var_names.len() - 1
    }

    fn term_spec(&mut self, t: &Term) -> Result<TermSpec, EvalError> {
        Ok(match t {
            Term::Var(v) => TermSpec::Slot(self.slot_of(*v)),
            Term::Const(c) => TermSpec::Const(Value::from_const(*c)?),
        })
    }

    fn push_scan(&mut self, atom: &PlanAtom) -> Result<(), EvalError> {
        let cols: Vec<TermSpec> =
            atom.terms.iter().map(|t| self.term_spec(t)).collect::<Result<_, _>>()?;
        let bound_before = self.bound.clone();
        let mut key_cols = Vec::new();
        for (c, spec) in cols.iter().enumerate() {
            match spec {
                TermSpec::Const(_) => key_cols.push(c),
                TermSpec::Slot(s) => {
                    if *self.bound.get(*s).unwrap_or(&false) {
                        key_cols.push(c);
                    }
                }
            }
        }
        // Every slot mentioned becomes bound after the scan.
        for spec in &cols {
            if let TermSpec::Slot(s) = spec {
                self.bound[*s] = true;
            }
        }
        // Pad bound_before to current slot count (new slots are unbound).
        let mut bb = bound_before;
        bb.resize(self.bound.len(), false);
        self.steps.push(Step::Scan { rel: atom.rel, cols, key_cols, bound_before: bb });
        Ok(())
    }

    /// Emits every pending equality, sum, and negation that has become
    /// executable; loops until a fixpoint since one binding can enable
    /// another (an equality can bind a sum operand, a sum can bind a
    /// negation's variable, and so on).
    fn flush_pending(&mut self, pending: &mut Pending) -> Result<(), EvalError> {
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < pending.eqs.len() {
                let (l, r) = pending.eqs[i];
                let l_spec = self.term_spec(&l)?;
                let r_spec = self.term_spec(&r)?;
                let lb = self.spec_bound(&l_spec);
                let rb = self.spec_bound(&r_spec);
                if lb && rb {
                    self.steps.push(Step::EqCheck { a: l_spec, b: r_spec });
                } else if lb {
                    let TermSpec::Slot(s) = r_spec else { unreachable!("unbound const") };
                    self.bound[s] = true;
                    self.steps.push(Step::EqBind { slot: s, from: l_spec });
                } else if rb {
                    let TermSpec::Slot(s) = l_spec else { unreachable!("unbound const") };
                    self.bound[s] = true;
                    self.steps.push(Step::EqBind { slot: s, from: r_spec });
                } else {
                    i += 1;
                    continue;
                }
                pending.eqs.remove(i);
                progressed = true;
            }
            let mut i = 0;
            while i < pending.sums.len() {
                let (d, a, b) = pending.sums[i];
                let d_spec = self.term_spec(&d)?;
                let a_spec = self.term_spec(&a)?;
                let b_spec = self.term_spec(&b)?;
                if !(self.spec_bound(&a_spec) && self.spec_bound(&b_spec)) {
                    i += 1;
                    continue;
                }
                if self.spec_bound(&d_spec) {
                    self.steps.push(Step::SumCheck { dst: d_spec, a: a_spec, b: b_spec });
                } else {
                    let TermSpec::Slot(s) = d_spec else { unreachable!("unbound const") };
                    self.bound[s] = true;
                    self.steps.push(Step::SumBind { slot: s, a: a_spec, b: b_spec });
                }
                pending.sums.remove(i);
                progressed = true;
            }
            let mut i = 0;
            while i < pending.negs.len() {
                let atom = pending.negs[i].clone();
                let cols: Vec<TermSpec> =
                    atom.terms.iter().map(|t| self.term_spec(t)).collect::<Result<_, _>>()?;
                if !cols.iter().all(|c| self.spec_bound(c)) {
                    i += 1;
                    continue;
                }
                self.steps.push(Step::NegCheck { rel: atom.rel, cols });
                pending.negs.remove(i);
                progressed = true;
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    fn spec_bound(&self, spec: &TermSpec) -> bool {
        match spec {
            TermSpec::Const(_) => true,
            TermSpec::Slot(s) => self.bound[*s],
        }
    }

    fn finish(mut self, output: &[Term]) -> Result<ConjPlan, EvalError> {
        let mut out = Vec::with_capacity(output.len());
        for t in output {
            let spec = self.term_spec(t)?;
            if let TermSpec::Slot(s) = spec {
                if !self.bound[s] {
                    return Err(EvalError::Planning(format!(
                        "output variable {} is never bound by the body",
                        self.var_names[s]
                    )));
                }
            }
            out.push(spec);
        }
        Ok(ConjPlan {
            steps: self.steps,
            n_slots: self.var_names.len(),
            n_inputs: self.n_inputs,
            output: out,
            var_names: self.var_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::IndexCache;
    use sepra_ast::{parse_program, Interner};
    use sepra_storage::{Database, Relation, Tuple};

    /// Compiles the body of the first rule of `src` with the head terms as
    /// output and no inputs.
    fn compile_first_rule(src: &str, i: &mut Interner) -> (ConjPlan, sepra_ast::Rule) {
        let p = parse_program(src, i).unwrap();
        let rule = p.rules[0].clone();
        let body: Vec<PlanLiteral> =
            rule.body.iter().map(|l| PlanLiteral::from_literal(l, &RelKey::Pred)).collect();
        let plan = ConjPlan::compile(&[], &body, &rule.head.terms).unwrap();
        (plan, rule)
    }

    fn run_collect(plan: &ConjPlan, db: &Database, init: &[Value]) -> Vec<Vec<Value>> {
        let mut store = RelStore::new();
        for (p, r) in db.relations() {
            store.bind(RelKey::Pred(p), r);
        }
        let mut indexes = IndexCache::new();
        indexes.prepare(plan, &store);
        let mut rows = Vec::new();
        plan.execute(&store, &indexes, init, &mut |row| rows.push(row.to_vec()));
        rows.sort();
        rows.dedup();
        rows
    }

    #[test]
    fn single_atom_scan() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(b, c).").unwrap();
        let mut i = db.interner().clone();
        let (plan, _) = compile_first_rule("t(X, Y) :- e(X, Y).", &mut i);
        let rows = run_collect(&plan, &db, &[]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn two_way_join_chains_bindings() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(b, c). e(c, d). e(x, y).").unwrap();
        let mut i = db.interner().clone();
        let (plan, _) = compile_first_rule("t(X, Z) :- e(X, Y), e(Y, Z).", &mut i);
        let rows = run_collect(&plan, &db, &[]);
        // (a,c), (b,d), (x,?): x->y has no continuation.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn constants_filter() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(b, c).").unwrap();
        let mut i = db.interner().clone();
        let (plan, _) = compile_first_rule("t(Y) :- e(a, Y).", &mut i);
        let rows = run_collect(&plan, &db, &[]);
        assert_eq!(rows.len(), 1);
        let b = i.intern("b");
        assert_eq!(rows[0][0], Value::sym(b));
    }

    #[test]
    fn repeated_var_in_one_atom_filters_within_tuple() {
        let mut db = Database::new();
        db.load_fact_text("e(a, a). e(a, b). e(c, c).").unwrap();
        let mut i = db.interner().clone();
        let (plan, _) = compile_first_rule("t(X) :- e(X, X).", &mut i);
        let rows = run_collect(&plan, &db, &[]);
        assert_eq!(rows.len(), 2); // a and c
    }

    #[test]
    fn eq_literal_binds_and_checks() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(b, c).").unwrap();
        let mut i = db.interner().clone();
        let (plan, _) = compile_first_rule("t(X, Y) :- e(X, W), Y = W.", &mut i);
        let rows = run_collect(&plan, &db, &[]);
        assert_eq!(rows.len(), 2);
        // And a filtering equality:
        let (plan2, _) = compile_first_rule("t(X) :- e(X, W), W = b.", &mut i);
        let rows2 = run_collect(&plan2, &db, &[]);
        assert_eq!(rows2.len(), 1);
    }

    #[test]
    fn inputs_prebind_slots() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(b, c).").unwrap();
        let mut i = db.interner().clone();
        let p = parse_program("t(X, Y) :- e(X, Y).", &mut i).unwrap();
        let rule = &p.rules[0];
        let x = i.intern("X");
        let body: Vec<PlanLiteral> =
            rule.body.iter().map(|l| PlanLiteral::from_literal(l, &RelKey::Pred)).collect();
        let plan = ConjPlan::compile(&[x], &body, &rule.head.terms).unwrap();
        assert_eq!(plan.n_inputs, 1);
        let a = i.intern("a");
        let rows = run_collect(&plan, &db, &[Value::sym(a)]);
        assert_eq!(rows.len(), 1);
        let b = i.intern("b");
        assert_eq!(rows[0][1], Value::sym(b));
    }

    #[test]
    fn output_constants_are_emitted() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b).").unwrap();
        let mut i = db.interner().clone();
        let p = parse_program("t(X, marker) :- e(X, _w).", &mut i).unwrap();
        let rule = &p.rules[0];
        let body: Vec<PlanLiteral> =
            rule.body.iter().map(|l| PlanLiteral::from_literal(l, &RelKey::Pred)).collect();
        let plan = ConjPlan::compile(&[], &body, &rule.head.terms).unwrap();
        let rows = run_collect(&plan, &db, &[]);
        let marker = i.intern("marker");
        assert_eq!(rows[0][1], Value::sym(marker));
    }

    #[test]
    fn unbound_output_is_a_planning_error() {
        let mut i = Interner::new();
        let p = parse_program("t(X) :- e(X, Y).", &mut i).unwrap();
        let rule = &p.rules[0];
        let z = i.intern("Z");
        let body: Vec<PlanLiteral> =
            rule.body.iter().map(|l| PlanLiteral::from_literal(l, &RelKey::Pred)).collect();
        let err = ConjPlan::compile(&[], &body, &[Term::Var(z)]).unwrap_err();
        assert!(matches!(err, EvalError::Planning(_)));
    }

    #[test]
    fn dangling_equality_is_a_planning_error() {
        let mut i = Interner::new();
        let a = i.intern("A");
        let b = i.intern("B");
        let err = ConjPlan::compile(&[], &[PlanLiteral::Eq(Term::Var(a), Term::Var(b))], &[])
            .unwrap_err();
        assert!(matches!(err, EvalError::Planning(_)));
    }

    #[test]
    fn empty_body_emits_one_row() {
        let plan = ConjPlan::compile(&[], &[], &[]).unwrap();
        let store = RelStore::new();
        let indexes = IndexCache::new();
        let mut count = 0;
        plan.execute(&store, &indexes, &[], &mut |_| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn missing_relation_yields_no_rows() {
        let mut i = Interner::new();
        let (plan, _) = compile_first_rule("t(X) :- ghost(X).", &mut i);
        let db = Database::new();
        assert!(run_collect(&plan, &db, &[]).is_empty());
    }

    #[test]
    fn cartesian_product_works_without_keys() {
        let mut db = Database::new();
        db.load_fact_text("p(a). p(b). q(x). q(y).").unwrap();
        let mut i = db.interner().clone();
        let (plan, _) = compile_first_rule("t(X, Y) :- p(X), q(Y).", &mut i);
        assert_eq!(run_collect(&plan, &db, &[]).len(), 4);
    }

    #[test]
    fn reordering_moves_bound_atoms_first() {
        let mut db = Database::new();
        // big is large and unconstrained; probe is tiny and keyed by the
        // constant. Source order scans big first (cartesian); reordered
        // order probes first.
        for i in 0..200 {
            db.insert_named("big", &[&format!("u{i}"), &format!("v{i}")]).unwrap();
        }
        db.load_fact_text("probe(a, u5). q(v5, done).").unwrap();
        let mut i = db.interner().clone();
        let p = parse_program("t(Y) :- big(W, Z), probe(a, W), q(Z, Y).\n", &mut i).unwrap();
        let rule = &p.rules[0];
        let body: Vec<PlanLiteral> =
            rule.body.iter().map(|l| PlanLiteral::from_literal(l, &RelKey::Pred)).collect();
        let source_order = ConjPlan::compile(&[], &body, &rule.head.terms).unwrap();
        let reordered = ConjPlan::compile_reordered(&[], &body, &rule.head.terms).unwrap();
        let run = |plan: &ConjPlan| -> (usize, u64) {
            let mut store = RelStore::new();
            for (pred, r) in db.relations() {
                store.bind(RelKey::Pred(pred), r);
            }
            let mut indexes = IndexCache::new();
            indexes.prepare(plan, &store);
            let mut rows = 0usize;
            let mut scanned = 0u64;
            plan.execute_counted(&store, &indexes, &[], &mut |_| rows += 1, &mut scanned);
            (rows, scanned)
        };
        let (rows_a, scanned_a) = run(&source_order);
        let (rows_b, scanned_b) = run(&reordered);
        assert_eq!(rows_a, rows_b, "reordering must not change results");
        assert_eq!(rows_a, 1);
        assert!(
            scanned_b < scanned_a,
            "reordered {scanned_b} should scan fewer rows than source order {scanned_a}"
        );
        // The reordered plan's first scan is the constant-keyed probe.
        let Step::Scan { rel, .. } = &reordered.steps[0] else { panic!("first step is a scan") };
        let probe = i.intern("probe");
        assert_eq!(*rel, RelKey::Pred(probe));
    }

    /// Regression for the zero-statistics fallback's constant handling:
    /// with nothing bound yet, an atom whose columns are constants must
    /// outrank an all-variable atom, and an equality against a constant
    /// is executable immediately (hoisted first), not deferred.
    #[test]
    fn fallback_reorder_counts_constants_as_bound() {
        let mut i = Interner::new();
        let x = i.intern("X");
        let y = i.intern("Y");
        let wide = i.intern("wide");
        let keyed = i.intern("keyed");
        let body = vec![
            PlanLiteral::Atom(PlanAtom {
                rel: RelKey::Pred(wide),
                terms: vec![Term::Var(x), Term::Var(y)],
            }),
            PlanLiteral::Atom(PlanAtom {
                rel: RelKey::Pred(keyed),
                terms: vec![Term::sym(i.intern("a")), Term::sym(i.intern("b")), Term::Var(x)],
            }),
            PlanLiteral::Eq(Term::Var(y), Term::sym(i.intern("c"))),
        ];
        let ordered = reorder_bound_first(&[], &body);
        assert!(
            matches!(ordered[0], PlanLiteral::Eq(..)),
            "constant equality is executable up front"
        );
        let PlanLiteral::Atom(first) = &ordered[1] else { panic!("second literal is an atom") };
        assert_eq!(first.rel, RelKey::Pred(keyed), "doubly-constant probe beats the open scan");
        let PlanLiteral::Atom(last) = &ordered[2] else { panic!("third literal is an atom") };
        assert_eq!(last.rel, RelKey::Pred(wide));
    }

    /// Regression: a body with zero positive atoms (possible once negation
    /// lands — e.g. `p(X) :- X = 3, !q(X).`) must neither panic nor
    /// misorder in the zero-statistics fallback: the binding equality must
    /// come out before the negation that consumes it.
    #[test]
    fn fallback_reorder_handles_zero_positive_literals() {
        let mut i = Interner::new();
        let x = i.intern("X");
        let q = i.intern("q");
        let body = vec![
            PlanLiteral::Neg(PlanAtom { rel: RelKey::Pred(q), terms: vec![Term::Var(x)] }),
            PlanLiteral::Eq(Term::Var(x), Term::int(3)),
        ];
        let ordered = reorder_bound_first(&[], &body);
        assert!(matches!(ordered[0], PlanLiteral::Eq(..)), "binding equality first");
        assert!(matches!(ordered[1], PlanLiteral::Neg(..)));
        // And the reordered body compiles and runs.
        let plan = ConjPlan::compile(&[], &ordered, &[Term::Var(x)]).unwrap();
        let db = Database::new();
        let rows = run_collect(&plan, &db, &[]);
        assert_eq!(rows, vec![vec![Value::int(3).unwrap()]]);
        // An empty body reorders to an empty body without panicking.
        assert!(reorder_bound_first(&[], &[]).is_empty());
    }

    #[test]
    fn neg_check_filters_bound_rows() {
        let mut db = Database::new();
        db.load_fact_text("a(x). a(y). b(y).").unwrap();
        let mut i = db.interner().clone();
        let (plan, _) = compile_first_rule("only(X) :- a(X), !b(X).", &mut i);
        let rows = run_collect(&plan, &db, &[]);
        let x = i.intern("x");
        assert_eq!(rows, vec![vec![Value::sym(x)]]);
    }

    #[test]
    fn neg_check_passes_on_absent_relation() {
        let mut db = Database::new();
        db.load_fact_text("a(x).").unwrap();
        let mut i = db.interner().clone();
        let (plan, _) = compile_first_rule("only(X) :- a(X), !ghost(X).", &mut i);
        assert_eq!(run_collect(&plan, &db, &[]).len(), 1);
    }

    #[test]
    fn sum_binds_and_checks() {
        let mut db = Database::new();
        db.load_fact_text("q(4).").unwrap();
        let mut i = db.interner().clone();
        let (plan, _) = compile_first_rule("p(C) :- q(D), C = D + 1.", &mut i);
        let rows = run_collect(&plan, &db, &[]);
        assert_eq!(rows, vec![vec![Value::int(5).unwrap()]]);
        // All-bound: the sum becomes a check.
        let mut db2 = Database::new();
        db2.load_fact_text("q(4). q(7). r(5).").unwrap();
        let mut i2 = db2.interner().clone();
        let (plan2, _) = compile_first_rule("p(D) :- q(D), r(C), C = D + 1.", &mut i2);
        let rows2 = run_collect(&plan2, &db2, &[]);
        assert_eq!(rows2, vec![vec![Value::int(4).unwrap()]]);
    }

    #[test]
    fn sum_over_symbols_derives_nothing() {
        let mut db = Database::new();
        db.load_fact_text("q(tom).").unwrap();
        let mut i = db.interner().clone();
        let (plan, _) = compile_first_rule("p(C) :- q(D), C = D + 1.", &mut i);
        assert!(run_collect(&plan, &db, &[]).is_empty());
    }

    #[test]
    fn unbound_negation_is_a_planning_error() {
        let mut i = Interner::new();
        let x = i.intern("X");
        let q = i.intern("q");
        let body =
            vec![PlanLiteral::Neg(PlanAtom { rel: RelKey::Pred(q), terms: vec![Term::Var(x)] })];
        let err = ConjPlan::compile(&[], &body, &[]).unwrap_err();
        assert!(matches!(err, EvalError::Planning(_)));
    }

    #[test]
    fn aux_relations_resolve_through_store() {
        let mut i = Interner::new();
        let x = i.intern("X");
        let body =
            vec![PlanLiteral::Atom(PlanAtom { rel: RelKey::Aux(7), terms: vec![Term::Var(x)] })];
        let plan = ConjPlan::compile(&[], &body, &[Term::Var(x)]).unwrap();
        let mut carry = Relation::new(1);
        let v = Value::sym(i.intern("seed"));
        carry.insert(Tuple::from([v]));
        let mut store = RelStore::new();
        store.bind(RelKey::Aux(7), &carry);
        let indexes = IndexCache::new();
        let mut rows = Vec::new();
        plan.execute(&store, &indexes, &[], &mut |r| rows.push(r.to_vec()));
        assert_eq!(rows, vec![vec![v]]);
    }
}
