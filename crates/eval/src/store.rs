//! Relation binding and index caching for plan execution.

use sepra_storage::{FxHashMap, Index, Relation};

use crate::plan::{ConjPlan, RelKey};

/// Binds abstract [`RelKey`]s to concrete relations for one execution round.
///
/// Evaluators rebuild the (cheap) store each round because delta and carry
/// relations are replaced between rounds. Cloning copies only the key →
/// reference map, so parallel workers clone the round's store and rebind
/// the sharded key to their own shard.
#[derive(Debug, Default, Clone)]
pub struct RelStore<'a> {
    map: FxHashMap<RelKey, &'a Relation>,
}

impl<'a> RelStore<'a> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `key` to `relation` (replacing any previous binding).
    pub fn bind(&mut self, key: RelKey, relation: &'a Relation) {
        self.map.insert(key, relation);
    }

    /// Resolves a key.
    pub fn get(&self, key: RelKey) -> Option<&'a Relation> {
        self.map.get(&key).copied()
    }
}

/// A cache of hash indexes keyed by `(relation key, key columns)`.
///
/// Indexes over append-only relations (EDB, derived "full" relations, seen
/// sets) are extended incrementally; evaluators must [`IndexCache::invalidate`]
/// a key whenever they rebind it to a *different* relation object (deltas and
/// carries), otherwise stale positions would be probed.
#[derive(Debug, Default)]
pub struct IndexCache {
    map: FxHashMap<(RelKey, Box<[usize]>), Index>,
}

impl IndexCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures an up-to-date index exists for every keyed scan of `plan`
    /// against the relations currently bound in `store`.
    pub fn prepare(&mut self, plan: &ConjPlan, store: &RelStore<'_>) {
        self.prepare_where(plan, store, |_| true);
    }

    /// [`IndexCache::prepare`] restricted to the keyed scans whose relation
    /// key satisfies `keep`. Parallel rounds split preparation this way:
    /// the shared cache holds every key except the sharded one, and each
    /// worker builds indexes over its own shard locally.
    pub fn prepare_where(
        &mut self,
        plan: &ConjPlan,
        store: &RelStore<'_>,
        keep: impl Fn(RelKey) -> bool,
    ) {
        for (rel, cols) in plan.keyed_scans() {
            if !keep(rel) {
                continue;
            }
            let Some(relation) = store.get(rel) else {
                continue;
            };
            self.map
                .entry((rel, cols.into()))
                .and_modify(|idx| idx.extend_to(relation))
                .or_insert_with(|| Index::build(relation, cols.to_vec()));
        }
    }

    /// Fetches a prepared index.
    pub fn get(&self, rel: RelKey, cols: &[usize]) -> Option<&Index> {
        self.map.get(&(rel, cols.into()) as &(RelKey, Box<[usize]>))
    }

    /// Drops every index over `rel` (call when `rel` is rebound to a
    /// different relation object).
    pub fn invalidate(&mut self, rel: RelKey) {
        self.map.retain(|(k, _), _| *k != rel);
    }

    /// Number of cached indexes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A read-only source of prepared indexes for plan execution.
///
/// [`ConjPlan::execute`] is generic over this so the serial engines keep
/// passing an [`IndexCache`] while parallel workers pass a
/// [`LayeredIndexes`] chaining their shard-local cache over the shared one.
pub trait IndexSource {
    /// Fetches the index of `rel` on `cols`, if one has been prepared.
    fn get_index(&self, rel: RelKey, cols: &[usize]) -> Option<&Index>;
}

impl IndexSource for IndexCache {
    fn get_index(&self, rel: RelKey, cols: &[usize]) -> Option<&Index> {
        self.get(rel, cols)
    }
}

/// Worker-local indexes layered over a shared cache.
///
/// Lookups consult `local` first so a worker's indexes over its delta
/// shard shadow any same-key entry of the shared cache; everything else
/// (EDB, derived, seen) resolves through `base`.
#[derive(Debug)]
pub struct LayeredIndexes<'a> {
    local: &'a IndexCache,
    base: &'a IndexCache,
}

impl<'a> LayeredIndexes<'a> {
    /// Chains `local` over `base`.
    pub fn new(local: &'a IndexCache, base: &'a IndexCache) -> Self {
        LayeredIndexes { local, base }
    }
}

impl IndexSource for LayeredIndexes<'_> {
    fn get_index(&self, rel: RelKey, cols: &[usize]) -> Option<&Index> {
        self.local.get(rel, cols).or_else(|| self.base.get(rel, cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::Sym;
    use sepra_storage::{Tuple, Value};

    fn rel_with(n: u32) -> Relation {
        let mut r = Relation::new(2);
        for i in 0..n {
            r.insert(Tuple::from([Value::sym(Sym(i)), Value::sym(Sym(i + 1))]));
        }
        r
    }

    #[test]
    fn store_binds_and_resolves() {
        let r = rel_with(3);
        let mut s = RelStore::new();
        let key = RelKey::Aux(1);
        assert!(s.get(key).is_none());
        s.bind(key, &r);
        assert_eq!(s.get(key).unwrap().len(), 3);
    }

    #[test]
    fn cache_invalidation_removes_only_that_key() {
        let r1 = rel_with(3);
        let r2 = rel_with(5);
        let mut cache = IndexCache::new();
        cache.map.insert((RelKey::Aux(1), Box::from([0usize])), Index::build(&r1, vec![0]));
        cache.map.insert((RelKey::Aux(2), Box::from([0usize])), Index::build(&r2, vec![0]));
        assert_eq!(cache.len(), 2);
        cache.invalidate(RelKey::Aux(1));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(RelKey::Aux(2), &[0]).is_some());
    }
}
