//! Relation binding and index caching for plan execution.

use sepra_storage::{FxHashMap, Index, Relation};

use crate::plan::{ConjPlan, RelKey};

/// Binds abstract [`RelKey`]s to concrete relations for one execution round.
///
/// Evaluators rebuild the (cheap) store each round because delta and carry
/// relations are replaced between rounds.
#[derive(Debug, Default)]
pub struct RelStore<'a> {
    map: FxHashMap<RelKey, &'a Relation>,
}

impl<'a> RelStore<'a> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `key` to `relation` (replacing any previous binding).
    pub fn bind(&mut self, key: RelKey, relation: &'a Relation) {
        self.map.insert(key, relation);
    }

    /// Resolves a key.
    pub fn get(&self, key: RelKey) -> Option<&'a Relation> {
        self.map.get(&key).copied()
    }
}

/// A cache of hash indexes keyed by `(relation key, key columns)`.
///
/// Indexes over append-only relations (EDB, derived "full" relations, seen
/// sets) are extended incrementally; evaluators must [`IndexCache::invalidate`]
/// a key whenever they rebind it to a *different* relation object (deltas and
/// carries), otherwise stale positions would be probed.
#[derive(Debug, Default)]
pub struct IndexCache {
    map: FxHashMap<(RelKey, Box<[usize]>), Index>,
}

impl IndexCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures an up-to-date index exists for every keyed scan of `plan`
    /// against the relations currently bound in `store`.
    pub fn prepare(&mut self, plan: &ConjPlan, store: &RelStore<'_>) {
        for (rel, cols) in plan.keyed_scans() {
            let Some(relation) = store.get(rel) else {
                continue;
            };
            self.map
                .entry((rel, cols.into()))
                .and_modify(|idx| idx.extend_to(relation))
                .or_insert_with(|| Index::build(relation, cols.to_vec()));
        }
    }

    /// Fetches a prepared index.
    pub fn get(&self, rel: RelKey, cols: &[usize]) -> Option<&Index> {
        self.map.get(&(rel, cols.into()) as &(RelKey, Box<[usize]>))
    }

    /// Drops every index over `rel` (call when `rel` is rebound to a
    /// different relation object).
    pub fn invalidate(&mut self, rel: RelKey) {
        self.map.retain(|(k, _), _| *k != rel);
    }

    /// Number of cached indexes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::Sym;
    use sepra_storage::{Tuple, Value};

    fn rel_with(n: u32) -> Relation {
        let mut r = Relation::new(2);
        for i in 0..n {
            r.insert(Tuple::from([Value::sym(Sym(i)), Value::sym(Sym(i + 1))]));
        }
        r
    }

    #[test]
    fn store_binds_and_resolves() {
        let r = rel_with(3);
        let mut s = RelStore::new();
        let key = RelKey::Aux(1);
        assert!(s.get(key).is_none());
        s.bind(key, &r);
        assert_eq!(s.get(key).unwrap().len(), 3);
    }

    #[test]
    fn cache_invalidation_removes_only_that_key() {
        let r1 = rel_with(3);
        let r2 = rel_with(5);
        let mut cache = IndexCache::new();
        cache
            .map
            .insert((RelKey::Aux(1), Box::from([0usize])), Index::build(&r1, vec![0]));
        cache
            .map
            .insert((RelKey::Aux(2), Box::from([0usize])), Index::build(&r2, vec![0]));
        assert_eq!(cache.len(), 2);
        cache.invalidate(RelKey::Aux(1));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(RelKey::Aux(2), &[0]).is_some());
    }
}
