//! Statistics-driven greedy join ordering.
//!
//! Every evaluator in the workspace compiles rule bodies into left-to-right
//! index-nested-loop joins ([`crate::plan::ConjPlan`]); the *order* of the
//! subgoals decides how large the intermediate results get, which is
//! exactly the paper's cost metric (Definition 4.2: algorithms are compared
//! by the sizes of the relations they construct). This module picks that
//! order from data rather than from the program text: at each step the
//! [`Planner`] chooses the remaining subgoal with the smallest estimated
//! output cardinality given the variables already bound, using the classic
//! uniform-selectivity model
//!
//! ```text
//! estimate(atom) = rows(rel) / Π { distinct(rel, c) : column c bound }
//! ```
//!
//! over the exact row/distinct counts that [`sepra_storage::RelStats`]
//! maintains on every EDB mutation path. When no statistics exist (an
//! empty database, or synthetic relations) the planner falls back to the
//! static bound-first heuristic [`crate::plan::reorder_bound_first`] and
//! counts the fallback, so servers can observe how often they plan blind.
//!
//! Ordering is semantics-preserving — conjunctions of positive atoms,
//! equalities, sums, and stratified negations commute (a negated literal
//! reads only *completed* lower strata, so moving it never changes what it
//! observes; the compiler still requires its variables to be bound
//! positively first) — so evaluators apply it freely; the only constraint
//! is structural: plans that are sharded over their first scan (parallel
//! delta rounds, the carry loops of the Separable executor) *pin* a prefix
//! that the planner must not move, which callers express with the `pinned`
//! argument of [`Planner::order`].

use std::cell::Cell;

use sepra_ast::{Sym, Term};
use sepra_storage::{Database, EvalStats, FxHashMap, FxHashSet, Relation};

use crate::plan::{reorder_bound_first, ConjPlan, PlanAtom, PlanLiteral, RelKey, Step};

/// How conjunction bodies are ordered before compilation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlanMode {
    /// Greedy lowest-estimated-cardinality ordering from relation
    /// statistics, falling back to the bound-first heuristic when no
    /// statistics are available. The default.
    #[default]
    CostBased,
    /// Compile bodies exactly as written (the paper's presentation, and
    /// the baseline the E13 benchmark compares against).
    SourceOrder,
}

/// Row count and per-column distinct counts for one relation, as the
/// planner sees them.
#[derive(Debug, Clone, PartialEq)]
pub struct RelEstimate {
    /// Number of stored tuples.
    pub rows: f64,
    /// Distinct values per column.
    pub distinct: Vec<f64>,
}

/// Assumed selectivity divisor for a bound column whose distinct count is
/// unknown (auxiliary/derived relations).
const DEFAULT_DISTINCT: f64 = 10.0;
/// Assumed size of auxiliary working relations (carry/seen seeds); these
/// are pinned first in every plan that scans them, so the value only
/// breaks ties.
const AUX_ROWS: f64 = 8.0;
/// A semi-naive delta holds at most the full relation; estimating it at
/// half biases plans toward scanning the (shrinking) delta outermost.
const DELTA_FRACTION: f64 = 0.5;
/// Assumed size of predicates the snapshot knows nothing about. Evaluators
/// fold every *completed* stratum into their [`PlannerStats`], so an
/// unknown predicate is a recursion sibling of the rule being compiled —
/// a magic/supplementary guard or a delta-driven frontier, which stays
/// small. Estimating it small keeps such guards in front of the (large)
/// EDB relations they exist to restrict.
const UNKNOWN_ROWS: f64 = 8.0;
/// Floor for estimates, so repeated division cannot reach zero and erase
/// the relative order of later candidates.
const MIN_ESTIMATE: f64 = 1e-6;

/// A snapshot of per-relation statistics for planning one evaluation.
///
/// Built from a [`Database`] in O(#relations × arity) — the underlying
/// counts are maintained incrementally by [`sepra_storage::RelStats`], so
/// no data is scanned (relations without maintained stats are scanned
/// once as a fallback).
#[derive(Debug, Clone, Default)]
pub struct PlannerStats {
    rels: FxHashMap<Sym, RelEstimate>,
}

impl PlannerStats {
    /// Snapshots the statistics of every relation in `db`.
    pub fn from_database(db: &Database) -> Self {
        let mut s = PlannerStats::default();
        for (pred, rel) in db.relations() {
            s.add_relation(pred, rel);
        }
        s
    }

    /// Adds (or replaces) the estimate for `pred`, reading the relation's
    /// maintained statistics when present and counting by scan otherwise.
    pub fn add_relation(&mut self, pred: Sym, rel: &Relation) {
        let est = match rel.stats() {
            Some(rs) => RelEstimate {
                rows: rs.rows() as f64,
                distinct: (0..rel.arity()).map(|c| rs.distinct(c) as f64).collect(),
            },
            None => {
                let mut seen: Vec<FxHashSet<sepra_storage::Value>> =
                    vec![FxHashSet::default(); rel.arity()];
                for (c, seen_col) in seen.iter_mut().enumerate() {
                    seen_col.extend(rel.column(c).iter().copied());
                }
                RelEstimate {
                    rows: rel.len() as f64,
                    distinct: seen.iter().map(|s| s.len() as f64).collect(),
                }
            }
        };
        self.rels.insert(pred, est);
    }

    /// Whether no relation has any statistics (planning would be blind).
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// The estimate recorded for `pred`, if any.
    pub fn get(&self, pred: Sym) -> Option<&RelEstimate> {
        self.rels.get(&pred)
    }

    /// Assumed size for relations the snapshot knows nothing about — see
    /// [`UNKNOWN_ROWS`] for why "unknown" implies "small".
    pub fn unknown_rows(&self) -> f64 {
        UNKNOWN_ROWS
    }

    /// `(rows, per-column distincts)` for an abstract relation key.
    fn lookup(&self, rel: RelKey) -> (f64, Option<&[f64]>) {
        match rel {
            RelKey::Pred(p) => match self.rels.get(&p) {
                Some(e) => (e.rows, Some(e.distinct.as_slice())),
                None => (self.unknown_rows(), None),
            },
            RelKey::Delta(p) => match self.rels.get(&p) {
                Some(e) => (e.rows * DELTA_FRACTION, Some(e.distinct.as_slice())),
                None => (self.unknown_rows() * DELTA_FRACTION, None),
            },
            RelKey::Aux(_) => (AUX_ROWS, None),
        }
    }

    /// Estimated result rows of scanning `atom` with the variables in
    /// `bound` already bound.
    pub fn atom_estimate(&self, atom: &PlanAtom, bound: &[Sym]) -> f64 {
        let (rows, distinct) = self.lookup(atom.rel);
        let mut est = rows.max(1.0);
        for (c, t) in atom.terms.iter().enumerate() {
            let is_bound = match t {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(v),
            };
            if is_bound {
                let d = distinct.and_then(|d| d.get(c).copied()).unwrap_or(DEFAULT_DISTINCT);
                est /= d.max(1.0);
            }
        }
        est.max(MIN_ESTIMATE)
    }

    /// Per-scan estimates of a compiled plan, in execution order — the
    /// numbers `:plan` / `--explain` print. For each `Scan` step the
    /// estimate divides the relation's rows by the distinct count of every
    /// key column (the columns bound when the scan starts).
    pub fn estimate_scans(&self, plan: &ConjPlan) -> Vec<ScanEstimate> {
        plan.steps
            .iter()
            .filter_map(|s| match s {
                Step::Scan { rel, key_cols, .. } => {
                    let (rows, distinct) = self.lookup(*rel);
                    let mut est = rows.max(1.0);
                    for &c in key_cols {
                        let d =
                            distinct.and_then(|d| d.get(c).copied()).unwrap_or(DEFAULT_DISTINCT);
                        est /= d.max(1.0);
                    }
                    Some(ScanEstimate {
                        rel: *rel,
                        rows,
                        estimate: est.max(MIN_ESTIMATE),
                        keyed_cols: key_cols.len(),
                    })
                }
                _ => None,
            })
            .collect()
    }
}

/// The cost estimate for one `Scan` step of a compiled plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanEstimate {
    /// The relation scanned.
    pub rel: RelKey,
    /// Estimated rows of the relation itself.
    pub rows: f64,
    /// Estimated rows the scan emits per execution (rows over the
    /// selectivity of its key columns).
    pub estimate: f64,
    /// Number of index-key columns.
    pub keyed_cols: usize,
}

/// Orders conjunction bodies for compilation, counting how often it ran
/// and how often it fell back to the static heuristic.
#[derive(Debug)]
pub struct Planner<'a> {
    mode: PlanMode,
    stats: Option<&'a PlannerStats>,
    costed: Cell<usize>,
    fallbacks: Cell<usize>,
}

impl<'a> Planner<'a> {
    /// A planner in `mode` over `stats` (pass `None` to always fall back).
    pub fn new(mode: PlanMode, stats: Option<&'a PlannerStats>) -> Self {
        Planner { mode, stats, costed: Cell::new(0), fallbacks: Cell::new(0) }
    }

    /// A planner that keeps bodies exactly as written.
    pub fn source_order() -> Planner<'static> {
        Planner::new(PlanMode::SourceOrder, None)
    }

    /// The ordering mode.
    pub fn mode(&self) -> PlanMode {
        self.mode
    }

    /// `(plans costed, fallbacks)` since construction.
    pub fn counters(&self) -> (usize, usize) {
        (self.costed.get(), self.fallbacks.get())
    }

    /// Folds this planner's counters into an [`EvalStats`].
    pub fn record_into(&self, stats: &mut EvalStats) {
        stats.plans_costed += self.costed.get();
        stats.plan_fallbacks += self.fallbacks.get();
    }

    /// Returns `body` reordered for compilation.
    ///
    /// The first `pinned` literals stay in place (their variables count as
    /// bound for everything after them) — callers pin scans that sharding
    /// relies on being outermost. `inputs` are the caller-bound variables
    /// of [`ConjPlan::compile`]. In [`PlanMode::SourceOrder`], or when
    /// nothing can move, the body is returned unchanged and uncounted.
    pub fn order(&self, inputs: &[Sym], body: &[PlanLiteral], pinned: usize) -> Vec<PlanLiteral> {
        let pinned = pinned.min(body.len());
        if self.mode == PlanMode::SourceOrder || body.len() <= pinned + 1 {
            return body.to_vec();
        }
        let mut bound: Vec<Sym> = inputs.to_vec();
        let mut out: Vec<PlanLiteral> = Vec::with_capacity(body.len());
        for lit in &body[..pinned] {
            bind_vars(&mut bound, lit);
            out.push(lit.clone());
        }
        self.costed.set(self.costed.get() + 1);
        let Some(stats) = self.stats.filter(|s| !s.is_empty()) else {
            self.fallbacks.set(self.fallbacks.get() + 1);
            out.extend(reorder_bound_first(&bound, &body[pinned..]));
            return out;
        };
        let mut remaining: Vec<&PlanLiteral> = body[pinned..].iter().collect();
        while !remaining.is_empty() {
            let mut best: Option<(usize, f64)> = None;
            for (i, lit) in remaining.iter().enumerate() {
                let is_bound = |t: &Term| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                };
                let cost = match lit {
                    PlanLiteral::Eq(l, r) => {
                        // An executable equality is a free filter/binding:
                        // always next. An inexecutable one must wait.
                        if is_bound(l) || is_bound(r) {
                            f64::NEG_INFINITY
                        } else {
                            f64::INFINITY
                        }
                    }
                    // A fully bound negation is a free filter; one with
                    // unbound variables cannot run yet (negation binds
                    // nothing, so it must wait for positive literals).
                    PlanLiteral::Neg(atom) => {
                        if atom.terms.iter().all(is_bound) {
                            f64::NEG_INFINITY
                        } else {
                            f64::INFINITY
                        }
                    }
                    // A sum is executable once both operands are bound.
                    PlanLiteral::Sum(_, a, b) => {
                        if is_bound(a) && is_bound(b) {
                            f64::NEG_INFINITY
                        } else {
                            f64::INFINITY
                        }
                    }
                    PlanLiteral::Atom(atom) => stats.atom_estimate(atom, &bound),
                };
                // Strict `<` keeps the earliest literal on ties, so the
                // chosen order is deterministic.
                if best.is_none_or(|(_, b)| cost < b) {
                    best = Some((i, cost));
                }
            }
            let (idx, _) = best.expect("remaining non-empty");
            let lit = remaining.remove(idx);
            bind_vars(&mut bound, lit);
            out.push(lit.clone());
        }
        out
    }
}

fn bind_vars(bound: &mut Vec<Sym>, lit: &PlanLiteral) {
    for v in lit.vars_for_reorder() {
        if !bound.contains(&v) {
            bound.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::parse_program;

    fn body_of(src: &str, db: &mut Database) -> Vec<PlanLiteral> {
        let p = parse_program(src, db.interner_mut()).unwrap();
        p.rules[0].body.iter().map(|l| PlanLiteral::from_literal(l, &RelKey::Pred)).collect()
    }

    fn pred_of(lit: &PlanLiteral) -> RelKey {
        match lit {
            PlanLiteral::Atom(a) => a.rel,
            _ => panic!("expected atom"),
        }
    }

    #[test]
    fn cost_ordering_puts_selective_scans_first() {
        let mut db = Database::new();
        for i in 0..500 {
            db.insert_named("big", &[&format!("u{i}"), &format!("v{i}")]).unwrap();
        }
        db.load_fact_text("probe(a, u5). q(v5, done).").unwrap();
        let body = body_of("t(Y) :- big(W, Z), probe(a, W), q(Z, Y).\n", &mut db);
        let stats = PlannerStats::from_database(&db);
        let planner = Planner::new(PlanMode::CostBased, Some(&stats));
        let ordered = planner.order(&[], &body, 0);
        let probe = db.intern("probe");
        let big = db.intern("big");
        // probe(a, W) has 1 row and a constant key: cheapest. With W bound,
        // big(W, Z) is keyed on its 500-distinct column (estimate 1) and no
        // longer starts a 500-row cartesian prefix.
        assert_eq!(pred_of(&ordered[0]), RelKey::Pred(probe));
        assert_eq!(pred_of(&ordered[1]), RelKey::Pred(big));
        assert_eq!(planner.counters(), (1, 0));
    }

    #[test]
    fn pinned_prefix_never_moves() {
        let mut db = Database::new();
        for i in 0..100 {
            db.insert_named("big", &[&format!("u{i}"), &format!("v{i}")]).unwrap();
        }
        db.load_fact_text("tiny(a).").unwrap();
        let body = body_of("t(W) :- big(W, Z), tiny(Z).\n", &mut db);
        let stats = PlannerStats::from_database(&db);
        let planner = Planner::new(PlanMode::CostBased, Some(&stats));
        let ordered = planner.order(&[], &body, 1);
        let big = db.intern("big");
        assert_eq!(pred_of(&ordered[0]), RelKey::Pred(big), "pinned scan stayed first");
    }

    #[test]
    fn source_order_and_tiny_bodies_are_untouched_and_uncounted() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b).").unwrap();
        let body = body_of("t(X, Y) :- e(X, Y).\n", &mut db);
        let stats = PlannerStats::from_database(&db);
        let cost = Planner::new(PlanMode::CostBased, Some(&stats));
        assert_eq!(cost.order(&[], &body, 0), body);
        assert_eq!(cost.counters(), (0, 0)); // single atom: nothing to do
        let src = Planner::source_order();
        let two = body_of("t(X, Z) :- e(X, Y), e(Y, Z).\n", &mut db);
        assert_eq!(src.order(&[], &two, 0), two);
        assert_eq!(src.counters(), (0, 0));
    }

    #[test]
    fn missing_stats_fall_back_to_bound_first() {
        let mut db = Database::new();
        let body = body_of("t(Y) :- big(W, Z), probe(a, W), q(Z, Y).\n", &mut db);
        let planner = Planner::new(PlanMode::CostBased, None);
        let ordered = planner.order(&[], &body, 0);
        let probe = db.intern("probe");
        // The heuristic also starts from the constant-keyed probe.
        assert_eq!(pred_of(&ordered[0]), RelKey::Pred(probe));
        assert_eq!(planner.counters(), (1, 1));
        let mut es = EvalStats::new();
        planner.record_into(&mut es);
        assert_eq!((es.plans_costed, es.plan_fallbacks), (1, 1));
    }

    #[test]
    fn executable_equalities_go_first_dangling_ones_last() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(b, c).").unwrap();
        let body = body_of("t(X, Y) :- e(X, W), Y = W, X = a.\n", &mut db);
        let stats = PlannerStats::from_database(&db);
        let planner = Planner::new(PlanMode::CostBased, Some(&stats));
        let ordered = planner.order(&[], &body, 0);
        // X = a is executable immediately and must precede the scan;
        // Y = W only becomes executable after e(X, W).
        assert!(matches!(ordered[0], PlanLiteral::Eq(..)));
        assert!(matches!(ordered[1], PlanLiteral::Atom(_)));
        assert!(matches!(ordered[2], PlanLiteral::Eq(..)));
    }

    #[test]
    fn estimate_scans_reflects_key_columns() {
        let mut db = Database::new();
        for i in 0..100 {
            db.insert_named("e", &[&format!("u{i}"), &format!("v{}", i % 10)]).unwrap();
        }
        let mut i = db.interner().clone();
        let p = parse_program("t(X, Y) :- e(X, Y), e(Y, X).\n", &mut i).unwrap();
        let body: Vec<PlanLiteral> =
            p.rules[0].body.iter().map(|l| PlanLiteral::from_literal(l, &RelKey::Pred)).collect();
        let plan = ConjPlan::compile(&[], &body, &p.rules[0].head.terms).unwrap();
        let stats = PlannerStats::from_database(&db);
        let scans = stats.estimate_scans(&plan);
        assert_eq!(scans.len(), 2);
        assert_eq!(scans[0].keyed_cols, 0);
        assert_eq!(scans[0].estimate, 100.0);
        assert_eq!(scans[1].keyed_cols, 2);
        // 100 rows / (100 distinct in col 0 × 10 distinct in col 1) = 0.1.
        assert!((scans[1].estimate - 0.1).abs() < 1e-9);
    }
}
