//! Bottom-up Datalog evaluation.
//!
//! This crate is the generic evaluation substrate shared by every algorithm
//! in the workspace (semi-naive, Magic Sets, Counting, and the paper's
//! Separable algorithm):
//!
//! * [`plan`] — compilation of rule bodies (conjunctions of atoms and
//!   equality literals) into executable left-to-right index-nested-loop
//!   join plans over abstract relation keys;
//! * [`planner`] — statistics-driven greedy subgoal ordering applied before
//!   compilation (cost-based by default, with a static bound-first
//!   fallback);
//! * [`store`] — the [`RelStore`] name→relation binding used during one
//!   execution round, and the [`IndexCache`] of lazily built, incrementally
//!   extended hash indexes;
//! * [`mod budget`](mod@crate::budget) — resource budgets (deadlines, tuple/iteration caps,
//!   cancellation) checked by every fixpoint loop in the workspace;
//! * [`mod naive`](mod@crate::naive) — naive fixpoint iteration (kept as a baseline and for the
//!   dedup ablation);
//! * [`parallel`] — work-sharded parallel expansion of one iteration's
//!   deltas across OS threads, used by the semi-naive loop below and by the
//!   Separable closure loops in `sepra-core`;
//! * [`mod seminaive`](mod@crate::seminaive) — stratified semi-naive evaluation with delta rules;
//! * [`incremental`] — incremental maintenance of a semi-naive
//!   materialization under EDB mutation (semi-naive delta propagation for
//!   insertions, delete-and-rederive for retractions);
//! * [`answers`] — extraction of query answers from an evaluated database.

pub mod answers;
pub mod budget;
pub mod error;
pub mod incremental;
pub mod naive;
pub mod parallel;
pub mod plan;
pub mod planner;
pub mod seminaive;
pub mod store;

pub use answers::{filter_by_query, query_answers};
pub use budget::{Budget, BudgetResource};
pub use error::EvalError;
pub use incremental::maintain;
pub use naive::{naive, naive_with_options};
pub use parallel::{sharded_delta_round, MIN_SHARD_TUPLES};
pub use plan::{ConjPlan, PlanAtom, PlanLiteral, RelKey, Step, TermSpec};
pub use planner::{PlanMode, Planner, PlannerStats, RelEstimate, ScanEstimate};
pub use seminaive::{seminaive, seminaive_with_options, Derived, EvalOptions};
pub use store::{IndexCache, IndexSource, LayeredIndexes, RelStore};
