//! Query answer extraction.

use sepra_ast::{Query, Term};
use sepra_storage::{Database, Relation, Value};

use crate::error::EvalError;
use crate::seminaive::Derived;

/// Extracts the answers to `query` from an evaluated database: the full
/// tuples of the query predicate matching the query's constants (and its
/// repeated-variable equalities).
///
/// Answers are returned as complete tuples of the query predicate so results
/// from different algorithms can be compared directly.
pub fn query_answers(
    query: &Query,
    db: &Database,
    derived: Option<&Derived>,
) -> Result<Relation, EvalError> {
    let pred = query.atom.pred;
    let arity = query.atom.arity();
    let source: Option<&Relation> =
        derived.and_then(|d| d.relation(pred)).or_else(|| db.relation(pred));
    let Some(source) = source else {
        return Ok(Relation::new(arity));
    };
    filter_by_query(query, source)
}

/// Filters a relation of full query-predicate tuples down to those matching
/// the query's constants and repeated-variable equalities.
pub fn filter_by_query(query: &Query, source: &Relation) -> Result<Relation, EvalError> {
    let arity = query.atom.arity();
    let mut out = Relation::new(arity);
    if source.arity() != arity {
        return Err(EvalError::Planning(format!(
            "query arity {} does not match relation arity {}",
            arity,
            source.arity()
        )));
    }
    // Constant filters and repeated-variable groups.
    let mut const_filters: Vec<(usize, Value)> = Vec::new();
    let mut var_groups: Vec<Vec<usize>> = Vec::new();
    for (i, term) in query.atom.terms.iter().enumerate() {
        match term {
            Term::Const(c) => const_filters.push((i, Value::from_const(*c)?)),
            Term::Var(v) => {
                let positions = query.atom.positions_of(*v);
                if positions[0] == i && positions.len() > 1 {
                    var_groups.push(positions);
                }
            }
        }
    }
    'tuples: for t in source.iter() {
        for &(i, v) in &const_filters {
            if t[i] != v {
                continue 'tuples;
            }
        }
        for group in &var_groups {
            let first = t[group[0]];
            if group[1..].iter().any(|&i| t[i] != first) {
                continue 'tuples;
            }
        }
        out.insert_from(t);
    }
    Ok(out)
}

/// Projects an answer relation (full query-predicate tuples) onto the
/// query's free positions, in order — the "values for the variables" the
/// paper's algorithms return.
pub fn project_free(query: &Query, answers: &Relation) -> Relation {
    let free = query.free_positions();
    let mut out = Relation::new(free.len());
    for t in answers.iter() {
        out.insert(t.project(&free));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seminaive::seminaive;
    use sepra_ast::{parse_program, parse_query};

    #[test]
    fn filters_constants() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(a, c). e(b, c).").unwrap();
        let program =
            parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n", db.interner_mut())
                .unwrap();
        let derived = seminaive(&program, &db).unwrap();
        let q = parse_query("t(a, Y)?", db.interner_mut()).unwrap();
        let ans = query_answers(&q, &db, Some(&derived)).unwrap();
        assert_eq!(ans.len(), 2); // (a,b), (a,c)
        let free = project_free(&q, &ans);
        assert_eq!(free.len(), 2);
        assert_eq!(free.arity(), 1);
    }

    #[test]
    fn repeated_query_variables_enforce_equality() {
        let mut db = Database::new();
        db.load_fact_text("e(a, a). e(a, b). e(b, b).").unwrap();
        let q = parse_query("e(X, X)?", db.interner_mut()).unwrap();
        let ans = query_answers(&q, &db, None).unwrap();
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn missing_predicate_gives_empty_answers() {
        let mut db = Database::new();
        let q = parse_query("ghost(X)?", db.interner_mut()).unwrap();
        let ans = query_answers(&q, &db, None).unwrap();
        assert!(ans.is_empty());
    }

    #[test]
    fn all_free_query_returns_everything() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(b, c).").unwrap();
        let q = parse_query("e(X, Y)?", db.interner_mut()).unwrap();
        let ans = query_answers(&q, &db, None).unwrap();
        assert_eq!(ans.len(), 2);
    }
}
