//! Resource budgets for fixpoint loops: deadlines, tuple/iteration caps,
//! and cooperative cancellation.
//!
//! Every fixpoint loop in the workspace — naive, semi-naive, the Figure 2
//! carry/seen closures, and the Counting / Henschen–Naqvi descents — calls
//! [`Budget::check`] once per iteration. When a limit is hit the loop
//! returns a structured [`EvalError::BudgetExceeded`] instead of running
//! unboundedly, which is what lets a resident server (`sepra serve`) impose
//! per-request deadlines and cancel in-flight queries on shutdown.
//!
//! Checks happen at iteration *barriers*, so a budget bounds how many
//! iterations run, not the wall-clock cost of a single iteration. The
//! parallel sharded rounds additionally probe [`Budget::is_exhausted`]
//! between plans so workers stop expanding early; their caller must
//! re-check afterwards (a cancelled round yields a truncated carry that
//! would otherwise look like convergence).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::EvalError;

/// Which budget limit was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetResource {
    /// The wall-clock deadline passed.
    Deadline,
    /// More tuples were inserted than allowed.
    Tuples,
    /// More fixpoint iterations ran than allowed.
    Iterations,
    /// The cancellation flag was raised.
    Cancelled,
}

impl BudgetResource {
    /// A stable machine-readable name (used in the serve protocol).
    pub fn name(self) -> &'static str {
        match self {
            BudgetResource::Deadline => "deadline",
            BudgetResource::Tuples => "tuples",
            BudgetResource::Iterations => "iterations",
            BudgetResource::Cancelled => "cancelled",
        }
    }
}

/// A resource budget for one evaluation. The default is unlimited, so
/// existing callers pay only a few `Option::is_some` tests per iteration.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Maximum tuples inserted (attempted insertions count toward the
    /// engines' `tuples_inserted` statistic, which is what is compared).
    pub max_tuples: Option<usize>,
    /// Maximum fixpoint iterations, across all loops of the evaluation.
    pub max_iterations: Option<usize>,
    /// Cooperative cancellation: when the flag goes true the evaluation
    /// stops at the next check. Shared (`Arc`) so a server can flip one
    /// flag for every in-flight query at shutdown.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Budget { deadline: Some(Instant::now() + timeout), ..Budget::default() }
    }

    /// Sets the deadline to `timeout` from now.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Caps inserted tuples.
    pub fn tuples(mut self, max: usize) -> Self {
        self.max_tuples = Some(max);
        self
    }

    /// Caps fixpoint iterations.
    pub fn iterations(mut self, max: usize) -> Self {
        self.max_iterations = Some(max);
        self
    }

    /// Attaches a cancellation flag.
    pub fn cancellable(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Whether every limit is absent (the common fast path).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_tuples.is_none()
            && self.max_iterations.is_none()
            && self.cancel.is_none()
    }

    /// Cheap probe for worker threads: deadline passed or cancelled?
    /// (Tuple/iteration counts live with the caller, so workers cannot
    /// check those — the caller re-checks at the barrier.)
    pub fn is_exhausted(&self) -> bool {
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    /// Checks every limit against the evaluation's running totals.
    /// `what` names the loop for the error message (e.g. `"semi-naive
    /// fixpoint"`); `iterations` and `tuples` are cumulative counts, most
    /// naturally the `EvalStats` fields.
    pub fn check(&self, what: &str, iterations: usize, tuples: usize) -> Result<(), EvalError> {
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(self.exceeded(what, BudgetResource::Cancelled));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.exceeded(what, BudgetResource::Deadline));
            }
        }
        if let Some(max) = self.max_tuples {
            if tuples > max {
                return Err(self.exceeded(what, BudgetResource::Tuples));
            }
        }
        if let Some(max) = self.max_iterations {
            if iterations > max {
                return Err(self.exceeded(what, BudgetResource::Iterations));
            }
        }
        Ok(())
    }

    fn exceeded(&self, what: &str, resource: BudgetResource) -> EvalError {
        EvalError::BudgetExceeded { what: what.to_string(), resource }
    }
}

impl PartialEq for Budget {
    fn eq(&self, other: &Self) -> bool {
        let flags_eq = match (&self.cancel, &other.cancel) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        };
        flags_eq
            && self.deadline == other.deadline
            && self.max_tuples == other.max_tuples
            && self.max_iterations == other.max_iterations
    }
}

impl Eq for Budget {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.is_exhausted());
        b.check("loop", usize::MAX, usize::MAX).unwrap();
    }

    #[test]
    fn expired_deadline_fails_with_resource() {
        let b = Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Budget::default()
        };
        assert!(b.is_exhausted());
        let err = b.check("test loop", 0, 0).unwrap_err();
        match err {
            EvalError::BudgetExceeded { what, resource } => {
                assert_eq!(what, "test loop");
                assert_eq!(resource, BudgetResource::Deadline);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn tuple_and_iteration_caps() {
        let b = Budget::unlimited().tuples(10).iterations(5);
        b.check("l", 5, 10).unwrap();
        assert!(matches!(
            b.check("l", 5, 11),
            Err(EvalError::BudgetExceeded { resource: BudgetResource::Tuples, .. })
        ));
        assert!(matches!(
            b.check("l", 6, 10),
            Err(EvalError::BudgetExceeded { resource: BudgetResource::Iterations, .. })
        ));
    }

    #[test]
    fn cancellation_flag_is_shared() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::unlimited().cancellable(flag.clone());
        b.check("l", 0, 0).unwrap();
        assert!(!b.is_exhausted());
        flag.store(true, Ordering::Relaxed);
        assert!(b.is_exhausted());
        assert!(matches!(
            b.check("l", 0, 0),
            Err(EvalError::BudgetExceeded { resource: BudgetResource::Cancelled, .. })
        ));
    }

    #[test]
    fn equality_compares_flag_identity() {
        let flag = Arc::new(AtomicBool::new(false));
        let a = Budget::unlimited().cancellable(flag.clone());
        let b = Budget::unlimited().cancellable(flag);
        let c = Budget::unlimited().cancellable(Arc::new(AtomicBool::new(false)));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(Budget::unlimited(), Budget::unlimited());
    }
}
