//! Naive fixpoint evaluation.
//!
//! Re-derives every rule against the full relations each iteration until no
//! new tuple appears. Quadratically slower than [`seminaive`](crate::seminaive::seminaive) on
//! deep recursions; kept as the simplest possible ground truth for
//! cross-validation and as the baseline in the iteration-strategy ablation.

use sepra_ast::{DependencyGraph, Literal, Program, Sym};
use sepra_storage::{Database, EvalStats, FxHashMap, Relation, Tuple};

use crate::error::EvalError;
use crate::plan::{ConjPlan, PlanAtom, PlanLiteral, RelKey};
use crate::planner::{Planner, PlannerStats};
use crate::seminaive::{agg_specs, AggState, Derived, EvalOptions};
use crate::store::{IndexCache, RelStore};

/// Evaluates `program` over `db` naively.
pub fn naive(program: &Program, db: &Database) -> Result<Derived, EvalError> {
    naive_with_options(program, db, &EvalOptions::default())
}

/// [`naive`] with explicit [`EvalOptions`]. The engine is inherently
/// serial (`threads` is ignored), but the budget is honoured: the
/// re-derivation loop checks it once per iteration.
pub fn naive_with_options(
    program: &Program,
    db: &Database,
    options: &EvalOptions,
) -> Result<Derived, EvalError> {
    let mut stats = EvalStats::new();
    // Same up-front guard as the semi-naive engine: no fixpoint runs on a
    // program without a stratified model.
    if program.uses_stratified_constructs() {
        sepra_strata::stratify(program)
            .map_err(|e| EvalError::Unstratifiable(e.describe(db.interner())))?;
    }
    // As in the semi-naive engine, statistics grow with completed strata so
    // derived predicates inform later strata's join orders.
    let mut planner_stats = PlannerStats::from_database(db);
    let graph = DependencyGraph::build(program);

    let aggs = agg_specs(program);
    let mut derived: FxHashMap<Sym, Relation> = FxHashMap::default();
    for rule in &program.rules {
        let pred = rule.head.pred;
        derived.entry(pred).or_insert_with(|| {
            if aggs.contains_key(&pred) {
                // Aggregate heads are *recomputed* from contributions each
                // iteration (EDB facts included); start empty.
                Relation::new(rule.head.arity())
            } else {
                db.relation(pred).cloned().unwrap_or_else(|| Relation::new(rule.head.arity()))
            }
        });
    }

    for stratum in graph.strata() {
        let stratum_idb: Vec<Sym> =
            stratum.iter().copied().filter(|p| derived.contains_key(p)).collect();
        if stratum_idb.is_empty() {
            continue;
        }
        let mut plans = Vec::new();
        {
            let planner = Planner::new(options.plan_mode, Some(&planner_stats));
            for rule in program.rules.iter().filter(|r| stratum_idb.contains(&r.head.pred)) {
                let body: Vec<PlanLiteral> = rule
                    .body
                    .iter()
                    .map(|lit| match lit {
                        Literal::Atom(a) => PlanLiteral::Atom(PlanAtom {
                            rel: RelKey::Pred(a.pred),
                            terms: a.terms.clone(),
                        }),
                        Literal::Eq(l, r) => PlanLiteral::Eq(*l, *r),
                        Literal::Neg(a) => PlanLiteral::Neg(PlanAtom {
                            rel: RelKey::Pred(a.pred),
                            terms: a.terms.clone(),
                        }),
                        Literal::Sum(d, x, y) => PlanLiteral::Sum(*d, *x, *y),
                    })
                    .collect();
                plans.push((
                    rule.head.pred,
                    ConjPlan::compile(&[], &planner.order(&[], &body, 0), &rule.head.terms)?,
                ));
            }
            planner.record_into(&mut stats);
        }
        // Sums and aggregates can mint fresh values; cap those fixpoints
        // (mirrors the semi-naive engine's guard).
        let capped = stratum_idb.iter().any(|p| aggs.contains_key(p))
            || program.rules.iter().any(|r| {
                stratum_idb.contains(&r.head.pred)
                    && r.body.iter().any(|l| matches!(l, Literal::Sum(..)))
            });
        let mut indexes = IndexCache::new();
        let mut rounds = 0usize;
        loop {
            stats.record_iteration();
            rounds += 1;
            if capped && rounds > 100_000 {
                return Err(EvalError::Diverged {
                    what: "fixpoint over sums/aggregates".into(),
                    bound: 100_000,
                });
            }
            options.budget.check("naive fixpoint", stats.iterations, stats.tuples_inserted)?;
            let mut buffers: FxHashMap<Sym, Vec<Tuple>> = FxHashMap::default();
            {
                let mut store = RelStore::new();
                for (p, r) in db.relations() {
                    store.bind(RelKey::Pred(p), r);
                }
                for (&p, r) in &derived {
                    store.bind(RelKey::Pred(p), r);
                }
                for (head, plan) in &plans {
                    indexes.prepare(plan, &store);
                    let buf = buffers.entry(*head).or_default();
                    plan.execute(&store, &indexes, &[], &mut |row| {
                        buf.push(Tuple::new(row.to_vec()));
                    });
                }
            }
            let mut any_new = false;
            for (pred, tuples) in buffers {
                if let Some(spec) = aggs.get(&pred) {
                    // Naive evaluation of an aggregate head recomputes the
                    // whole relation from this iteration's contributions
                    // (EDB facts plus every rule output) — the simplest
                    // possible reading, kept as ground truth.
                    let mut state = AggState::new(spec);
                    let mut fresh = Relation::new(derived[&pred].arity());
                    if let Some(edb) = db.relation(pred) {
                        for row in edb.iter() {
                            state.absorb_into(&row.to_vec(), &mut fresh, &mut stats, None);
                        }
                    }
                    for t in &tuples {
                        state.absorb_into(t.values(), &mut fresh, &mut stats, None);
                    }
                    let rel = derived.get_mut(&pred).expect("derived exists");
                    if fresh != *rel {
                        any_new = true;
                        *rel = fresh;
                    }
                } else {
                    let rel = derived.get_mut(&pred).expect("derived exists");
                    for t in tuples {
                        let was_new = rel.insert(t);
                        stats.record_insert(was_new);
                        any_new |= was_new;
                    }
                }
            }
            if !any_new {
                break;
            }
        }
        for &p in &stratum_idb {
            planner_stats.add_relation(p, &derived[&p]);
        }
    }
    for (&pred, rel) in &derived {
        stats.record_size(db.interner().resolve(pred), rel.len());
    }
    Ok(Derived { relations: derived, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seminaive::seminaive;
    use sepra_ast::parse_program;

    fn both(program_src: &str, facts: &str) -> (Derived, Derived, Database) {
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(program_src, db.interner_mut()).unwrap();
        let n = naive(&program, &db).unwrap();
        let s = seminaive(&program, &db).unwrap();
        (n, s, db)
    }

    #[test]
    fn naive_matches_seminaive_on_closure() {
        let (n, s, mut db) = both(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n",
            "e(a, b). e(b, c). e(c, a). e(c, d).",
        );
        let t = db.intern("t");
        assert_eq!(n.relation(t).unwrap(), s.relation(t).unwrap());
    }

    #[test]
    fn naive_matches_seminaive_on_same_generation() {
        let (n, s, mut db) = both(
            "sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n",
            "up(a, p). up(b, p). up(c, q). flat(p, q). down(p, d). down(q, e).",
        );
        let sg = db.intern("sg");
        assert_eq!(n.relation(sg).unwrap(), s.relation(sg).unwrap());
    }

    #[test]
    fn naive_matches_seminaive_on_stratified_constructs() {
        let (n, s, mut db) = both(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             unreach(X, Y) :- node(X), node(Y), !t(X, Y).\n\
             reach(X, count<Y>) :- t(X, Y).\n\
             shortest(Y, min<C>) :- source(X), w(X, Y, C).\n\
             shortest(Y, min<C>) :- shortest(X, D), w(X, Y, W2), C = D + W2.\n",
            "e(a, b). e(b, c). node(a). node(b). node(c). source(a). \
             w(a, b, 1). w(b, c, 1). w(a, c, 5).",
        );
        for name in ["unreach", "reach", "shortest"] {
            let p = db.intern(name);
            assert_eq!(n.relation(p).unwrap(), s.relation(p).unwrap(), "{name} diverged");
        }
    }

    #[test]
    fn naive_refuses_unstratifiable_programs() {
        let mut db = Database::new();
        db.load_fact_text("a(x).").unwrap();
        let program =
            parse_program("p(X) :- a(X), !q(X).\nq(X) :- p(X).\n", db.interner_mut()).unwrap();
        assert!(matches!(naive(&program, &db), Err(EvalError::Unstratifiable(_))));
    }

    #[test]
    fn naive_does_more_redundant_work() {
        let chain: String = (0..30).map(|i| format!("e(n{}, n{}). ", i, i + 1)).collect();
        let (n, s, _) = both("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n", &chain);
        assert!(
            n.stats.insert_attempts > s.stats.insert_attempts,
            "naive {} vs semi-naive {}",
            n.stats.insert_attempts,
            s.stats.insert_attempts
        );
    }
}
