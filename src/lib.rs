//! # separable — compiling separable recursions
//!
//! A from-scratch deductive database engine reproducing **Jeffrey F.
//! Naughton, "Compiling Separable Recursions"** (Princeton CS-TR-140-88 /
//! SIGMOD 1988): a specialized evaluation algorithm for selections on
//! *separable recursions* that materializes `O(n)`-size relations on
//! queries where Generalized Magic Sets is `Ω(n²)` and the Generalized
//! Counting Method is `Ω(2ⁿ)`.
//!
//! ## Quick start
//!
//! ```
//! use separable::QueryProcessor;
//!
//! let mut qp = QueryProcessor::new();
//! qp.load(
//!     "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
//!      buys(X, Y) :- idol(X, W), buys(W, Y).\n\
//!      buys(X, Y) :- perfectFor(X, Y).\n\
//!      friend(tom, sue). idol(sue, joe). perfectFor(joe, widget).",
//! )
//! .unwrap();
//! let result = qp.query("buys(tom, Y)?").unwrap();
//! assert_eq!(result.answers.len(), 1); // buys(tom, widget)
//! assert_eq!(result.strategy.to_string(), "separable");
//! ```
//!
//! ## Crate map
//!
//! | Layer | Crate | Re-exported as |
//! |---|---|---|
//! | Datalog frontend | `sepra-ast` | [`ast`] |
//! | Storage engine | `sepra-storage` | [`storage`] |
//! | Bottom-up evaluation | `sepra-eval` | [`eval`] |
//! | Magic Sets / Counting baselines | `sepra-rewrite` | [`rewrite`] |
//! | **The paper's contribution** | `sepra-core` | [`core`] |
//! | Query processor | `sepra-engine` | [`engine`] |
//! | CLI + TCP query service | `sepra-server` | [`server`] |
//! | Workload generators | `sepra-gen` | [`gen`] |
//!
//! The most useful entry points are re-exported at the top level:
//! [`QueryProcessor`] for end-to-end use, and the triple
//! [`detect`](core::detect::detect()) / [`build_plan`](core::plan::build_plan) /
//! [`SeparableEvaluator`] for working
//! with the algorithm directly.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every Section 4 comparison.

pub use sepra_ast as ast;
pub use sepra_core as core;
pub use sepra_engine as engine;
pub use sepra_eval as eval;
pub use sepra_gen as gen;
pub use sepra_rewrite as rewrite;
pub use sepra_server as server;
pub use sepra_storage as storage;
pub use sepra_strata as strata;

pub use sepra_ast::{Interner, Program, Query};
pub use sepra_core::{detect::SeparableRecursion, evaluate::SeparableEvaluator, ExecOptions};
pub use sepra_engine::{QueryProcessor, QueryResult, Strategy, StrategyChoice};
pub use sepra_eval::Budget;
pub use sepra_storage::{Database, EvalStats, Relation};
