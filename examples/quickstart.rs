//! Quickstart: load the paper's Example 1.1 program, run a selection, and
//! look at the compiled plan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use separable::engine::render_answers;
use separable::QueryProcessor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut qp = QueryProcessor::new();

    // Example 1.1 from the paper: a person buys a product if it is perfect
    // for them, or if a friend or idol bought it.
    qp.load(
        "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
         buys(X, Y) :- idol(X, W), buys(W, Y).\n\
         buys(X, Y) :- perfectFor(X, Y).\n\
         \n\
         friend(tom, sue). friend(sue, joe). friend(joe, ann).\n\
         idol(tom, liz).   idol(liz, joe).\n\
         perfectFor(ann, surfboard).\n\
         perfectFor(joe, gadget).\n\
         perfectFor(liz, tonic).\n",
    )?;

    // How will the engine evaluate this selection?
    println!("=== explain buys(tom, Y)? ===");
    println!("{}", qp.explain("buys(tom, Y)?")?);

    // Run it.
    let result = qp.query("buys(tom, Y)?")?;
    println!("=== answers ({} via {}) ===", result.answers.len(), result.strategy);
    print!("{}", render_answers(&result.answers, qp.db().interner()));

    // The paper's cost metric: sizes of the relations constructed.
    println!("\n=== statistics ===");
    print!("{}", result.stats);
    Ok(())
}
