//! Social commerce at scale: the paper's `buys` recursions over a generated
//! social graph, comparing every evaluation strategy on the same query.
//!
//! This is the scenario the paper's introduction motivates (Examples 1.1
//! and 1.2): influence propagates through `friend`/`idol` edges, and in the
//! second program through a `cheaper` product lattice.
//!
//! ```sh
//! cargo run --release --example social_commerce
//! ```

use separable::gen::graphs::{add_chain, add_random_digraph};
use separable::{QueryProcessor, Strategy, StrategyChoice};

fn build_processor(program: &str, people: usize, seed: u64) -> QueryProcessor {
    let mut qp = QueryProcessor::new();
    qp.load(program).expect("program loads");
    let db = qp.db_mut();
    add_random_digraph(db, "friend", "p", people, people * 2, seed);
    add_random_digraph(db, "idol", "p", people, people, seed + 1);
    // A product catalog ordered by price.
    add_chain(db, "cheaper", "prod", people / 2);
    for i in 0..people / 5 {
        db.insert_named("perfectFor", &[&format!("p{}", i * 3 % people), &format!("prod{i}")])
            .expect("fact");
    }
    qp
}

fn compare(title: &str, program: &str, query: &str, strategies: &[Strategy]) {
    println!("\n== {title} ==");
    println!("query: {query}");
    let mut reference: Option<usize> = None;
    for &strategy in strategies {
        let mut qp = build_processor(program, 300, 7);
        match qp.query_with(query, StrategyChoice::Force(strategy)) {
            Ok(result) => {
                if let Some(expected) = reference {
                    assert_eq!(result.answers.len(), expected, "{strategy} disagrees");
                } else {
                    reference = Some(result.answers.len());
                }
                println!(
                    "  {:<10} {:>6} answers  max relation {:>8}  total {:>8}  {:?}",
                    strategy.to_string(),
                    result.answers.len(),
                    result.stats.max_relation_size(),
                    result.stats.total_relation_size(),
                    result.elapsed
                );
            }
            Err(e) => println!("  {:<10} unavailable: {e}", strategy.to_string()),
        }
    }
}

fn main() {
    let one_class = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                     buys(X, Y) :- idol(X, W), buys(W, Y).\n\
                     buys(X, Y) :- perfectFor(X, Y).\n";
    let two_class = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                     buys(X, Y) :- buys(X, W), cheaper(Y, W).\n\
                     buys(X, Y) :- perfectFor(X, Y).\n";

    compare(
        "Example 1.1 (friend + idol, one equivalence class)",
        one_class,
        "buys(p0, Y)?",
        &[Strategy::Separable, Strategy::MagicSets, Strategy::SemiNaive],
    );
    // Counting is omitted above: the random social graph is cyclic, which
    // the Counting baseline correctly refuses.

    compare(
        "Example 1.2 (friend + cheaper, two equivalence classes)",
        two_class,
        "buys(p0, Y)?",
        &[Strategy::Separable, Strategy::MagicSets, Strategy::SemiNaive],
    );

    // A selection on the persistent column of Example 1.1: who ends up
    // buying prod3?
    compare(
        "Example 1.1, selecting on the product column (persistent)",
        one_class,
        "buys(X, prod3)?",
        &[Strategy::Separable, Strategy::MagicSets, Strategy::SemiNaive],
    );
}
