//! Reachability as a degenerate separable recursion, and the worst-case
//! databases of Section 4 reproduced in miniature.
//!
//! Transitive closure is the simplest separable recursion: one class
//! (column 0), one persistent column. This example runs a reachability
//! query on a random network with every strategy, then rebuilds the
//! paper's two adversarial databases and prints the relation sizes that
//! make Magic Sets quadratic and Counting exponential.
//!
//! ```sh
//! cargo run --release --example reachability
//! ```

use separable::gen::graphs::add_random_digraph;
use separable::gen::paper::{counting_worst_buys, magic_worst_buys};
use separable::{QueryProcessor, Strategy, StrategyChoice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: reachability on a random network.
    let mut qp = QueryProcessor::new();
    qp.load(
        "reach(X, Y) :- link(X, W), reach(W, Y).\n\
         reach(X, Y) :- link(X, Y).\n",
    )?;
    add_random_digraph(qp.db_mut(), "link", "host", 500, 1500, 42);
    // Make sure the demo source actually has an outgoing link.
    qp.db_mut().insert_named("link", &["host0", "host1"])?;

    println!("== reach(host0, Y)? on a 500-node random network ==");
    for strategy in [Strategy::Separable, Strategy::MagicSets, Strategy::SemiNaive] {
        let r = qp.query_with("reach(host0, Y)?", StrategyChoice::Force(strategy))?;
        println!(
            "  {:<10} {:>5} reachable  max relation {:>8}  {:?}",
            strategy.to_string(),
            r.answers.len(),
            r.stats.max_relation_size(),
            r.elapsed
        );
    }
    // Reverse reachability uses the persistent column.
    let r = qp.query("reach(X, host42)?")?;
    println!(
        "  reverse    {:>5} sources    via {} in {:?}",
        r.answers.len(),
        r.strategy,
        r.elapsed
    );

    // Part 2: the paper's adversarial databases.
    println!("\n== Section 4 worst cases (n = 60 / n = 14) ==");
    let inst = magic_worst_buys(60);
    let mut qp = QueryProcessor::new();
    *qp.db_mut() = inst.db.clone(); // adopt the instance database (and its interner) first
    qp.load(&inst.program)?;
    for strategy in [Strategy::Separable, Strategy::MagicSets] {
        let r = qp.query_with(&inst.query, StrategyChoice::Force(strategy))?;
        println!(
            "  Example 1.2 chain (n=60): {:<10} max relation {:>6}  ({} answers)",
            strategy.to_string(),
            r.stats.max_relation_size(),
            r.answers.len()
        );
    }
    let inst = counting_worst_buys(14);
    let mut qp = QueryProcessor::new();
    *qp.db_mut() = inst.db.clone();
    qp.load(&inst.program)?;
    for strategy in [Strategy::Separable, Strategy::Counting] {
        let r = qp.query_with(&inst.query, StrategyChoice::Force(strategy))?;
        println!(
            "  Example 1.1 chain (n=14): {:<10} max relation {:>6}  ({} answers)",
            strategy.to_string(),
            r.stats.max_relation_size(),
            r.answers.len()
        );
    }
    println!("\nSeparable stays linear; the general algorithms do not.");
    Ok(())
}
