//! Why-provenance: the paper's Lemma 3.1 justification strings as an audit
//! feature.
//!
//! A compliance scenario: `access(User, Resource)` propagates through a
//! delegation graph (`delegates`) and a resource-containment lattice
//! (`contains`). For every derived access right, the engine reports *one
//! derivation* — exactly the `J(a)` string the paper's soundness proof
//! constructs — answering "why does this user have access to that
//! resource?".
//!
//! ```sh
//! cargo run --example audit_trail
//! ```

use separable::ast::{parse_program, parse_query};
use separable::core::detect::detect_in_program;
use separable::core::evaluate::SeparableEvaluator;
use separable::storage::Database;

const POLICY: &str = "\
access(U, R) :- delegates(U, V), access(V, R).\n\
access(U, R) :- access(U, S), contains(S, R).\n\
access(U, R) :- grant(U, R).\n";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.load_fact_text(
        "delegates(intern, engineer). delegates(engineer, lead).\n\
         delegates(contractor, lead).\n\
         grant(lead, repo).\n\
         contains(repo, ci_logs). contains(repo, secrets_vault).\n\
         contains(ci_logs, build_artifacts).",
    )?;
    let program = parse_program(POLICY, db.interner_mut())?;
    let access = db.intern("access");
    let sep = detect_in_program(&program, access, db.interner_mut())
        .map_err(|e| format!("policy is not separable: {e}"))?;

    println!("detected separable recursion:");
    for (i, class) in sep.classes.iter().enumerate() {
        println!("  class e{}: columns {:?} (rules {:?})", i + 1, class.columns, class.rules);
    }

    let query = parse_query("access(intern, R)?", db.interner_mut())?;
    let evaluator = SeparableEvaluator::new(sep.clone());
    let (outcome, justifications) =
        evaluator.evaluate_with_justifications(&query, &db, &Default::default())?;

    println!("\naudit: why does `intern` have each access right?");
    let mut rows: Vec<(String, String)> = justifications
        .iter()
        .map(|(tuple, j)| (tuple.display(db.interner()).to_string(), j.render(&sep, db.interner())))
        .collect();
    rows.sort();
    for (tuple, derivation) in rows {
        println!("  {tuple:<32} {derivation}");
    }
    println!(
        "\n{} rights derived; every derivation above replays to the same answer \
         (see tests/justifications.rs).",
        outcome.answers.len()
    );
    Ok(())
}
