//! A three-ary separable recursion (the paper's Example 2.4) and the
//! Lemma 2.1 decomposition of a partial selection.
//!
//! `approved(Dept, Mgr, Item)`: a (department, manager) pair approves an
//! item if an `escalation` step leads to a pair that approves it, or if the
//! pair approves a `pricier` item, or if the item is on the pair's
//! `baseline` list.
//!
//! The first two columns form one equivalence class, the third another.
//! `approved(sales, Mgr, Item)?` binds only *half* of class 1 — a partial
//! selection — so the engine applies the Lemma 2.1 rewrite: it splits the
//! recursion into `t_part` (no escalation rules; `sales` becomes a
//! persistent constant) and `t_full` (full selections seeded through the
//! escalation relation).
//!
//! ```sh
//! cargo run --example product_catalog
//! ```

use separable::engine::render_answers;
use separable::QueryProcessor;

const PROGRAM: &str = "\
approved(D, M, I) :- escalation(D, M, D2, M2), approved(D2, M2, I).\n\
approved(D, M, I) :- approved(D, M, J), pricier(J, I).\n\
approved(D, M, I) :- baseline(D, M, I).\n";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut qp = QueryProcessor::new();
    qp.load(PROGRAM)?;
    qp.load(
        "escalation(sales, ann, regional, bo).\n\
         escalation(sales, cy, regional, bo).\n\
         escalation(regional, bo, hq, dee).\n\
         escalation(support, ed, hq, dee).\n\
         baseline(hq, dee, laptop).\n\
         baseline(regional, bo, desk).\n\
         baseline(sales, ann, phone).\n\
         pricier(laptop, workstation).\n\
         pricier(desk, standing_desk).\n\
         pricier(phone, tablet).\n",
    )?;

    // Fully bound class: (sales, ann).
    println!("=== explain approved(sales, ann, I)? (full selection) ===");
    println!("{}", qp.explain("approved(sales, ann, I)?")?);
    let full = qp.query("approved(sales, ann, I)?")?;
    print!("{}", render_answers(&full.answers, qp.db().interner()));

    // Partially bound class: only the department.
    println!("\n=== explain approved(sales, M, I)? (partial selection) ===");
    println!("{}", qp.explain("approved(sales, M, I)?")?);
    let partial = qp.query("approved(sales, M, I)?")?;
    println!("answers via {}:", partial.strategy);
    print!("{}", render_answers(&partial.answers, qp.db().interner()));

    // Selection on the other class: who can approve a workstation?
    println!("\n=== approved(D, M, workstation)? ===");
    let by_item = qp.query("approved(D, M, workstation)?")?;
    print!("{}", render_answers(&by_item.answers, qp.db().interner()));
    Ok(())
}
